"""Ablation benchmarks for the design choices behind the prediction scheme.

These are not experiments from the paper; they probe the knobs Algorithm 2
fixes implicitly, as called out in DESIGN.md:

* clearing the failure-push (CTP) table before every propagation phase
  versus keeping it across phases;
* refining the diff set with the new counterexample after a failed
  candidate (line 27) versus keeping the original diff set;
* the interaction between prediction and CTG-based generalization;
* the prediction candidate budget.
"""

import dataclasses

import pytest

from repro.benchgen import johnson_counter, modular_counter, round_robin_arbiter
from repro.core import IC3, CheckResult, IC3Options
from repro.core.options import GeneralizationStrategy


ABLATION_CASES = [
    modular_counter(5, modulus=30, bad_value=31),
    johnson_counter(8, safe=True),
    round_robin_arbiter(5, safe=True),
]


def _run_all(options):
    outcomes = []
    for case in ABLATION_CASES:
        outcome = IC3(case.aig, options).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE, case.name
        outcomes.append(outcome)
    return outcomes


class TestCtpTableClearingAblation:
    @pytest.mark.parametrize("clear_table", [True, False], ids=["clear", "keep"])
    def test_clearing_policy(self, benchmark, clear_table):
        options = dataclasses.replace(
            IC3Options.profile_ic3_a().with_prediction(),
            clear_ctp_before_propagation=clear_table,
        )
        outcomes = benchmark.pedantic(_run_all, args=(options,), rounds=1, iterations=1)
        total_success = sum(o.stats.prediction_successes for o in outcomes)
        total_queries = sum(o.stats.prediction_queries for o in outcomes)
        print(
            f"\n[ablation ctp-table clear={clear_table}] "
            f"predictions {total_success}/{total_queries}"
        )
        assert total_queries > 0


class TestDiffSetRefinementAblation:
    @pytest.mark.parametrize("refine", [True, False], ids=["refine", "no-refine"])
    def test_refinement_policy(self, benchmark, refine):
        options = dataclasses.replace(
            IC3Options.profile_ic3_a().with_prediction(), refine_diff_set=refine
        )
        outcomes = benchmark.pedantic(_run_all, args=(options,), rounds=1, iterations=1)
        total_queries = sum(o.stats.prediction_queries for o in outcomes)
        total_success = sum(o.stats.prediction_successes for o in outcomes)
        print(
            f"\n[ablation diff-set refine={refine}] "
            f"predictions {total_success}/{total_queries}"
        )
        assert total_success > 0


class TestPredictionWithCtgAblation:
    @pytest.mark.parametrize("prediction", [False, True], ids=["ctg", "ctg+pl"])
    def test_ctg_interaction(self, benchmark, prediction):
        options = IC3Options(
            generalization=GeneralizationStrategy.CTG,
            enable_prediction=prediction,
        )
        outcomes = benchmark.pedantic(_run_all, args=(options,), rounds=1, iterations=1)
        sat_calls = sum(o.stats.sat_calls for o in outcomes)
        print(f"\n[ablation ctg prediction={prediction}] sat_calls={sat_calls}")
        if prediction:
            assert sum(o.stats.prediction_successes for o in outcomes) > 0


class TestPredictionBudgetAblation:
    @pytest.mark.parametrize("budget", [1, 4, 16], ids=["budget1", "budget4", "budget16"])
    def test_candidate_budget(self, benchmark, budget):
        options = dataclasses.replace(
            IC3Options.profile_ic3_a().with_prediction(),
            max_prediction_candidates=budget,
        )
        outcomes = benchmark.pedantic(_run_all, args=(options,), rounds=1, iterations=1)
        per_general = [
            o.stats.prediction_queries / max(1, o.stats.generalizations)
            for o in outcomes
        ]
        print(f"\n[ablation budget={budget}] queries/generalization={per_general}")
        # The budget bounds the number of prediction queries per generalization.
        assert all(value <= budget + 1e-9 for value in per_general)
