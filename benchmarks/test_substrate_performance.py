"""Microbenchmarks of the substrates the engine is built on.

These are not paper experiments; they track the cost of the building
blocks (SAT solving, consecution queries, AIG encoding, BMC unrolling) so
that regressions in the substrates are visible independently of the
end-to-end IC3 numbers.
"""


from repro.benchgen import johnson_counter, modular_counter, token_ring
from repro.core import BMC, CheckResult, IC3Options
from repro.core.frames import FrameManager
from repro.core.stats import IC3Stats
from repro.logic import Cube
from repro.sat import Solver
from repro.ts import TransitionSystem, Unroller


class TestSatSolverMicrobenchmarks:
    def test_random_3sat_solving(self, benchmark):
        import random

        rng = random.Random(12345)
        num_vars, num_clauses = 60, 240
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
            for _ in range(num_clauses)
        ]

        def run():
            solver = Solver()
            solver.ensure_var(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            return solver.solve()

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_incremental_assumption_queries(self, benchmark):
        ts = TransitionSystem(johnson_counter(10).aig)
        solver = Solver()
        solver.ensure_var(ts.num_vars)
        for clause in ts.trans:
            solver.add_clause(clause.literals)
        latches = ts.latch_vars

        def run():
            answers = []
            for index in range(len(latches)):
                assumptions = [latches[index], -latches[(index + 1) % len(latches)]]
                answers.append(solver.solve(assumptions))
            return answers

        benchmark.pedantic(run, rounds=5, iterations=1)


class TestEncodingMicrobenchmarks:
    def test_transition_system_encoding(self, benchmark):
        case = johnson_counter(16)

        def run():
            ts = TransitionSystem(case.aig)
            return len(ts.trans)

        benchmark.pedantic(run, rounds=5, iterations=1)

    def test_consecution_query_cost(self, benchmark):
        case = token_ring(10)
        ts = TransitionSystem(case.aig)
        manager = FrameManager(ts, IC3Options(), IC3Stats())
        manager.add_frame()
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])

        def run():
            return manager.consecution(0, cube).holds

        benchmark.pedantic(run, rounds=10, iterations=1)


class TestFrameBackendMicrobenchmarks:
    """Monolithic vs per-frame substrate on the same consecution workload."""

    @staticmethod
    def _consecution_burst(backend: str) -> int:
        case = token_ring(8)
        ts = TransitionSystem(case.aig)
        manager = FrameManager(
            ts, IC3Options(frame_backend=backend), IC3Stats()
        )
        for _ in range(4):
            manager.add_frame()
        held = 0
        latches = ts.latch_vars
        for level in (4, 3, 2, 1):
            for index in range(len(latches) - 1):
                cube = Cube([latches[index], latches[index + 1]])
                held += manager.consecution(level, cube).holds
        return held

    def test_consecution_burst_per_frame(self, benchmark):
        benchmark.pedantic(
            lambda: self._consecution_burst("per-frame"), rounds=5, iterations=1
        )

    def test_consecution_burst_monolithic(self, benchmark):
        benchmark.pedantic(
            lambda: self._consecution_burst("monolithic"), rounds=5, iterations=1
        )

    def test_backends_agree_on_burst(self):
        assert self._consecution_burst("per-frame") == self._consecution_burst(
            "monolithic"
        )


class TestBmcMicrobenchmarks:
    def test_bmc_unrolling_depth_10(self, benchmark):
        case = modular_counter(4, modulus=16, bad_value=10)

        def run():
            outcome = BMC(case.aig).check(max_depth=12)
            assert outcome.result == CheckResult.UNSAFE
            return outcome.trace.depth

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_unroller_frame_instantiation(self, benchmark):
        case = johnson_counter(12)

        def run():
            unroller = Unroller(case.aig)
            unroller.lit_at(case.aig.latches[0].lit, 15)
            return unroller.num_frames

        benchmark.pedantic(run, rounds=3, iterations=1)
