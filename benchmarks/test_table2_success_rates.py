"""Table 2 — Average Success Rates of the prediction mechanism.

Paper reference:

    Configuration  Avg SR_lp  Avg SR_fp  Avg SR_adv
    RIC3-pl        38.61%     40.67%     24.03%
    IC3ref-pl      31.5%      37.81%     19.46%

The reproduction checks the shape: all three rates are defined and
"commendable" (SR_lp well above a few percent), SR_adv is bounded by SR_fp
(a prediction can only succeed when a failed-push parent was found), and
the rates lie in [0, 1].
"""


from repro.core import IC3, CheckResult
from repro.harness import success_rate_table
from repro.harness.configs import config_by_name

from benchmarks.conftest import bench_suite


def _parse_percent(cell):
    return None if cell is None else float(cell.rstrip("%")) / 100.0


class TestTable2:
    def test_regenerate_table2(self, suite_result, benchmark):
        table = benchmark.pedantic(
            success_rate_table, args=(suite_result,), rounds=3, iterations=1
        )
        print("\n" + table.to_text())

        rows = {row[0]: row for row in table.rows}
        assert set(rows) == {"RIC3-pl", "IC3ref-pl"}
        for name, row in rows.items():
            sr_lp = _parse_percent(row[1])
            sr_fp = _parse_percent(row[2])
            sr_adv = _parse_percent(row[3])
            assert sr_lp is not None and 0.0 < sr_lp <= 1.0
            assert sr_fp is not None and 0.0 < sr_fp <= 1.0
            assert sr_adv is not None and 0.0 < sr_adv <= 1.0
            # A successful prediction requires a failed-push parent lemma.
            assert sr_adv <= sr_fp + 1e-9
            # "Commendable" success rate: the mechanism is not a no-op.
            assert sr_lp >= 0.05

    def test_per_case_rates_follow_definitions(self, suite_result):
        for config_name in ("RIC3-pl", "IC3ref-pl"):
            for result in suite_result.by_config(config_name):
                stats = result.stats
                assert stats.prediction_successes <= stats.prediction_queries
                assert stats.parent_lemma_hits <= stats.generalizations
                assert stats.prediction_successes <= stats.generalizations


class TestTable2CollectionMicrobenchmark:
    """Cost of running one prediction-enabled engine while collecting stats."""

    CASE = [c for c in bench_suite() if c.name.startswith("johnson_w6")][0]

    def test_stats_collection_runtime(self, benchmark):
        config = config_by_name("IC3ref-pl")

        def run():
            outcome = IC3(self.CASE.aig, config.options).check(time_limit=60)
            assert outcome.result == CheckResult.SAFE
            assert outcome.stats.prediction_queries > 0
            return outcome.stats.sr_lp

        benchmark.pedantic(run, rounds=3, iterations=1)
