"""Figure 2 — Comparisons among the different configurations (cactus plot).

The paper plots, for each configuration, the number of cases solved within
a growing time limit; prediction-enabled configurations dominate their
bases.  The reproduction regenerates the same series from the reduced
suite and checks the dominance at every sampled time limit.
"""

import pytest

from repro.core import IC3, CheckResult
from repro.harness import cactus_data
from repro.harness.configs import config_by_name

from benchmarks.conftest import BENCH_TIMEOUT, bench_suite


SAMPLE_LIMITS = [BENCH_TIMEOUT * f for f in (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)]


class TestFigure2:
    def test_regenerate_cactus_series(self, suite_result, benchmark):
        series = benchmark.pedantic(
            cactus_data, args=(suite_result,), rounds=3, iterations=1
        )

        print("\nFigure 2 (cases solved within a time limit):")
        for name, curve in series.items():
            counts = [curve.solved_within(limit) for limit in SAMPLE_LIMITS]
            print(f"  {name:14s} {counts}")

        for name, curve in series.items():
            counts = [curve.solved_within(limit) for limit in SAMPLE_LIMITS]
            # Cactus curves are monotone in the time limit.
            assert counts == sorted(counts)
            # Everything solved is within the timeout by construction.
            assert curve.solved_within(BENCH_TIMEOUT) == len(curve.solve_times)

        # At the full time limit, prediction solves at least as much as base.
        assert series["RIC3-pl"].solved_within(BENCH_TIMEOUT) >= series[
            "RIC3"
        ].solved_within(BENCH_TIMEOUT)
        assert series["IC3ref-pl"].solved_within(BENCH_TIMEOUT) >= series[
            "IC3ref"
        ].solved_within(BENCH_TIMEOUT)

    def test_total_solve_time_lower_with_prediction(self, suite_result):
        series = cactus_data(suite_result)
        for base_name, pl_name in (("RIC3", "RIC3-pl"), ("IC3ref", "IC3ref-pl")):
            base_total = sum(series[base_name].solve_times)
            pl_total = sum(series[pl_name].solve_times)
            solved_base = len(series[base_name].solve_times)
            solved_pl = len(series[pl_name].solve_times)
            # Either prediction solves strictly more, or it is not slower
            # overall (25% tolerance for timing noise on the small suite).
            assert solved_pl > solved_base or pl_total <= base_total * 1.25


class TestFigure2Microbenchmark:
    """One hard-band case: the kind of instance that separates the curves."""

    CASE = [c for c in bench_suite() if c.name.startswith("johnson_w9")][0]

    @pytest.mark.parametrize("config_name", ["IC3ref", "IC3ref-pl"])
    def test_hard_band_case(self, benchmark, config_name):
        config = config_by_name(config_name)

        def run():
            outcome = IC3(self.CASE.aig, config.options).check(time_limit=60)
            assert outcome.result == CheckResult.SAFE
            return outcome

        benchmark.pedantic(run, rounds=3, iterations=1)
