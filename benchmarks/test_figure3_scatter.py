"""Figure 3 — Scatter of per-case runtimes with and without lemma prediction.

In the paper, most points lie below the diagonal (the optimization makes
individual cases faster) for both RIC3 and IC3ref.  The reproduction
regenerates the per-case (base time, prediction time) pairs and checks
that a clear majority of the cases that take measurable time improve.
"""

import pytest

from repro.core import IC3, CheckResult
from repro.harness import scatter_data
from repro.harness.configs import config_by_name

from benchmarks.conftest import bench_suite


class TestFigure3:
    @pytest.mark.parametrize("pair", [("RIC3", "RIC3-pl"), ("IC3ref", "IC3ref-pl")])
    def test_regenerate_scatter(self, suite_result, benchmark, pair):
        base_name, pl_name = pair
        scatter = benchmark.pedantic(
            scatter_data, args=(suite_result, base_name, pl_name), rounds=3, iterations=1
        )

        print(f"\nFigure 3 ({base_name} vs {pl_name}):")
        for point in scatter.points:
            marker = "v" if point.below_diagonal else "^"
            print(
                f"  {marker} {point.case_name:28s} base={point.base_time:7.3f}s "
                f"pl={point.pl_time:7.3f}s"
            )

        assert len(scatter.points) == len(bench_suite())
        # No case may be solved by the base engine but lost with prediction.
        assert scatter.only_base_solved() == []

        # Among cases with non-trivial runtime, most lie below the diagonal.
        significant = [
            p for p in scatter.points if max(p.base_time, p.pl_time) >= 0.05
        ]
        if significant:
            improved = sum(1 for p in significant if p.below_diagonal)
            assert improved >= len(significant) * 0.5

    def test_points_are_positive_and_bounded(self, suite_result):
        scatter = scatter_data(suite_result, "IC3ref", "IC3ref-pl")
        for point in scatter.points:
            assert point.base_time > 0
            assert point.pl_time > 0
            assert point.base_time <= suite_result.timeout * 1.5
            assert point.pl_time <= suite_result.timeout * 1.5


class TestFigure3Microbenchmark:
    """The per-case comparison behind one scatter point."""

    CASE = [c for c in bench_suite() if c.name.startswith("parity_w5")][0]

    @pytest.mark.parametrize("config_name", ["RIC3", "RIC3-pl"])
    def test_scatter_point_runtime(self, benchmark, config_name):
        config = config_by_name(config_name)

        def run():
            outcome = IC3(self.CASE.aig, config.options).check(time_limit=60)
            assert outcome.result == CheckResult.SAFE
            return outcome

        benchmark.pedantic(run, rounds=3, iterations=1)
