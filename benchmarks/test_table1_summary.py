"""Table 1 — Summary of Results (solved / safe / unsafe per configuration).

Paper reference (730 HWMCC'15/'17 cases, 1000 s / 8 GB):

    Configuration   Solved  Safe  Unsafe
    RIC3            365     264   101
    RIC3-pl         375     273   102
    IC3ref          371     263   108
    IC3ref-pl       379     268   111
    IC3ref-CAV23    375     269   106
    ABC-PDR         373     267   106

The reproduction runs the six configuration stand-ins on the synthetic
suite.  Absolute counts differ (different benchmarks, different solver),
but the shape must hold: prediction-enabled configurations solve at least
as many cases as their bases and spend less total time, and nobody
produces a wrong verdict.
"""

import pytest

from repro.core import IC3, CheckResult
from repro.harness import summary_table
from repro.harness.configs import config_by_name

from benchmarks.conftest import bench_suite


class TestTable1:
    def test_regenerate_table1(self, suite_result, benchmark):
        table = benchmark.pedantic(
            summary_table, args=(suite_result,), rounds=3, iterations=1
        )
        print("\n" + table.to_text())

        solved = dict(zip(table.column("Configuration"), table.column("Solved")))
        times = dict(zip(table.column("Configuration"), table.column("Time(PAR1)")))
        wrong = dict(zip(table.column("Configuration"), table.column("Wrong")))

        # No configuration may contradict the ground truth.
        assert all(value == 0 for value in wrong.values())
        # Prediction solves at least as many cases as its base engine...
        assert solved["RIC3-pl"] >= solved["RIC3"]
        assert solved["IC3ref-pl"] >= solved["IC3ref"]
        # ... and does not cost more total (PAR-1) time overall (25% slack
        # for timing noise on small, single-core runs).
        assert times["IC3ref-pl"] <= times["IC3ref"] * 1.25
        assert times["RIC3-pl"] <= times["RIC3"] * 1.25

    def test_safe_unsafe_split_is_consistent(self, suite_result):
        table = summary_table(suite_result)
        for row in table.rows:
            _, solved, safe, unsafe, _, _ = row
            assert solved == safe + unsafe


class TestTable1EngineMicrobenchmarks:
    """Per-engine timings on one representative SAFE case of the suite."""

    CASE = [c for c in bench_suite() if c.name.startswith("modcnt_w5")][0]

    @pytest.mark.parametrize(
        "config_name", ["IC3ref", "IC3ref-pl", "RIC3", "RIC3-pl", "IC3ref-CAV23", "ABC-PDR"]
    )
    def test_engine_runtime(self, benchmark, config_name):
        config = config_by_name(config_name)

        def run():
            outcome = IC3(self.CASE.aig, config.options).check(time_limit=60)
            assert outcome.result == CheckResult.SAFE
            return outcome

        benchmark.pedantic(run, rounds=3, iterations=1)
