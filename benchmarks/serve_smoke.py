"""Smoke test of the verification service over real HTTP (the CI gate).

Starts the daemon in-process on an ephemeral port, then exercises the
full service contract with a plain ``urllib`` client:

1. submit every quick-suite circuit over ``POST /jobs`` and poll each to
   a verdict, checking it against the suite's expectation;
2. resubmit an isomorphic rebuild (binary round-trip: renumbered
   variables, fresh topological order) of every circuit and require a
   ``cache_hit: true`` answer carrying the identical verdict record;
3. scrape ``GET /metrics.json`` and cross-check the counters against
   what the client observed (submissions, hits/misses, zero rejections);
4. write a manifest-v6-shaped JSON transcript (``--output``), with the
   service counters in the ``service`` block, for the CI artifact.

Exit status is non-zero on any wrong verdict, missed cache hit, counter
mismatch, or HTTP failure.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py --output serve_smoke.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.aiger.parser import parse_aiger
from repro.aiger.writer import to_aag_string, to_aig_bytes
from repro.benchgen.suite import quick_suite
from repro.harness.manifest import MANIFEST_SCHEMA
from repro.serve.server import JobServer
from repro.serve.service import VerificationService


def isomorphic_variant(text: str) -> str:
    """Binary round-trip: same structure, different bytes and numbering."""
    return to_aag_string(parse_aiger(to_aig_bytes(parse_aiger(text))))


class Client:
    def __init__(self, base: str):
        self.base = base

    def request(self, path, data=None, method=None, tenant="smoke"):
        req = urllib.request.Request(
            self.base + path,
            data=data,
            headers={"X-Tenant": tenant} if data is not None else {},
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def poll_done(self, job_id: str, budget: float = 120.0):
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            status, payload = self.request(f"/jobs/{job_id}")
            if status != 200:
                raise RuntimeError(f"poll failed with {status}: {payload}")
            if payload["status"] in ("done", "failed"):
                return payload
            time.sleep(0.1)
        raise RuntimeError(f"job {job_id} did not finish within {budget}s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=30.0, help="per-job budget")
    parser.add_argument("--workers", type=int, default=2, help="warm workers")
    parser.add_argument(
        "--output", default=None, metavar="PATH", help="JSON transcript path"
    )
    args = parser.parse_args()

    service = VerificationService(
        workers=args.workers,
        queue_depth=64,
        default_timeout=args.timeout,
        tenant_burst=1000.0,
    )
    server = JobServer(service, port=0)
    loop = asyncio.new_event_loop()

    def run_loop():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        loop.run_forever()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while server._server is None and time.monotonic() < deadline:
        time.sleep(0.01)
    if server._server is None:
        print("FAIL: server did not start", file=sys.stderr)
        return 1
    client = Client(server.address)
    print(f"serve smoke: daemon at {server.address}")

    failures = []
    transcript_results = []
    cases = quick_suite()
    started = time.time()

    status, health = client.request("/health")
    if status != 200 or health["status"] != "ok":
        failures.append(f"health check failed: {status} {health}")

    # Pass 1: cold submissions, one per circuit.
    verdicts = {}
    for case in cases:
        text = to_aag_string(case.aig)
        status, payload = client.request(
            "/jobs",
            data=json.dumps({"model": text, "timeout": args.timeout}).encode(),
            method="POST",
        )
        if status != 202:
            failures.append(f"{case.name}: submission answered {status}: {payload}")
            continue
        done = client.poll_done(payload["id"])
        record = done["result"]
        verdicts[case.name] = record
        expected = case.expected
        if done["cache_hit"] or done["status"] != "done":
            failures.append(f"{case.name}: unexpected cold-run state {done['status']}")
        if expected in ("safe", "unsafe") and record["result"] != expected:
            failures.append(
                f"{case.name}: verdict {record['result']}, expected {expected}"
            )
        print(f"  cold  {case.name:<24s} {record['result']:<8s} {record['runtime']:.3f}s")
        transcript_results.append(
            {
                "case": case.name,
                "config": "serve-cold",
                "cache_hit": False,
                **{
                    key: record[key]
                    for key in (
                        "result",
                        "runtime",
                        "frames",
                        "engine",
                        "winner",
                        "stats",
                        "reduction",
                        "properties",
                        "transformation",
                        "error",
                    )
                },
            }
        )

    # Pass 2: isomorphic resubmissions must all be served from cache.
    for case in cases:
        if case.name not in verdicts:
            continue
        variant = isomorphic_variant(to_aag_string(case.aig))
        status, payload = client.request(
            "/jobs",
            data=json.dumps({"model": variant, "timeout": args.timeout}).encode(),
            method="POST",
        )
        if verdicts[case.name]["result"] in ("safe", "unsafe"):
            if status != 200 or not payload.get("cache_hit"):
                failures.append(
                    f"{case.name}: isomorphic resubmission missed the cache "
                    f"(status {status})"
                )
                continue
            if payload["result"] != verdicts[case.name]:
                failures.append(f"{case.name}: cached record drifted from cold run")
            print(f"  warm  {case.name:<24s} cache_hit")
            transcript_results.append(
                {
                    "case": case.name,
                    "config": "serve-warm",
                    "cache_hit": True,
                    "result": payload["result"]["result"],
                    "runtime": 0.0,
                    "error": None,
                }
            )
        elif status == 200 and payload.get("cache_hit"):
            failures.append(f"{case.name}: unknown verdict must not be cached")

    # Metrics must match what the client observed (the JSON snapshot —
    # GET /metrics itself is the Prometheus text exposition).
    status, metrics = client.request("/metrics.json")
    solved = sum(
        1 for record in verdicts.values() if record["result"] in ("safe", "unsafe")
    )
    expected_counters = {
        "jobs_submitted": len(verdicts) + solved,
        "jobs_completed": len(verdicts),
        "cache_hits": solved,
        "cache_misses": len(verdicts),
        "queue_rejections": 0,
        "budget_rejections": 0,
    }
    for name, want in expected_counters.items():
        if metrics.get(name) != want:
            failures.append(f"metrics[{name}] = {metrics.get(name)}, expected {want}")
    print(
        "  metrics: "
        + ", ".join(f"{name}={metrics.get(name)}" for name in sorted(expected_counters))
    )

    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)
    service.stop()

    if args.output:
        transcript = {
            "schema": MANIFEST_SCHEMA,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "suite": "quick",
            "timeout": args.timeout,
            "jobs": args.workers,
            "validate": False,
            "reduce": True,
            "num_cases": len(cases),
            "num_configs": 2,
            "configs": {
                "serve-cold": {"engine": "ic3-pl", "transport": "http"},
                "serve-warm": {"engine": "cache", "transport": "http"},
            },
            "totals": None,
            "results": transcript_results,
            "wall_clock": round(time.time() - started, 3),
            "service": {
                "address": server.address,
                "counters": {
                    name: value
                    for name, value in metrics.items()
                    if isinstance(value, int)
                },
                "failures": failures,
            },
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(transcript, handle, indent=2)
            handle.write("\n")
        print(f"  transcript written to {args.output}")

    if failures:
        print(f"\nFAIL ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(verdicts)} circuits verified, {solved} cache hits confirmed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
