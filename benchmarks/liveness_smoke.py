"""Liveness smoke benchmark: the scheduler over the liveness families.

Runs the multi-property scheduler on every case of the liveness suite,
checks each per-property verdict against the generator's ground truth
(and each witness against the original model — the scheduler validates
lassos by simulation and certificates by recompilation), and writes a
JSON report suitable for CI artifact upload.

Exit code 0 means every property matched and every witness validated;
1 reports mismatches, invalid witnesses or unsolved properties.

Usage::

    PYTHONPATH=src python benchmarks/liveness_smoke.py \
        --timeout 30 --max-k 12 --output liveness-smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.benchgen.suite import liveness_suite
from repro.props import PropertyScheduler


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-case time budget (seconds)"
    )
    parser.add_argument(
        "--max-k", type=int, default=12, help="k-liveness sweep bound"
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    args = parser.parse_args(argv)

    report = {"suite": "liveness", "timeout": args.timeout, "cases": []}
    failures = 0
    wall_start = time.perf_counter()
    for case in liveness_suite():
        start = time.perf_counter()
        result = PropertyScheduler(case.aig, max_k=args.max_k).run(
            time_limit=args.timeout
        )
        elapsed = time.perf_counter() - start
        expected = [r.value for r in (case.expected_properties or [])]
        got = [v.result.value for v in result.verdicts]
        ok = got == expected and result.all_validated
        failures += 0 if ok else 1
        status = "ok" if ok else "FAIL"
        print(
            f"{case.name:24s} {status:4s} {elapsed:6.2f}s "
            f"got={got} expected={expected} validated={result.all_validated}"
        )
        record = result.as_dict()
        record.update(case=case.name, expected=expected, ok=ok, elapsed=elapsed)
        report["cases"].append(record)

    report["wall_clock"] = time.perf_counter() - wall_start
    report["failures"] = failures
    print(
        f"{len(report['cases']) - failures}/{len(report['cases'])} cases ok "
        f"in {report['wall_clock']:.1f}s"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"Report written to {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
