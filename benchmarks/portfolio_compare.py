"""Cooperative vs non-sharing portfolio comparison (the BENCH_9 harness).

Races the same member composition over a benchmark suite twice — once
with the lemma bus enabled and once without — and reports, per case and
in total: the verdict (which must not drift), the winning member, wall
time, the winner's SAT-kernel conflicts, and the bus accounting of
manifest schema v8 (per-member published/received/validated/rejected/
imported counters and ring-buffer overflows).

Usage::

    PYTHONPATH=src python benchmarks/portfolio_compare.py \
        --suite bench --repeat 3 --output BENCH_9.json

    PYTHONPATH=src python benchmarks/portfolio_compare.py \
        --suite quick --baseline BENCH_9.json --max-slowdown 1.6

Exit status is non-zero when the two modes disagree on any verdict,
when the sharing portfolio has fewer than two members, when sharing's
total wall time exceeds the non-sharing total by more than
``--max-overhead``, or when ``--baseline``/``--max-slowdown`` are given
and this run's share/noshare wall ratio regressed beyond the threshold
relative to the committed snapshot (ratios of ratios, so the gate is
machine-independent).

A note on what this benchmark can and cannot show on this hardware:
the sharing gains targeted by ``--require-gains`` (overall wall ratio
>= 1.0 with at least one family >= 1.2x) assume the members actually
run in parallel.  On a single-core container every member process
divides the same core, so a cooperative race can at best tie with its
own donor and the strict gate is left opt-in.  The cooperative value
is still directly observable here: on the johnson family k-induction —
UNKNOWN standalone at any bound — proves the property at k=1 from
imported frame lemmas, and the per-member counters in the report show
the validated/imported traffic that made that possible.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.benchgen.suite import (
    bench_suite,
    default_suite,
    extended_suite,
    quick_suite,
)
from repro.engines.portfolio import PortfolioEngine, PortfolioOptions

SUITES = {
    "quick": quick_suite,
    "bench": bench_suite,
    "default": default_suite,
    "extended": extended_suite,
}

MODES = ("share", "noshare")

BENCH_SCHEMA = "repro-check/portfolio-bench/v1"

DEFAULT_MEMBERS = "ic3-pl,kind"


def _family(case_name: str) -> str:
    """Group ``johnson_w12_safe``/``johnson_w16_safe`` → ``johnson`` etc.

    Strips the verdict suffix and the size tokens (``w12``, ``n8``,
    ``k2`` ...) so per-family ratios aggregate all sizes of a generator.
    """
    tokens = case_name.split("_")
    while len(tokens) > 1 and (
        tokens[-1] in ("safe", "unsafe")
        or (tokens[-1][0].isalpha() and tokens[-1][1:].isdigit())
    ):
        tokens.pop()
    return "_".join(tokens)


def _race(case, members, mode, args):
    """One portfolio race; returns the CheckOutcome."""
    engine = PortfolioEngine(
        case.aig,
        engines=members,
        reduce=not args.no_reduce,
        portfolio_options=PortfolioOptions(share=(mode == "share")),
    )
    return engine.check(time_limit=args.timeout)


def run_suite(args: argparse.Namespace) -> dict:
    """Race every case in both modes and assemble the comparison."""
    members = tuple(name.strip() for name in args.members.split(",") if name.strip())
    cases = SUITES[args.suite]()
    results = []
    totals = {
        mode: {"wall_time": 0.0, "solved": 0, "conflicts": 0} for mode in MODES
    }
    share_totals = {
        "bus_published": 0,
        "lemmas_validated": 0,
        "lemmas_rejected": 0,
        "lemmas_imported": 0,
    }
    drift = []

    for case in cases:
        row = {"case": case.name, "family": _family(case.name)}
        for mode in MODES:
            # Best-of-N: repeats damp scheduler noise; the bus accounting
            # is taken from the fastest run.
            best = elapsed = None
            for _ in range(max(args.repeat, 1)):
                start = time.perf_counter()
                outcome = _race(case, members, mode, args)
                run_time = time.perf_counter() - start
                if elapsed is None or run_time < elapsed:
                    elapsed, best = run_time, outcome
            entry = {
                "result": best.result.value,
                "winner": best.winner,
                "wall_time": round(elapsed, 6),
                "frames": best.frames,
                "conflicts": best.stats.solver_conflicts,
            }
            if mode == "share" and best.sharing is not None:
                entry["bus_published"] = best.sharing["bus_published"]
                entry["transport"] = best.sharing["transport"]
                entry["members"] = best.sharing["members"]
                share_totals["bus_published"] += best.sharing["bus_published"]
                for counters in best.sharing["members"].values():
                    for key in ("lemmas_validated", "lemmas_rejected", "lemmas_imported"):
                        share_totals[key] += counters[key]
            row[mode] = entry
            bucket = totals[mode]
            bucket["wall_time"] += elapsed
            bucket["solved"] += int(best.result.value != "unknown")
            bucket["conflicts"] += entry["conflicts"]
        if row["share"]["result"] != row["noshare"]["result"]:
            drift.append(row["case"])
        share_wall = row["share"]["wall_time"]
        row["wall_ratio"] = round(row["noshare"]["wall_time"] / share_wall, 4) if share_wall else None
        results.append(row)

    for bucket in totals.values():
        bucket["wall_time"] = round(bucket["wall_time"], 6)

    families = {}
    for row in results:
        bucket = families.setdefault(
            row["family"], {"cases": 0, "share_wall": 0.0, "noshare_wall": 0.0}
        )
        bucket["cases"] += 1
        bucket["share_wall"] += row["share"]["wall_time"]
        bucket["noshare_wall"] += row["noshare"]["wall_time"]
    for bucket in families.values():
        bucket["share_wall"] = round(bucket["share_wall"], 6)
        bucket["noshare_wall"] = round(bucket["noshare_wall"], 6)
        bucket["wall_ratio"] = (
            round(bucket["noshare_wall"] / bucket["share_wall"], 4)
            if bucket["share_wall"]
            else None
        )

    share_wall = totals["share"]["wall_time"]
    return {
        "schema": BENCH_SCHEMA,
        "suite": args.suite,
        "timeout": args.timeout,
        "reduce": not args.no_reduce,
        "repeat": max(args.repeat, 1),
        "num_cases": len(cases),
        "members": list(members),
        "modes": list(MODES),
        "totals": totals,
        "sharing_totals": share_totals,
        "wall_ratio_share": (
            round(totals["noshare"]["wall_time"] / share_wall, 4) if share_wall else None
        ),
        "families": families,
        "verdict_drift": drift,
        "results": results,
    }


def compare_to_baseline(report: dict, baseline: dict, max_slowdown: float):
    """Check this run against a committed snapshot; returns failure strings.

    Two machine-independent checks: per-case verdicts must match the
    snapshot on every case the two suites share (in both modes), and
    the noshare/share wall ratio must not have regressed by more than
    ``max_slowdown`` relative to the snapshot's ratio (a ratio of
    ratios — absolute times differ across machines).
    """
    failures = []
    snapshot = {row["case"]: row for row in baseline.get("results", [])}
    shared = 0
    for row in report["results"]:
        base_row = snapshot.get(row["case"])
        if base_row is None:
            continue
        shared += 1
        for mode in MODES:
            if mode in base_row and row[mode]["result"] != base_row[mode]["result"]:
                failures.append(
                    f"verdict drift vs baseline on {row['case']} ({mode}): "
                    f"{row[mode]['result']} != {base_row[mode]['result']}"
                )
    if shared == 0:
        failures.append("baseline shares no cases with this suite")
    base_ratio = baseline.get("wall_ratio_share")
    ratio = report.get("wall_ratio_share")
    if base_ratio and ratio and ratio < base_ratio / max_slowdown:
        failures.append(
            f"sharing wall ratio regressed: {ratio}x vs baseline "
            f"{base_ratio}x (allowed factor {max_slowdown})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES), default="quick")
    parser.add_argument("--timeout", type=float, default=30.0, help="per-case limit")
    parser.add_argument(
        "--members",
        default=DEFAULT_MEMBERS,
        help="comma-separated member engines raced in both modes",
    )
    parser.add_argument(
        "--no-reduce", action="store_true", help="race on the unreduced models"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="races per (case, mode); the fastest is recorded (noise damping)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=2.0,
        help="fail if sharing's total wall exceeds non-sharing by this factor",
    )
    parser.add_argument(
        "--require-gains",
        action="store_true",
        help="strict gate for multi-core hosts: overall wall ratio >= 1.0 "
        "and at least one family >= 1.2x",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_9.json to replay (verdicts + wall ratio)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=1.6,
        help="allowed sharing-ratio regression factor vs the baseline",
    )
    args = parser.parse_args(argv)

    report = run_suite(args)
    totals = report["totals"]
    print(
        f"portfolio comparison ({report['suite']} suite, {report['num_cases']} cases, "
        f"members={','.join(report['members'])}):"
    )
    for mode in MODES:
        bucket = totals[mode]
        print(
            f"  {mode:<8s} wall={bucket['wall_time']:.2f}s "
            f"solved={bucket['solved']} conflicts={bucket['conflicts']}"
        )
    sharing = report["sharing_totals"]
    print(
        f"  bus: published={sharing['bus_published']} "
        f"validated={sharing['lemmas_validated']} "
        f"rejected={sharing['lemmas_rejected']} "
        f"imported={sharing['lemmas_imported']}"
    )
    print(f"  sharing wall ratio (noshare/share): {report['wall_ratio_share']}x")
    for family, bucket in sorted(report["families"].items()):
        print(
            f"    {family:<16s} {bucket['cases']} cases  "
            f"ratio={bucket['wall_ratio']}x"
        )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"  report written to {args.output}")

    exit_code = 0
    if len(report["members"]) < 2:
        print("FAIL: a cooperative portfolio needs at least two members")
        exit_code = 1
    if report["verdict_drift"]:
        print(f"FAIL: verdict drift between modes on {report['verdict_drift']}")
        exit_code = 1
    noshare_wall = totals["noshare"]["wall_time"]
    if noshare_wall and totals["share"]["wall_time"] > noshare_wall * args.max_overhead:
        print(
            f"FAIL: sharing overhead {totals['share']['wall_time']:.2f}s exceeds "
            f"{args.max_overhead}x the non-sharing total {noshare_wall:.2f}s"
        )
        exit_code = 1
    if args.require_gains:
        ratio = report["wall_ratio_share"]
        if ratio is None or ratio < 1.0:
            print(f"FAIL: overall sharing wall ratio {ratio}x below the 1.0x gate")
            exit_code = 1
        best = max(
            (bucket["wall_ratio"] for bucket in report["families"].values()
             if bucket["wall_ratio"] is not None),
            default=None,
        )
        if best is None or best < 1.2:
            print(f"FAIL: best family sharing ratio {best}x below the 1.2x gate")
            exit_code = 1
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_to_baseline(report, baseline, args.max_slowdown)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            exit_code = 1
        else:
            print(f"  baseline {args.baseline} replayed clean")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
