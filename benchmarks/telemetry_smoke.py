"""Smoke test of the live telemetry layer over real HTTP (the CI gate).

Boots the daemon in-process on an ephemeral port with heartbeats on,
then checks the observability contract end to end:

1. submit a deliberately slow job (a wide Johnson counter whose IC3 run
   takes many seconds with a frame count that advances continuously) and
   poll ``GET /jobs/{id}/progress`` while it runs: two polls must report
   a *strictly increasing* IC3 frame count, an advancing heartbeat
   sequence number, and a sampled worker RSS;
2. scrape ``GET /metrics`` mid-job and validate the Prometheus text with
   the in-repo strict parser (``repro.obs.metrics.parse_prometheus``) —
   and again after the job, checking the expected families are exposed;
3. confirm ``GET /metrics.json`` still serves the flat JSON contract;
4. optionally (``--stall``) SIGSTOP the busy worker of a second slow job
   and require the stall watchdog to count and replace it well before
   the job's hard deadline;
5. write the final exposition text (``--output``) as the CI artifact.

Exit status is non-zero on any violated check.

Usage::

    PYTHONPATH=src python benchmarks/telemetry_smoke.py \
        --stall --output telemetry_metrics.txt
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.aiger.writer import to_aag_string
from repro.benchgen import johnson_counter
from repro.obs.metrics import parse_prometheus
from repro.serve.server import JobServer
from repro.serve.service import VerificationService


class Client:
    def __init__(self, base: str):
        self.base = base

    def get_json(self, path, *, headers=None):
        req = urllib.request.Request(self.base + path, headers=headers or {})
        try:
            with urllib.request.urlopen(req, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def get_text(self, path):
        with urllib.request.urlopen(self.base + path, timeout=60) as response:
            return response.status, response.read().decode("utf-8")

    def post(self, path, document):
        req = urllib.request.Request(
            self.base + path,
            data=json.dumps(document).encode(),
            headers={"X-Tenant": "telemetry"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def poll_done(self, job_id: str, budget: float = 180.0):
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            status, payload = self.get_json(f"/jobs/{job_id}")
            if status != 200:
                raise RuntimeError(f"poll failed with {status}: {payload}")
            if payload["status"] in ("done", "failed"):
                return payload
            time.sleep(0.1)
        raise RuntimeError(f"job {job_id} did not finish within {budget}s")


def wait_for(predicate, budget, message):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise RuntimeError(f"timed out waiting for {message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--width", type=int, default=64, help="Johnson counter width (job duration)"
    )
    parser.add_argument("--timeout", type=float, default=120.0, help="per-job budget")
    parser.add_argument(
        "--stall",
        action="store_true",
        help="also SIGSTOP a busy worker and require the watchdog to fire",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH", help="final exposition text path"
    )
    args = parser.parse_args()

    slow_model = to_aag_string(johnson_counter(args.width, safe=True).aig)
    service = VerificationService(
        workers=1,
        queue_depth=8,
        default_timeout=args.timeout,
        tenant_burst=1000.0,
        heartbeat_interval=0.1,
        stall_timeout=3.0,
    )
    server = JobServer(service, port=0)
    loop = asyncio.new_event_loop()

    def run_loop():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        loop.run_forever()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    wait_for(lambda: server._server is not None, 10, "server start")
    client = Client(server.address)
    print(f"telemetry smoke: daemon at {server.address}")

    failures = []

    # 1. Slow job + strictly increasing frame count over two polls.
    status, payload = client.post(
        "/jobs", {"model": slow_model, "timeout": args.timeout}
    )
    if status != 202:
        print(f"FAIL: submission answered {status}: {payload}", file=sys.stderr)
        return 1
    job_id = payload["id"]

    def frame_poll():
        status, progress = client.get_json(f"/jobs/{job_id}/progress")
        if status != 200:
            return None
        heartbeat = progress.get("heartbeat") or {}
        if "frame" in heartbeat:
            return progress
        return None

    first = wait_for(frame_poll, 60, "first frame heartbeat")

    def advanced_poll():
        progress = frame_poll()
        if progress and progress["heartbeat"]["frame"] > first["heartbeat"]["frame"]:
            return progress
        return None

    second = wait_for(advanced_poll, 60, "frame advance")
    hb1, hb2 = first["heartbeat"], second["heartbeat"]
    print(
        f"  progress: frame {hb1['frame']} -> {hb2['frame']}, "
        f"seq {hb1['seq']} -> {hb2['seq']}, rss={hb2.get('rss_kb')}kB "
        f"(age {hb2['age_seconds']}s)"
    )
    if not hb2["frame"] > hb1["frame"]:
        failures.append(f"frame count did not advance: {hb1['frame']} -> {hb2['frame']}")
    if not hb2["seq"] > hb1["seq"]:
        failures.append(f"heartbeat seq did not advance: {hb1['seq']} -> {hb2['seq']}")
    if first.get("worker", {}).get("pid", 0) <= 0:
        failures.append("progress did not name the worker pid")

    # 2. Prometheus exposition scraped mid-job must parse strictly.
    status, text = client.get_text("/metrics")
    try:
        families = parse_prometheus(text)
        print(f"  mid-job exposition: {len(families)} families, parsed clean")
    except ValueError as error:
        failures.append(f"mid-job exposition rejected by parser: {error}")
        families = {}
    for family in ("repro_serve_jobs_submitted_total", "repro_serve_busy_workers"):
        if family not in families:
            failures.append(f"mid-job exposition is missing {family}")

    done = client.poll_done(job_id, budget=args.timeout + 60)
    if done["status"] != "done" or done["result"]["result"] != "safe":
        failures.append(f"slow job ended {done['status']}: {done['result']['result']}")

    # 3. The JSON snapshot contract.
    status, metrics = client.get_json("/metrics.json")
    if status != 200 or metrics.get("jobs_submitted", 0) < 1:
        failures.append(f"/metrics.json contract broken: {status} {metrics}")
    status, negotiated = client.get_json(
        "/metrics", headers={"Accept": "application/json"}
    )
    if status != 200 or "jobs_submitted" not in negotiated:
        failures.append("content negotiation on /metrics broke the JSON form")

    # 4. Optional stall phase: freeze the worker, watchdog must fire
    #    long before the hard deadline.
    if args.stall:
        # A different width, so the structural-digest cache (already warm
        # with the first slow model's verdict) cannot answer this one.
        stall_model = to_aag_string(johnson_counter(args.width + 2, safe=True).aig)
        status, payload = client.post(
            "/jobs", {"model": stall_model, "timeout": args.timeout}
        )
        if status != 202:
            failures.append(f"stall-phase submission answered {status}")
        else:
            stall_job = payload["id"]

            def stall_progress():
                status, progress = client.get_json(f"/jobs/{stall_job}/progress")
                if status == 200 and "worker" in progress:
                    return progress
                return None

            progress = wait_for(stall_progress, 60, "stall job to start")
            pid = progress["worker"]["pid"]
            started = time.monotonic()
            os.kill(pid, signal.SIGSTOP)
            done = client.poll_done(stall_job, budget=60.0)
            elapsed = time.monotonic() - started
            _, metrics = client.get_json("/metrics.json")
            print(
                f"  stall: worker {pid} frozen, detected in {elapsed:.1f}s, "
                f"worker_stalls={metrics.get('worker_stalls')}"
            )
            if metrics.get("worker_stalls", 0) < 1:
                failures.append("SIGSTOP did not increment worker_stalls")
            if elapsed > args.timeout / 2:
                failures.append(
                    f"stall detection took {elapsed:.1f}s — not before the deadline"
                )
            if done["status"] != "failed" or "stalled" not in str(
                done["result"].get("error")
            ):
                failures.append(f"stalled job ended {done['status']}: {done['result']}")

    # 5. Final exposition artifact.
    status, text = client.get_text("/metrics")
    try:
        families = parse_prometheus(text)
    except ValueError as error:
        failures.append(f"final exposition rejected by parser: {error}")
        families = {}
    if "repro_engine_runs_total" not in families:
        failures.append("final exposition is missing repro_engine_runs_total")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"  exposition written to {args.output} ({len(families)} families)")

    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)
    service.stop()

    if failures:
        print(f"\nFAIL ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nOK: progress advanced, expositions parsed, contracts held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
