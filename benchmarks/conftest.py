"""Shared fixtures for the benchmark harness.

The paper-scale evaluation (the full synthetic suite, six configurations,
a several-second per-case timeout) takes minutes; the benchmarks therefore
run on a *reduced* suite that preserves the mix of families and verdicts.
The session-scoped ``suite_result`` fixture executes that evaluation once;
the per-table/figure benchmark modules derive their tables and series from
it and additionally micro-benchmark a representative engine run, so
``pytest benchmarks/ --benchmark-only`` both regenerates every artefact
and reports engine timings.

To reproduce the full-scale numbers recorded in EXPERIMENTS.md run::

    python examples/reproduce_paper.py --timeout 5
"""

from __future__ import annotations

import pytest

from repro.benchgen import (
    combination_lock,
    counter_overflow,
    fifo_controller,
    johnson_counter,
    lfsr,
    modular_counter,
    parity_counter,
    pipeline_tag,
    round_robin_arbiter,
    token_ring,
    traffic_light,
)
from repro.harness import BenchmarkRunner, paper_configurations
from repro.harness.report import build_report

BENCH_TIMEOUT = 10.0


def bench_suite():
    """The reduced benchmark suite (same families as the full suite)."""
    return [
        # SAFE cases across all families, a few sizes each.
        counter_overflow(4, safe=True),
        parity_counter(5, safe=True),
        modular_counter(4, modulus=14, bad_value=15),
        modular_counter(5, modulus=30, bad_value=31),
        token_ring(6, safe=True),
        johnson_counter(6, safe=True),
        johnson_counter(9, safe=True),
        lfsr(5, safe=True),
        pipeline_tag(6, safe=True),
        round_robin_arbiter(4, safe=True),
        fifo_controller(3, safe=True),
        traffic_light(safe=True),
        # UNSAFE cases with growing counterexample depths.
        counter_overflow(3, safe=False),
        parity_counter(4, safe=False),
        token_ring(4, safe=False),
        johnson_counter(5, safe=False),
        lfsr(4, safe=False, unsafe_depth=5),
        combination_lock([1, 2, 3], symbol_bits=2),
        fifo_controller(2, safe=False),
        traffic_light(safe=False),
    ]


@pytest.fixture(scope="session")
def suite_result():
    """One evaluation of all six configurations over the reduced suite."""
    runner = BenchmarkRunner(
        bench_suite(), paper_configurations(), timeout=BENCH_TIMEOUT, validate=False
    )
    return runner.run()


@pytest.fixture(scope="session")
def paper_report(suite_result):
    """The assembled report (Tables 1-2, Figures 2-4) for the reduced suite."""
    return build_report(suite_result, timeout=BENCH_TIMEOUT)
