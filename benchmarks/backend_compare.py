"""Default vs flat-arena SAT backend comparison (the BENCH harness).

Runs IC3 on a benchmark suite twice — once per SAT backend — and
reports, per case and in total: wall time, SAT time, verdicts (which
must not drift), and the kernel memory-system counters of manifest
schema v5 (watch-list traversals, blocker hits, literal-pool bytes,
arena compactions, lazily removed clauses).

Usage::

    PYTHONPATH=src python benchmarks/backend_compare.py \
        --suite bench --repeat 3 --output BENCH_6.json --min-speedup 1.25

    PYTHONPATH=src python benchmarks/backend_compare.py \
        --suite quick --baseline BENCH_6.json --max-slowdown 1.5

Exit status is non-zero when the two backends disagree on any verdict,
when ``--min-speedup`` is given and the arena backend's total SAT time
is not at least that factor below the default backend's, or when
``--baseline``/``--max-slowdown`` are given and this run's arena
speedup ratio regressed beyond the threshold relative to the committed
snapshot (ratios of ratios, so the gate is machine-independent).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.benchgen.suite import (
    bench_suite,
    default_suite,
    extended_suite,
    quick_suite,
)
from repro.core import IC3, IC3Options
from repro.reduce import reduce_aig

SUITES = {
    "quick": quick_suite,
    "bench": bench_suite,
    "default": default_suite,
    "extended": extended_suite,
}

BACKENDS = ("default", "arena")

BENCH_SCHEMA = "repro-check/bench/v1"

# Kernel counters summed into the per-backend totals (manifest v5).
_COUNTERS = (
    "sat_calls",
    "watch_traversals",
    "blocker_hits",
    "literal_pool_bytes",
    "arena_compactions",
    "solver_removed_clauses",
)


def run_suite(args: argparse.Namespace) -> dict:
    """Run every case under both backends and assemble the comparison."""
    cases = SUITES[args.suite]()
    results = []
    totals = {
        backend: dict(
            {"wall_time": 0.0, "sat_time": 0.0, "solved": 0},
            **{key: 0 for key in _COUNTERS},
        )
        for backend in BACKENDS
    }
    drift = []

    for case in cases:
        if args.no_reduce:
            model, prop = case.aig, 0
        else:
            reduction = reduce_aig(case.aig)
            model, prop = reduction.aig, reduction.property_index
        row = {"case": case.name}
        for backend in BACKENDS:
            options = IC3Options(sat_backend=backend)
            # Best-of-N: repeats damp scheduler noise on shared runners
            # (counters are deterministic across repeats).
            elapsed = sat_time = None
            for _ in range(max(args.repeat, 1)):
                start = time.perf_counter()
                outcome = IC3(model, options, property_index=prop).check(
                    time_limit=args.timeout
                )
                run_time = time.perf_counter() - start
                if elapsed is None or run_time < elapsed:
                    elapsed = run_time
                    sat_time = outcome.stats.sat_time
            stats = outcome.stats
            row[backend] = dict(
                {
                    "result": outcome.result.value,
                    "wall_time": round(elapsed, 6),
                    "sat_time": round(sat_time, 6),
                    "frames": outcome.frames,
                },
                **{key: getattr(stats, key) for key in _COUNTERS},
            )
            bucket = totals[backend]
            bucket["wall_time"] += elapsed
            bucket["sat_time"] += sat_time
            bucket["solved"] += int(outcome.result.value != "unknown")
            for key in _COUNTERS:
                bucket[key] += row[backend][key]
        if row["default"]["result"] != row["arena"]["result"]:
            drift.append(row["case"])
        results.append(row)

    for bucket in totals.values():
        bucket["wall_time"] = round(bucket["wall_time"], 6)
        bucket["sat_time"] = round(bucket["sat_time"], 6)
    arena_sat = totals["arena"]["sat_time"]
    arena_wall = totals["arena"]["wall_time"]
    return {
        "schema": BENCH_SCHEMA,
        "suite": args.suite,
        "timeout": args.timeout,
        "reduce": not args.no_reduce,
        "repeat": max(args.repeat, 1),
        "num_cases": len(cases),
        "backends": list(BACKENDS),
        "totals": totals,
        "sat_speedup_arena": (
            round(totals["default"]["sat_time"] / arena_sat, 4) if arena_sat else None
        ),
        "wall_speedup_arena": (
            round(totals["default"]["wall_time"] / arena_wall, 4) if arena_wall else None
        ),
        "verdict_drift": drift,
        "results": results,
    }


def compare_to_baseline(report: dict, baseline: dict, max_slowdown: float):
    """Check this run against a committed snapshot; returns failure strings.

    Two checks, both machine-independent: per-case verdicts must match
    the snapshot on every case the two suites share, and the arena
    backend's default/arena SAT-time ratio must not have regressed by
    more than ``max_slowdown`` relative to the snapshot's ratio (a
    ratio of ratios — absolute times differ across machines).
    """
    failures = []
    snapshot = {row["case"]: row for row in baseline.get("results", [])}
    shared = 0
    for row in report["results"]:
        base_row = snapshot.get(row["case"])
        if base_row is None:
            continue
        shared += 1
        for backend in BACKENDS:
            if backend in base_row and row[backend]["result"] != base_row[backend]["result"]:
                failures.append(
                    f"verdict drift vs baseline on {row['case']} ({backend}): "
                    f"{row[backend]['result']} != {base_row[backend]['result']}"
                )
    if shared == 0:
        failures.append("baseline shares no cases with this suite")
    base_speedup = baseline.get("sat_speedup_arena")
    speedup = report.get("sat_speedup_arena")
    if base_speedup and speedup and speedup < base_speedup / max_slowdown:
        failures.append(
            f"arena SAT speedup regressed: {speedup}x vs baseline "
            f"{base_speedup}x (allowed factor {max_slowdown})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES), default="quick")
    parser.add_argument("--timeout", type=float, default=30.0, help="per-case limit")
    parser.add_argument(
        "--no-reduce", action="store_true", help="run on the unreduced models"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="runs per (case, backend); the fastest is recorded (noise damping)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless arena total SAT time beats default by this factor",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_*.json to replay (verdicts + speedup ratio)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=1.5,
        help="allowed arena-speedup regression factor vs the baseline",
    )
    args = parser.parse_args(argv)

    report = run_suite(args)
    totals = report["totals"]
    print(
        f"backend comparison ({report['suite']} suite, {report['num_cases']} cases, "
        f"reduce={report['reduce']}):"
    )
    for backend in BACKENDS:
        bucket = totals[backend]
        print(
            f"  {backend:<8s} wall={bucket['wall_time']:.2f}s "
            f"sat={bucket['sat_time']:.2f}s solved={bucket['solved']} "
            f"sat_calls={bucket['sat_calls']} "
            f"traversals={bucket['watch_traversals']} "
            f"(blocker_hits={bucket['blocker_hits']}, "
            f"pool_bytes={bucket['literal_pool_bytes']}, "
            f"compactions={bucket['arena_compactions']}, "
            f"removed={bucket['solver_removed_clauses']})"
        )
    print(
        f"  arena speedup: {report['sat_speedup_arena']}x SAT time, "
        f"{report['wall_speedup_arena']}x wall time"
    )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"  report written to {args.output}")

    exit_code = 0
    if report["verdict_drift"]:
        print(f"FAIL: verdict drift between backends on {report['verdict_drift']}")
        exit_code = 1
    if args.min_speedup is not None:
        speedup = report["sat_speedup_arena"]
        if speedup is None or speedup < args.min_speedup:
            print(
                f"FAIL: arena SAT speedup {speedup}x below the "
                f"{args.min_speedup}x gate"
            )
            exit_code = 1
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_to_baseline(report, baseline, args.max_slowdown)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            exit_code = 1
        else:
            print(f"  baseline {args.baseline} replayed clean")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
