"""Figure 4 — Runtime ratio (base / prediction) against SR_adv.

The paper plots the per-case runtime ratio of the implementation without
over the implementation with the optimization against the success rate of
avoiding dropped variables (SR_adv), together with the cumulative number
of improved cases; higher prediction accuracy correlates with better
speedups.  Cases where both runs finish under 1 s or both time out are
excluded.  The reproduction regenerates the points (scaling the exclusion
threshold to the reduced suite) and checks the correlation's direction.
"""

import pytest

from repro.core import IC3, CheckResult
from repro.harness import ratio_vs_sradv
from repro.harness.configs import config_by_name

from benchmarks.conftest import bench_suite


# The paper excludes cases below 1 s of its 1000 s budget; scaled to the
# reduced suite this corresponds to a handful of milliseconds.
MIN_RUNTIME = 0.02


class TestFigure4:
    @pytest.mark.parametrize("pair", [("RIC3", "RIC3-pl"), ("IC3ref", "IC3ref-pl")])
    def test_regenerate_ratio_series(self, suite_result, benchmark, pair):
        base_name, pl_name = pair
        data = benchmark.pedantic(
            ratio_vs_sradv,
            args=(suite_result, base_name, pl_name),
            kwargs={"min_runtime": MIN_RUNTIME},
            rounds=3,
            iterations=1,
        )

        print(f"\nFigure 4 ({base_name} vs {pl_name}):")
        for point in data.sorted_by_sr_adv():
            print(
                f"  SR_adv={point.sr_adv:5.2f}  ratio={point.ratio:6.2f}  "
                f"{'improved' if point.improved else 'slower  '}  {point.case_name}"
            )

        assert data.points, "the exclusion rule removed every case"
        for point in data.points:
            assert 0.0 <= point.sr_adv <= 1.0
            assert point.ratio > 0.0

        cumulative = data.cumulative_improved()
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] >= 1, "no case improved at all"

    def test_high_accuracy_cases_improve_more_often(self, suite_result):
        """The paper's claim: higher SR_adv, higher chance of improvement."""
        data = ratio_vs_sradv(
            suite_result, "IC3ref", "IC3ref-pl", min_runtime=MIN_RUNTIME
        )
        points = data.sorted_by_sr_adv()
        if len(points) < 4:
            pytest.skip("too few measurable cases for a correlation check")
        half = len(points) // 2
        low_half = points[:half]
        high_half = points[half:]
        low_rate = sum(1 for p in low_half if p.improved) / len(low_half)
        high_rate = sum(1 for p in high_half if p.improved) / len(high_half)
        # Direction of the correlation (with slack for the small sample).
        assert high_rate >= low_rate - 0.25

    def test_mean_ratio_at_least_one(self, suite_result):
        data = ratio_vs_sradv(
            suite_result, "IC3ref", "IC3ref-pl", min_runtime=MIN_RUNTIME
        )
        if not data.points:
            pytest.skip("no measurable cases")
        mean_ratio = sum(p.ratio for p in data.points) / len(data.points)
        assert mean_ratio >= 0.9


class TestFigure4Microbenchmark:
    """The ratio measurement for one high-SR_adv case."""

    CASE = [c for c in bench_suite() if c.name.startswith("modcnt_w4")][0]

    @pytest.mark.parametrize("config_name", ["IC3ref", "IC3ref-pl"])
    def test_ratio_ingredient(self, benchmark, config_name):
        config = config_by_name(config_name)

        def run():
            outcome = IC3(self.CASE.aig, config.options).check(time_limit=60)
            assert outcome.result == CheckResult.SAFE
            return outcome

        benchmark.pedantic(run, rounds=3, iterations=1)
