"""End-to-end wall-time trajectory of the six-configuration harness.

The committed ``BENCH_*.json`` snapshots so far cover subsystem
comparisons (SAT backends, portfolio sharing).  This harness extends the
same committed-snapshot discipline to the *full evaluation*: it runs all
six paper configurations over a suite exactly as ``repro-check
evaluate`` does — same runner, same hard-timeout pool — and records per
(configuration, case) verdicts and runtimes, per-configuration PAR-1
totals, and two machine-independent shapes:

* ``config_ratios`` — each configuration's PAR-1 total relative to the
  first configuration's (RIC3).  Machines differ in absolute speed but
  the *relative* cost of the configurations is a property of the code;
* ``overhead_ratio`` — harness wall clock divided by the sum of the
  engines' own runtimes: the end-to-end overhead of process pools,
  result plumbing and (when enabled) telemetry.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py \
        --suite quick --repeat 3 --output BENCH_10.json

    PYTHONPATH=src python benchmarks/trajectory.py \
        --suite quick --baseline BENCH_10.json --max-slowdown 1.6

Exit status is non-zero when any verdict contradicts the ground truth,
when a worker crashed, or when ``--baseline`` is given and (a) any
shared (configuration, case) verdict drifted, (b) any configuration's
PAR-1 ratio regressed beyond ``--max-slowdown`` relative to the
snapshot's ratio (ratio of ratios), or (c) the overhead ratio grew past
``--max-overhead-growth`` times the snapshot's.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.benchgen.suite import (
    bench_suite,
    default_suite,
    extended_suite,
    quick_suite,
)
from repro.harness.configs import paper_configurations
from repro.harness.runner import BenchmarkRunner

SUITES = {
    "quick": quick_suite,
    "bench": bench_suite,
    "default": default_suite,
    "extended": extended_suite,
}

BENCH_SCHEMA = "repro-check/trajectory/v1"


def run_trajectory(args: argparse.Namespace) -> dict:
    """Run the six configurations over the suite and assemble the report."""
    cases = SUITES[args.suite]()
    configs = paper_configurations()
    best_suite = None
    best_wall = None
    for _ in range(max(args.repeat, 1)):
        runner = BenchmarkRunner(
            cases,
            configs,
            timeout=args.timeout,
            validate=False,
            jobs=args.jobs,
            reduce=not args.no_reduce,
        )
        start = time.perf_counter()
        suite_result = runner.run()
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall, best_suite = wall, suite_result
    suite_result, wall_clock = best_suite, best_wall

    results = [
        {
            "case": r.case_name,
            "config": r.config_name,
            "result": r.result.value,
            "runtime": round(r.runtime, 6),
            "penalized_runtime": round(r.penalized_runtime, 6),
            "solved": r.solved,
            "correct": r.correct,
            "error": r.error,
        }
        for r in suite_result.results
    ]
    totals = {
        name: {
            "solved": suite_result.solved_count(name),
            "par1_time": round(
                sum(r.penalized_runtime for r in suite_result.by_config(name)), 6
            ),
        }
        for name in suite_result.configs()
    }
    anchor = next(iter(totals))
    anchor_par1 = totals[anchor]["par1_time"]
    config_ratios = {
        name: (round(bucket["par1_time"] / anchor_par1, 4) if anchor_par1 else None)
        for name, bucket in totals.items()
    }
    solve_time = sum(r.runtime for r in suite_result.results)
    return {
        "schema": BENCH_SCHEMA,
        "suite": args.suite,
        "timeout": args.timeout,
        "jobs": args.jobs,
        "reduce": not args.no_reduce,
        "repeat": max(args.repeat, 1),
        "num_cases": len(cases),
        "configs": list(totals),
        "anchor_config": anchor,
        "totals": totals,
        "config_ratios": config_ratios,
        "wall_clock": round(wall_clock, 6),
        "solve_time": round(solve_time, 6),
        "overhead_ratio": round(wall_clock / solve_time, 4) if solve_time else None,
        "wrong": [
            f"{r.config_name}/{r.case_name}"
            for r in suite_result.incorrect_results()
        ],
        "crashed": [
            f"{r.config_name}/{r.case_name}"
            for r in suite_result.results
            if r.error
        ],
        "results": results,
    }


def compare_to_baseline(
    report: dict,
    baseline: dict,
    max_slowdown: float,
    max_overhead_growth: float,
):
    """Replay a committed snapshot; returns a list of failure strings.

    All three checks are machine-independent: verdict equality on shared
    (configuration, case) pairs, per-configuration PAR-1 ratios within
    ``max_slowdown`` of the snapshot's ratios (ratio of ratios — the
    anchor configuration normalizes machine speed away), and the
    harness overhead ratio within ``max_overhead_growth`` of the
    snapshot's.
    """
    failures = []
    snapshot = {
        (row["config"], row["case"]): row for row in baseline.get("results", [])
    }
    shared = 0
    for row in report["results"]:
        base_row = snapshot.get((row["config"], row["case"]))
        if base_row is None:
            continue
        shared += 1
        if row["result"] != base_row["result"]:
            failures.append(
                f"verdict drift vs baseline on {row['config']}/{row['case']}: "
                f"{row['result']} != {base_row['result']}"
            )
    if shared == 0:
        failures.append("baseline shares no (config, case) pairs with this run")
    base_ratios = baseline.get("config_ratios", {})
    for name, ratio in report.get("config_ratios", {}).items():
        base_ratio = base_ratios.get(name)
        if not base_ratio or not ratio:
            continue
        if ratio > base_ratio * max_slowdown:
            failures.append(
                f"config {name} PAR-1 ratio regressed: {ratio}x vs baseline "
                f"{base_ratio}x (allowed factor {max_slowdown})"
            )
    base_overhead = baseline.get("overhead_ratio")
    overhead = report.get("overhead_ratio")
    if base_overhead and overhead and overhead > base_overhead * max_overhead_growth:
        failures.append(
            f"harness overhead ratio regressed: {overhead}x vs baseline "
            f"{base_overhead}x (allowed factor {max_overhead_growth})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES), default="quick")
    parser.add_argument("--timeout", type=float, default=5.0, help="per-case limit")
    parser.add_argument(
        "--jobs", type=int, default=1, help="pool workers (1 keeps timings stable)"
    )
    parser.add_argument(
        "--no-reduce", action="store_true", help="solve the unreduced models"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="full harness runs; the fastest is recorded (noise damping)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_10.json to replay (verdicts + ratios)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=1.6,
        help="allowed per-config PAR-1 ratio regression vs the baseline",
    )
    parser.add_argument(
        "--max-overhead-growth",
        type=float,
        default=2.0,
        help="allowed harness overhead-ratio growth vs the baseline",
    )
    args = parser.parse_args(argv)

    report = run_trajectory(args)
    print(
        f"trajectory ({report['suite']} suite, {report['num_cases']} cases, "
        f"{len(report['configs'])} configs, wall={report['wall_clock']:.2f}s, "
        f"overhead={report['overhead_ratio']}x):"
    )
    for name in report["configs"]:
        bucket = report["totals"][name]
        print(
            f"  {name:<14s} solved={bucket['solved']:<3d} "
            f"par1={bucket['par1_time']:8.2f}s "
            f"ratio={report['config_ratios'][name]}x"
        )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"  report written to {args.output}")

    exit_code = 0
    if report["wrong"]:
        print(f"FAIL: verdicts contradict the ground truth: {report['wrong']}")
        exit_code = 1
    if report["crashed"]:
        print(f"FAIL: workers crashed on: {report['crashed']}")
        exit_code = 1
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_to_baseline(
            report, baseline, args.max_slowdown, args.max_overhead_growth
        )
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            exit_code = 1
        else:
            print(f"  baseline {args.baseline} replayed clean")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
