"""Monolithic vs per-frame frame-management substrate comparison.

Runs IC3 on a benchmark suite twice — once per frame backend — and
reports, per case and in total: wall time, verdicts (which must not
drift), physical lemma-clause traffic (the monolithic backend adds each
lemma once; the per-frame baseline copies it into every covered frame)
and the substrate counters of manifest schema v3.

Usage::

    PYTHONPATH=src python benchmarks/substrate_compare.py \
        --suite quick --timeout 5 --output substrate.json \
        --max-slowdown 1.5

Exit status is non-zero when the two backends disagree on any verdict,
or when ``--max-slowdown`` is given and the monolithic backend's total
IC3 wall time exceeds ``max_slowdown x`` the per-frame baseline's.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.benchgen.suite import (
    default_suite,
    extended_suite,
    quick_suite,
    reduction_suite,
)
from repro.core import IC3, IC3Options
from repro.reduce import reduce_aig

SUITES = {
    "quick": quick_suite,
    "default": default_suite,
    "extended": extended_suite,
    "reduction": reduction_suite,
}

BACKENDS = ("per-frame", "monolithic")


def run_suite(args: argparse.Namespace) -> dict:
    """Run every case under both backends and assemble the comparison."""
    cases = SUITES[args.suite]()
    results = []
    totals = {
        backend: {
            "wall_time": 0.0,
            "solved": 0,
            "sat_calls": 0,
            "lemma_clauses_added": 0,
            "lemma_clauses_removed": 0,
            "solver_clauses_shared": 0,
            "solver_clauses_duplicated": 0,
            "solver_rebuilds": 0,
            "activation_vars_recycled": 0,
            "assumption_levels_reused": 0,
        }
        for backend in BACKENDS
    }
    drift = []

    for case in cases:
        if args.no_reduce:
            model, prop = case.aig, 0
        else:
            reduction = reduce_aig(case.aig)
            model, prop = reduction.aig, reduction.property_index
        row = {"case": case.name}
        for backend in BACKENDS:
            options = IC3Options(frame_backend=backend)
            # Best-of-N wall time: repeats damp scheduler noise on shared
            # CI runners (counters are deterministic across repeats).
            elapsed = None
            for _ in range(max(args.repeat, 1)):
                start = time.perf_counter()
                outcome = IC3(model, options, property_index=prop).check(
                    time_limit=args.timeout
                )
                run_time = time.perf_counter() - start
                if elapsed is None or run_time < elapsed:
                    elapsed = run_time
            stats = outcome.stats
            row[backend] = {
                "result": outcome.result.value,
                "wall_time": round(elapsed, 6),
                "frames": outcome.frames,
                "sat_calls": stats.sat_calls,
                "lemmas_added": stats.lemmas_added,
                "lemma_clauses_added": stats.lemma_clauses_added,
                "lemma_clauses_removed": stats.lemma_clauses_removed,
                "solver_clauses_shared": stats.solver_clauses_shared,
                "solver_clauses_duplicated": stats.solver_clauses_duplicated,
                "solver_rebuilds": stats.solver_rebuilds,
                "activation_vars_recycled": stats.activation_vars_recycled,
                "assumption_levels_reused": stats.assumption_levels_reused,
            }
            bucket = totals[backend]
            bucket["wall_time"] += elapsed
            bucket["solved"] += int(outcome.result.value != "unknown")
            for key in (
                "sat_calls",
                "lemma_clauses_added",
                "lemma_clauses_removed",
                "solver_clauses_shared",
                "solver_clauses_duplicated",
                "solver_rebuilds",
                "activation_vars_recycled",
                "assumption_levels_reused",
            ):
                bucket[key] += row[backend][key]
        if row["per-frame"]["result"] != row["monolithic"]["result"]:
            drift.append(row["case"])
        results.append(row)

    for bucket in totals.values():
        bucket["wall_time"] = round(bucket["wall_time"], 6)
    pf_time = totals["per-frame"]["wall_time"]
    mono_time = totals["monolithic"]["wall_time"]
    pf_clauses = totals["per-frame"]["lemma_clauses_added"]
    mono_net = (
        totals["monolithic"]["lemma_clauses_added"]
        - totals["monolithic"]["lemma_clauses_removed"]
    )
    return {
        "suite": args.suite,
        "timeout": args.timeout,
        "reduce": not args.no_reduce,
        "num_cases": len(cases),
        "totals": totals,
        "speedup_monolithic": round(pf_time / mono_time, 4) if mono_time else None,
        "clause_reduction": (
            round(1.0 - mono_net / pf_clauses, 4) if pf_clauses else None
        ),
        "verdict_drift": drift,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES), default="quick")
    parser.add_argument("--timeout", type=float, default=5.0, help="per-case limit")
    parser.add_argument(
        "--no-reduce", action="store_true", help="run on the unreduced models"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="runs per (case, backend); the fastest is recorded (noise damping)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        help="fail if monolithic total wall time exceeds this factor of per-frame",
    )
    args = parser.parse_args(argv)

    report = run_suite(args)
    totals = report["totals"]
    print(
        f"substrate comparison ({report['suite']} suite, {report['num_cases']} cases, "
        f"reduce={report['reduce']}):"
    )
    for backend in BACKENDS:
        bucket = totals[backend]
        print(
            f"  {backend:<11s} wall={bucket['wall_time']:.2f}s "
            f"solved={bucket['solved']} sat_calls={bucket['sat_calls']} "
            f"lemma_clauses={bucket['lemma_clauses_added']} "
            f"(shared={bucket['solver_clauses_shared']}, "
            f"duplicated={bucket['solver_clauses_duplicated']}, "
            f"removed={bucket['lemma_clauses_removed']}, "
            f"rebuilds={bucket['solver_rebuilds']})"
        )
    print(
        f"  monolithic speedup: {report['speedup_monolithic']}x, "
        f"lemma-clause reduction: "
        f"{report['clause_reduction'] * 100 if report['clause_reduction'] is not None else 0:.1f}%"
    )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"  report written to {args.output}")

    if report["verdict_drift"]:
        print(f"FAIL: verdict drift on {report['verdict_drift']}")
        return 1
    if args.max_slowdown is not None and report["speedup_monolithic"] is not None:
        if report["speedup_monolithic"] < 1.0 / args.max_slowdown:
            print(
                f"FAIL: monolithic backend slower than "
                f"{args.max_slowdown}x per-frame baseline "
                f"(speedup {report['speedup_monolithic']}x)"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
