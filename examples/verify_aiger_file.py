#!/usr/bin/env python3
"""Verify an AIGER file end to end: IC3-pl, BMC cross-check, trace replay.

This is the workflow a hardware engineer would run on a real design dump:

1. read the ``.aag``/``.aig`` file (one is generated on the fly if no path
   is given, so the example is runnable out of the box);
2. model-check it with IC3 + lemma prediction;
3. on UNSAFE, replay the counterexample on the circuit by simulation and
   cross-check the depth with BMC;
4. on SAFE, validate the inductive invariant clause by clause.

Run with::

    python examples/verify_aiger_file.py [path/to/model.aag]
"""

import sys
import tempfile
from pathlib import Path

from repro import IC3, BMC, CheckResult, IC3Options
from repro.aiger import read_aiger, write_aag
from repro.benchgen import round_robin_arbiter
from repro.core import check_certificate, check_counterexample


def default_model_path() -> Path:
    """Write a buggy arbiter to a temporary AIGER file and return its path."""
    case = round_robin_arbiter(4, safe=False)
    path = Path(tempfile.gettempdir()) / "repro_example_arbiter.aag"
    write_aag(case.aig, path)
    print(f"(no model given; wrote the buggy round-robin arbiter to {path})")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else default_model_path()
    aig = read_aiger(path)
    print(f"Read {path}: {aig!r}")

    outcome = IC3(aig, IC3Options().with_prediction()).check(time_limit=120)
    print(f"IC3-pl verdict: {outcome.summary()}")

    if outcome.result == CheckResult.UNSAFE:
        check_counterexample(aig, outcome.trace)
        print(f"Counterexample of depth {outcome.trace.depth} replayed on the circuit.")
        for step_index, step in enumerate(outcome.trace.steps):
            inputs = {k: int(v) for k, v in sorted(step.inputs.items())}
            print(f"  step {step_index}: inputs={inputs}")
        bmc = BMC(aig).check(max_depth=outcome.trace.depth + 2)
        if bmc.result == CheckResult.UNSAFE:
            print(f"BMC cross-check: shortest counterexample has depth {bmc.trace.depth}.")
    elif outcome.result == CheckResult.SAFE:
        check_certificate(aig, outcome.certificate)
        print(f"Inductive invariant with {len(outcome.certificate)} clauses validated:")
        for clause in outcome.certificate.clauses[:10]:
            print(f"  {clause!r}")
        if len(outcome.certificate) > 10:
            print(f"  ... and {len(outcome.certificate) - 10} more")
    else:
        print(f"Inconclusive: {outcome.reason}")


if __name__ == "__main__":
    main()
