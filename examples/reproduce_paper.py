#!/usr/bin/env python3
"""Reproduce the paper's full evaluation (Tables 1-2, Figures 2-4).

Runs the six configuration stand-ins (RIC3, RIC3-pl, IC3ref, IC3ref-pl,
IC3ref-CAV23, ABC-PDR) over the synthetic benchmark suite under a per-case
time limit and prints the reproduced tables and figure summaries.  The
output of this script (with the default arguments) is what EXPERIMENTS.md
records.

Run with::

    python examples/reproduce_paper.py --timeout 5          # full suite (a few minutes)
    python examples/reproduce_paper.py --quick --timeout 10  # smoke-test subset
"""

import argparse
import sys

from repro.benchgen import default_suite, quick_suite
from repro.harness import run_paper_evaluation


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=5.0, help="per-case time limit (s)")
    parser.add_argument("--quick", action="store_true", help="use the small smoke-test suite")
    parser.add_argument("--validate", action="store_true", help="validate every certificate/trace")
    parser.add_argument("--verbose", action="store_true", help="print per-case progress")
    parser.add_argument("--csv", type=str, default=None, help="also write Table 1 as CSV to this path")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes (0 = one per CPU; default: 1)",
    )
    parser.add_argument(
        "--no-reduce", action="store_true",
        help="solve the original models without reduction preprocessing",
    )
    args = parser.parse_args(argv)

    cases = quick_suite() if args.quick else default_suite()
    print(f"Running {len(cases)} cases x 6 configurations, timeout {args.timeout:.1f}s per case ...")
    report = run_paper_evaluation(
        cases=cases,
        timeout=args.timeout,
        validate=args.validate,
        verbose=args.verbose,
        jobs=args.jobs,
        reduce=not args.no_reduce,
    )
    print()
    print(report.to_text())

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(report.table1.to_csv() + "\n")
        print(f"\nTable 1 written to {args.csv}")

    wrong = report.suite_result.incorrect_results()
    if wrong:
        print(f"\nERROR: {len(wrong)} results contradict the ground truth:")
        for result in wrong:
            print(f"  {result.config_name} on {result.case_name}: {result.result.value}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
