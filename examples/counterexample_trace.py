#!/usr/bin/env python3
"""Debugging an UNSAFE design: extract, inspect and replay a counterexample.

The example uses the combination-lock circuit (the lock opens after a
specific input sequence), finds the opening sequence with IC3 + lemma
prediction, cross-checks the shortest depth with BMC and k-induction, and
replays the trace cycle by cycle on the AIG simulator — printing the latch
contents and the bad signal at every step, the way a waveform viewer would
show it.

Run with::

    python examples/counterexample_trace.py
"""

from repro import IC3, BMC, KInduction, CheckResult, IC3Options
from repro.benchgen import combination_lock
from repro.core import check_counterexample


def main() -> None:
    code = [1, 3, 2, 1]
    case = combination_lock(code, symbol_bits=2)
    aig = case.aig
    print(f"Model: {case.describe()}")
    print(f"Secret code: {code}")
    print()

    outcome = IC3(aig, IC3Options().with_prediction()).check(time_limit=120)
    assert outcome.result == CheckResult.UNSAFE, outcome.summary()
    check_counterexample(aig, outcome.trace)
    print(f"IC3-pl found a counterexample of depth {outcome.trace.depth} "
          f"in {outcome.runtime:.3f}s ({outcome.stats.sat_calls} SAT calls)")

    bmc = BMC(aig).check(max_depth=len(code) + 2)
    kind = KInduction(aig).check(max_k=len(code) + 2)
    print(f"BMC shortest depth : {bmc.trace.depth}")
    print(f"k-induction verdict: {kind.result.value}")
    print()

    print("Replaying the IC3 trace on the circuit simulator:")
    records = aig.simulate(outcome.trace.input_sequence())
    for step, record in enumerate(records):
        symbol = sum(
            (1 << i) for i, lit in enumerate(aig.inputs) if record["inputs"][lit]
        )
        progress = sum(
            (1 << i)
            for i, latch in enumerate(aig.latches)
            if record["latches"][latch.lit]
        )
        bad = record["bads"][0]
        print(
            f"  cycle {step}: entered symbol={symbol}  progress counter={progress}  "
            f"unlocked={'YES' if bad else 'no'}"
        )


if __name__ == "__main__":
    main()
