#!/usr/bin/env python3
"""Compare generalization strategies on one family of circuits.

The paper's motivation is that inductive generalization dominates IC3's
runtime.  This example runs the same scaling family (Johnson counters)
under four engine configurations — basic MIC, CTG-aware MIC, the CAV'23
parent-ordered MIC and basic MIC plus the paper's lemma prediction — and
prints how the SAT-query and drop-attempt counts grow with the circuit
size, which makes the saving from avoided variable dropping visible.

Run with::

    python examples/compare_generalization.py            # default widths
    python examples/compare_generalization.py 3 5        # explicit widths
"""

import sys

from repro import IC3, IC3Options
from repro.benchgen import johnson_counter
from repro.core.options import GeneralizationStrategy


CONFIGURATIONS = [
    ("basic MIC", IC3Options(generalization=GeneralizationStrategy.BASIC)),
    ("CTG MIC", IC3Options(generalization=GeneralizationStrategy.CTG)),
    ("parent-ordered MIC", IC3Options(generalization=GeneralizationStrategy.PARENT_ORDERED)),
    ("basic MIC + prediction", IC3Options(generalization=GeneralizationStrategy.BASIC).with_prediction()),
]

WIDTHS = [5, 7, 9, 11]


def main() -> None:
    widths = [int(arg) for arg in sys.argv[1:]] or WIDTHS
    header = (
        f"{'width':>5s}  {'configuration':<24s}  {'time(s)':>8s}  {'SAT':>6s}  "
        f"{'drops':>6s}  {'SR_adv':>7s}"
    )
    print(header)
    print("-" * len(header))
    for width in widths:
        case = johnson_counter(width, safe=True)
        for label, options in CONFIGURATIONS:
            outcome = IC3(case.aig, options).check(time_limit=120)
            stats = outcome.stats
            sr_adv = "-" if stats.sr_adv is None else f"{100 * stats.sr_adv:5.1f}%"
            print(
                f"{width:>5d}  {label:<24s}  {outcome.runtime:8.2f}  "
                f"{stats.sat_calls:6d}  {stats.mic_drop_attempts:6d}  {sr_adv:>7s}"
            )
        print()


if __name__ == "__main__":
    main()
