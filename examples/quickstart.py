#!/usr/bin/env python3
"""Quickstart: model-check a small circuit with IC3 and lemma prediction.

The example builds a FIFO occupancy controller (a classic hardware
verification target), checks its "never overflows" property with IC3 both
with and without the paper's CTP-based lemma prediction, validates the
certificate independently, and prints the prediction statistics the paper
reports in Table 2.

Run with::

    python examples/quickstart.py
"""

from repro import IC3, IC3Options
from repro.benchgen import fifo_controller
from repro.core import check_certificate


def main() -> None:
    case = fifo_controller(4, safe=True)
    print(f"Model: {case.describe()}")
    print(f"Circuit: {case.aig!r}")
    print()

    for label, options in [
        ("IC3 (baseline)", IC3Options()),
        ("IC3 + predicting lemmas", IC3Options().with_prediction()),
    ]:
        outcome = IC3(case.aig, options).check(time_limit=60)
        print(f"{label}:")
        print(f"  verdict     : {outcome.result.value}")
        print(f"  runtime     : {outcome.runtime:.3f} s")
        print(f"  frames      : {outcome.frames}")
        print(f"  SAT calls   : {outcome.stats.sat_calls}")
        print(f"  lemmas      : {outcome.stats.lemmas_added}")
        if options.enable_prediction:
            stats = outcome.stats
            print(f"  predictions : {stats.prediction_successes}/{stats.prediction_queries} successful queries")
            print(f"  SR_lp       : {_pct(stats.sr_lp)}")
            print(f"  SR_fp       : {_pct(stats.sr_fp)}")
            print(f"  SR_adv      : {_pct(stats.sr_adv)}")
        if outcome.certificate is not None:
            check_certificate(case.aig, outcome.certificate)
            print(f"  certificate : {len(outcome.certificate)} clauses, independently validated")
        print()


def _pct(value):
    return "n/a" if value is None else f"{100.0 * value:.1f}%"


if __name__ == "__main__":
    main()
