"""Pluggable model-checking engines.

This package turns the three core algorithms (IC3, BMC, k-induction) into
interchangeable :class:`~repro.engines.base.Engine` implementations behind
a string-keyed registry, and adds :class:`~repro.engines.portfolio.
PortfolioEngine`, which races members across processes and returns the
first definite verdict.

Registered kinds (see :func:`available_engines`):

============= ==========================================================
``ic3``        IC3/PDR without lemma prediction
``ic3-pl``     IC3/PDR with the paper's CTP-based lemma prediction
``bmc``        bounded model checking (finds counterexamples only)
``kind``       k-induction (alias ``k-induction``)
``portfolio``  process-parallel race of the above, first verdict wins
``l2s``        liveness-to-safety for justice properties (proof + lasso)
``klive``      k-liveness sweep for justice properties (proof only)
``scheduler``  multi-property scheduler: every bad/justice property of
               the model in one run on a shared substrate
============= ==========================================================

Typical use::

    from repro.engines import create_engine
    from repro.benchgen import token_ring

    engine = create_engine("portfolio", token_ring(6).aig)
    print(engine.check(time_limit=10.0).summary())
"""

from repro.engines.base import Engine, EngineError
from repro.engines.registry import (
    available_engines,
    canonical_name,
    create_engine,
    register_engine,
    resolve_engine,
)
from repro.engines.adapters import BMCEngine, IC3Engine, KInductionEngine
from repro.engines.portfolio import DEFAULT_PORTFOLIO, PortfolioEngine
from repro.engines.liveness import KLivenessEngine, L2SEngine

__all__ = [
    "Engine",
    "EngineError",
    "available_engines",
    "canonical_name",
    "create_engine",
    "register_engine",
    "resolve_engine",
    "IC3Engine",
    "BMCEngine",
    "KInductionEngine",
    "PortfolioEngine",
    "DEFAULT_PORTFOLIO",
    "L2SEngine",
    "KLivenessEngine",
]
