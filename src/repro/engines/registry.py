"""String-keyed engine registry.

The registry maps engine kind names (``"ic3"``, ``"ic3-pl"``, ``"bmc"``,
``"kind"``, ``"portfolio"``) to factories that build a ready-to-run
:class:`~repro.engines.base.Engine` from an AIG.  The CLI ``--engine``
flag, the harness' :class:`~repro.harness.configs.EngineConfig.engine`
field and the portfolio's member list are all resolved through it, so a
new engine becomes available everywhere by registering one factory::

    from repro.engines import register_engine

    @register_engine("my-engine", aliases=("mine",))
    def _make_my_engine(aig, options=None, property_index=0, **kwargs):
        return MyEngine(aig, property_index=property_index)

Factories must accept ``(aig, *, options=None, property_index=0,
**kwargs)`` and ignore keywords they do not understand; this keeps one
uniform construction path for heterogeneous engines.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.aiger.aig import AIG
from repro.engines.base import Engine, EngineError

EngineFactory = Callable[..., Engine]

_REGISTRY: Dict[str, EngineFactory] = {}
_ALIASES: Dict[str, str] = {}


def register_engine(
    name: str,
    factory: Optional[EngineFactory] = None,
    *,
    aliases: tuple = (),
    overwrite: bool = False,
):
    """Register an engine factory under ``name`` (usable as a decorator)."""

    def _register(fn: EngineFactory) -> EngineFactory:
        if not overwrite and (name in _REGISTRY or name in _ALIASES):
            raise EngineError(f"engine {name!r} is already registered")
        _REGISTRY[name] = fn
        _ALIASES.pop(name, None)
        for alias in aliases:
            if not overwrite and (alias in _REGISTRY or alias in _ALIASES):
                raise EngineError(f"engine alias {alias!r} is already registered")
            _ALIASES[alias] = name
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def resolve_engine(name: str) -> EngineFactory:
    """Look up a factory by name or alias; raises ``KeyError`` if unknown."""
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(available_engines()))
        raise KeyError(f"unknown engine {name!r} (available: {known})") from None


def create_engine(name: str, aig: AIG, **kwargs) -> Engine:
    """Build a ready-to-run engine of the given kind for ``aig``."""
    return resolve_engine(name)(aig, **kwargs)


def available_engines(include_aliases: bool = False) -> List[str]:
    """Sorted names of all registered engine kinds."""
    names = set(_REGISTRY)
    if include_aliases:
        names.update(_ALIASES)
    return sorted(names)


def canonical_name(name: str) -> str:
    """Resolve an alias to its canonical engine name (identity otherwise)."""
    resolve_engine(name)  # raises KeyError on unknown names
    return _ALIASES.get(name, name)
