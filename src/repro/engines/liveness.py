"""Liveness engines behind the uniform Engine protocol.

``l2s`` compiles one justice property to a safety circuit
(:mod:`repro.props.l2s`) and hands it to any registered inner safety
engine — both proofs and refutations come back, and UNSAFE verdicts are
lifted to a :class:`~repro.core.result.LassoTrace` on the original AIG.

``klive`` runs the k-liveness sweep (:mod:`repro.props.klive`): one
counter circuit with ``max_k + 1`` bad literals, checked at increasing
``k`` until the inner engine proves a bound (SAFE) or the budget runs
out.  Bounds follow a doubling schedule (0, 1, 2, 4, ..., ``max_k``):
any bound at or above the minimal provable one is provable, so skipping
intermediate bounds only loosens the reported ``k`` while cutting the
number of from-scratch inner runs to O(log ``max_k``) on hard proofs
and on violated properties (which refute every bound).  k-liveness can
only *prove* justice properties; violations fall through as UNKNOWN and
are the l2s engine's job.

Both engines accept ``justice_index`` (defaulting to ``property_index``
so registry/harness call sites that number properties generically keep
working) and forward ``reduce``/``passes`` to the inner engine, which
therefore shrinks the *compiled* circuit and lifts witnesses back to it
before the liveness layer lifts them to the original model.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.aiger.aig import AIG
from repro.core.options import IC3Options
from repro.core.result import CheckOutcome, CheckResult
from repro.core.stats import IC3Stats
from repro.engines.registry import create_engine, register_engine
from repro.props.klive import kliveness
from repro.props.l2s import liveness_to_safety


def _inner_kwargs(
    inner: str,
    reduce: bool,
    passes: Optional[Sequence[str]],
    frame_backend: Optional[str],
    sat_backend: Optional[str],
    max_depth: int,
) -> dict:
    kwargs: dict = {"reduce": reduce, "passes": passes}
    if frame_backend is not None:
        kwargs["frame_backend"] = frame_backend
    if sat_backend is not None:
        kwargs["sat_backend"] = sat_backend
    if inner == "bmc":
        kwargs["max_depth"] = max_depth
    return kwargs


class L2SEngine:
    """Liveness-to-safety behind the Engine protocol."""

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        justice_index: Optional[int] = None,
        property_index: int = 0,
        inner: str = "ic3-pl",
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        frame_backend: Optional[str] = None,
        sat_backend: Optional[str] = None,
        max_depth: int = 50,
        name: Optional[str] = None,
        **_ignored,
    ):
        index = property_index if justice_index is None else justice_index
        self.inner = inner
        self.name = name or "l2s"
        self.l2s = liveness_to_safety(aig, index)
        self._engine = create_engine(
            inner,
            self.l2s.aig,
            options=options,
            property_index=0,
            **_inner_kwargs(inner, reduce, passes, frame_backend, sat_backend, max_depth),
        )

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        outcome = self._engine.check(time_limit=time_limit)
        transformation = self.l2s.summary()
        transformation["inner"] = self.inner
        outcome.transformation = transformation
        if outcome.result == CheckResult.UNSAFE and outcome.trace is not None:
            outcome.lasso = self.l2s.lift_trace(outcome.trace)
            outcome.trace = None  # the safety trace speaks the compiled model
        outcome.engine = self.name
        return outcome


class KLivenessEngine:
    """The k-liveness sweep behind the Engine protocol (proof-only)."""

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        justice_index: Optional[int] = None,
        property_index: int = 0,
        max_k: int = 16,
        inner: str = "ic3-pl",
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        frame_backend: Optional[str] = None,
        sat_backend: Optional[str] = None,
        name: Optional[str] = None,
        **_ignored,
    ):
        index = property_index if justice_index is None else justice_index
        self.inner = inner
        self.name = name or "klive"
        self.options = options
        self.reduce = reduce
        self.passes = passes
        self.frame_backend = frame_backend
        self.sat_backend = sat_backend
        self.compiled = kliveness(aig, index, max_k=max_k)

    @property
    def bound_schedule(self):
        """The doubling bound schedule: 0, 1, 2, 4, ..., max_k."""
        bounds = [0]
        k = 1
        while k < self.compiled.max_k:
            bounds.append(k)
            k *= 2
        if self.compiled.max_k > 0:
            bounds.append(self.compiled.max_k)
        return bounds

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None
        stats = IC3Stats()
        frames = 0
        refuted_at = -1
        for k in self.bound_schedule:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
            engine = create_engine(
                self.inner,
                self.compiled.aig,
                options=self.options,
                property_index=k,
                **_inner_kwargs(
                    self.inner,
                    self.reduce,
                    self.passes,
                    self.frame_backend,
                    self.sat_backend,
                    max_depth=50,
                ),
            )
            outcome = engine.check(time_limit=remaining)
            stats = stats.merge(outcome.stats)
            frames = max(frames, outcome.frames)
            if outcome.result == CheckResult.SAFE:
                transformation = self.compiled.summary()
                transformation["k"] = k
                transformation["inner"] = self.inner
                outcome.transformation = transformation
                outcome.engine = self.name
                outcome.stats = stats
                outcome.frames = frames
                outcome.runtime = time.perf_counter() - start
                return outcome
            if outcome.result == CheckResult.UNSAFE:
                refuted_at = k  # the bound is too small; raise k and retry
                continue
            return self._unknown(
                start,
                stats,
                frames,
                f"k-liveness inconclusive at k={k}: {outcome.reason or 'unknown'}",
            )
        if deadline is not None and time.perf_counter() > deadline:
            reason = f"time limit reached (largest refuted bound: k={refuted_at})"
        else:
            reason = (
                f"k-liveness bound exhausted at max_k={self.compiled.max_k} "
                f"(the property may be violated; try the l2s engine)"
            )
        return self._unknown(start, stats, frames, reason)

    def _unknown(
        self, start: float, stats: IC3Stats, frames: int, reason: str
    ) -> CheckOutcome:
        transformation = self.compiled.summary()
        transformation["inner"] = self.inner
        return CheckOutcome(
            result=CheckResult.UNKNOWN,
            runtime=time.perf_counter() - start,
            frames=frames,
            stats=stats,
            engine=self.name,
            reason=reason,
            transformation=transformation,
        )


# ----------------------------------------------------------------------
# Default registrations
# ----------------------------------------------------------------------
@register_engine("l2s", aliases=("liveness-to-safety",))
def _make_l2s(aig: AIG, options: Optional[IC3Options] = None, **kwargs) -> L2SEngine:
    return L2SEngine(aig, options=options, **kwargs)


@register_engine("klive", aliases=("k-liveness",))
def _make_klive(
    aig: AIG, options: Optional[IC3Options] = None, **kwargs
) -> KLivenessEngine:
    return KLivenessEngine(aig, options=options, **kwargs)


@register_engine("scheduler", aliases=("sched", "multi"))
def _make_scheduler(aig: AIG, options: Optional[IC3Options] = None, **kwargs):
    # Imported lazily: repro.props.scheduler itself pulls in the engine
    # registry, so a module-level import here would be circular.
    from repro.props.scheduler import SchedulerEngine

    return SchedulerEngine(aig, options=options, **kwargs)
