"""Cross-process lemma bus for the cooperative portfolio.

The bus carries *lemma records* — ``(member, level, clause)`` where the
clause is over latch-index literals (``±(index + 1)`` refers to latch
``index`` of the model every member races on) and ``level`` is the IC3
frame level the exporter proved the lemma at.  Receivers must treat every
record as **untrusted**: the import paths re-validate each clause with
their own SAT queries before installing it, so a hostile or buggy member
can waste a little validation time but can never flip a verdict.

Two transports implement the same port interface:

* :class:`ShmRingBus` (the default) — one ``multiprocessing.
  shared_memory`` ring buffer shared by all members.  Writers serialize
  records under a short lock and advance a monotonically increasing
  *head* byte counter; each reader keeps its own cursor and copies the
  delta on drain.  A lagging reader whose cursor falls more than the ring
  capacity behind the head has lost records: its cursor snaps forward to
  the head and the loss is reported (``bus_overflows``), so a slow member
  degrades gracefully instead of blocking the writers.
* :class:`QueueLemmaBus` — a ``multiprocessing.Queue`` per member;
  ``publish`` fans a record out to every *other* member's queue.  Used
  where POSIX shared memory is unavailable and as the differential
  oracle for the ring protocol in tests.

Both are created in the portfolio parent; members receive a picklable
:class:`PortHandle` and call :func:`open_port` in the child process.
The handle also carries the export-quality policy (maximum clause size,
minimum frame level), so the frame managers never need portfolio-level
configuration.

This module is deliberately free of any :mod:`repro.core` imports: the
engines inject ports into the core algorithms as duck-typed objects,
keeping the dependency arrow pointing core <- engines.
"""

from __future__ import annotations

import queue as queue_module
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - absent only on exotic builds
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

import multiprocessing

_HEADER = struct.Struct("<qqqq")  # magic, capacity, head, records
_RECORD = struct.Struct("<iiii")  # total_bytes, member, level, nlits
_LIT = struct.Struct("<i")
_MAGIC = 0x4C454D42  # "LEMB"

DEFAULT_CAPACITY = 1 << 20
"""Default ring data size in bytes (~16k ten-literal records)."""

MAX_CLAUSE_LITS = 64
"""Hard cap on record size; longer clauses are dropped at publish."""


class LemmaBusError(Exception):
    """Raised on malformed bus construction or a corrupted segment."""


@dataclass
class BusRecord:
    """One lemma on the bus (untrusted until re-validated by the reader)."""

    member: int
    level: int
    clause: Tuple[int, ...]


@dataclass
class SharePolicy:
    """Export-quality heuristic carried to every member with its handle."""

    max_lits: int = 8
    """Publish only lemmas with at most this many literals (short clauses
    prune more and cost less to validate)."""

    min_level: int = 2
    """Publish only lemmas proven at this frame level or higher (level-1
    lemmas are cheap to rediscover and rarely transfer)."""


@dataclass
class PortHandle:
    """Picklable description of one member's view of the bus."""

    transport: str
    member: int
    policy: SharePolicy = field(default_factory=SharePolicy)
    # shm transport
    shm_name: Optional[str] = None
    capacity: int = DEFAULT_CAPACITY
    lock: Optional[object] = None
    # queue transport
    queues: Optional[Tuple[object, ...]] = None


def _encode_record(member: int, level: int, clause: Sequence[int]) -> bytes:
    body = b"".join(_LIT.pack(lit) for lit in clause)
    total = _RECORD.size + len(body)
    return _RECORD.pack(total, member, level, len(clause)) + body


def _decode_records(data: bytes) -> List[BusRecord]:
    """Parse back-to-back records; a truncated tail is dropped silently."""
    records: List[BusRecord] = []
    offset = 0
    end = len(data)
    while offset + _RECORD.size <= end:
        total, member, level, nlits = _RECORD.unpack_from(data, offset)
        if total < _RECORD.size or nlits < 0 or offset + total > end:
            break  # corrupted or truncated: stop parsing this batch
        if total != _RECORD.size + nlits * _LIT.size:
            break
        lits = struct.unpack_from(f"<{nlits}i", data, offset + _RECORD.size)
        records.append(BusRecord(member=member, level=level, clause=lits))
        offset += total
    return records


class ShmRingBus:
    """Parent-side owner of the shared-memory ring segment."""

    transport = "shm"

    def __init__(self, capacity: int = DEFAULT_CAPACITY, policy: Optional[SharePolicy] = None):
        if _shm is None:
            raise LemmaBusError("multiprocessing.shared_memory is unavailable")
        if capacity < 4096:
            raise LemmaBusError(f"ring capacity {capacity} is too small")
        self.capacity = capacity
        self.policy = policy or SharePolicy()
        self._shm = _shm.SharedMemory(create=True, size=_HEADER.size + capacity)
        self._lock = multiprocessing.get_context().Lock()
        _HEADER.pack_into(self._shm.buf, 0, _MAGIC, capacity, 0, 0)
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def port_handle(self, member: int) -> PortHandle:
        """Handle for member ``member``; pass it through ``Process`` args."""
        return PortHandle(
            transport="shm",
            member=member,
            policy=self.policy,
            shm_name=self._shm.name,
            capacity=self.capacity,
            lock=self._lock,
        )

    def open_local_port(self, member: int) -> "ShmPort":
        """A port in *this* process (parent-side draining, tests)."""
        return ShmPort(self.port_handle(member), shm=self._shm, owned=False)

    def total_published(self) -> int:
        """Total records ever written (from the ring header)."""
        _, _, _, records = _HEADER.unpack_from(self._shm.buf, 0)
        return records

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - double close
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ShmPort:
    """One member's read/write view of the shared ring."""

    def __init__(self, handle: PortHandle, shm=None, owned: bool = True):
        if _shm is None:
            raise LemmaBusError("multiprocessing.shared_memory is unavailable")
        self.member = handle.member
        self.policy = handle.policy
        self.capacity = handle.capacity
        self._lock = handle.lock
        self._owned = owned
        if shm is None:
            shm = _attach_shared_memory(handle.shm_name)
        self._shm = shm
        magic, capacity, head, _ = _HEADER.unpack_from(self._shm.buf, 0)
        if magic != _MAGIC or capacity != handle.capacity:
            raise LemmaBusError("shared ring header mismatch")
        # Start reading at the current head: records published before this
        # member attached were meant for the members racing then.
        self._cursor = head
        self._closed = False
        # Local accounting (mirrored into IC3Stats by the exchange layer).
        self.published = 0
        self.received = 0
        self.dropped_oversize = 0
        self.overflows = 0

    # -- write ----------------------------------------------------------
    def publish(self, level: int, clause: Sequence[int]) -> bool:
        """Append one record; False when dropped (policy, oversize or closed)."""
        if self._closed:
            return False
        nlits = len(clause)
        if nlits == 0 or nlits > min(MAX_CLAUSE_LITS, self.policy.max_lits):
            self.dropped_oversize += 1
            return False
        if level < self.policy.min_level:
            return False
        record = _encode_record(self.member, level, clause)
        if len(record) > self.capacity:
            self.dropped_oversize += 1
            return False
        buf = self._shm.buf
        with self._lock:
            _, _, head, records = _HEADER.unpack_from(buf, 0)
            start = head % self.capacity
            first = min(len(record), self.capacity - start)
            data_base = _HEADER.size
            buf[data_base + start:data_base + start + first] = record[:first]
            if first < len(record):  # wrap around
                buf[data_base:data_base + len(record) - first] = record[first:]
            _HEADER.pack_into(buf, 0, _MAGIC, self.capacity, head + len(record), records + 1)
        self.published += 1
        return True

    # -- read -----------------------------------------------------------
    def pending(self) -> bool:
        """Cheap unlocked peek: has anything been written past our cursor?

        A torn read can only misreport transiently; the next locked drain
        sees the truth, so this is safe as a throttling hint.
        """
        if self._closed:
            return False
        _, _, head, _ = _HEADER.unpack_from(self._shm.buf, 0)
        return head != self._cursor

    def drain(self) -> Tuple[List[BusRecord], int]:
        """Return (new records from other members, records lost to lag)."""
        if self._closed:
            return [], 0
        buf = self._shm.buf
        with self._lock:
            _, _, head, _ = _HEADER.unpack_from(buf, 0)
            lost = 0
            if head - self._cursor > self.capacity:
                # Fell behind by more than one ring: everything between
                # cursor and head-capacity is unrecoverable, and anything
                # newer may be mid-overwrite.  Resynchronize at the head.
                lost = 1
                self._cursor = head
                data = b""
            else:
                start = self._cursor % self.capacity
                length = head - self._cursor
                data_base = _HEADER.size
                first = min(length, self.capacity - start)
                data = bytes(buf[data_base + start:data_base + start + first])
                if first < length:
                    data += bytes(buf[data_base:data_base + length - first])
                self._cursor = head
        if lost:
            self.overflows += 1
        records = [r for r in _decode_records(data) if r.member != self.member]
        self.received += len(records)
        return records, lost

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owned:
            try:
                self._shm.close()
            except (OSError, ValueError):  # pragma: no cover
                pass


def _attach_shared_memory(name: str):
    """Attach to an existing segment without resource-tracker ownership.

    On CPython < 3.13 merely *attaching* registers the segment with the
    resource tracker exactly like creating it does, so attaching members
    would fight the creating parent over who unlinks the segment and the
    tracker would log spurious leak/KeyError noise at exit.  Python 3.13
    grew ``track=False`` for precisely this; on older versions we briefly
    suppress the register call during attach.  Only the portfolio parent
    (the creator) ever unlinks.
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _no_track(resource_name, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original_register(resource_name, rtype)

    resource_tracker.register = _no_track
    try:
        return _shm.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class QueueLemmaBus:
    """Queue-backed fallback transport: one queue per member, fan-out writes."""

    transport = "queue"

    def __init__(
        self,
        members: int,
        capacity_records: int = 4096,
        policy: Optional[SharePolicy] = None,
    ):
        if members < 1:
            raise LemmaBusError("queue bus needs at least one member")
        ctx = multiprocessing.get_context()
        self.policy = policy or SharePolicy()
        self._queues = tuple(ctx.Queue(capacity_records) for _ in range(members))
        self._published = ctx.Value("q", 0)
        self._closed = False

    def port_handle(self, member: int) -> PortHandle:
        return PortHandle(
            transport="queue",
            member=member,
            policy=self.policy,
            queues=self._queues + (self._published,),
        )

    def open_local_port(self, member: int) -> "QueuePort":
        return QueuePort(self.port_handle(member))

    def total_published(self) -> int:
        with self._published.get_lock():
            return int(self._published.value)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for q in self._queues:
            try:
                while True:
                    q.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                pass
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def unlink(self) -> None:
        """Queues have no named OS resource; nothing to do."""


class QueuePort:
    """One member's view of the queue bus."""

    def __init__(self, handle: PortHandle):
        self.member = handle.member
        self.policy = handle.policy
        queues = handle.queues
        self._queues = queues[:-1]
        self._published_counter = queues[-1]
        self._closed = False
        self.published = 0
        self.received = 0
        self.dropped_oversize = 0
        self.overflows = 0

    def publish(self, level: int, clause: Sequence[int]) -> bool:
        if self._closed:
            return False
        if not clause or len(clause) > min(MAX_CLAUSE_LITS, self.policy.max_lits):
            self.dropped_oversize += 1
            return False
        if level < self.policy.min_level:
            return False
        record = BusRecord(member=self.member, level=level, clause=tuple(clause))
        delivered = False
        for index, q in enumerate(self._queues):
            if index == self.member:
                continue
            try:
                q.put_nowait(record)
                delivered = True
            except (queue_module.Full, OSError, ValueError):
                self.overflows += 1
        if delivered:
            self.published += 1
            try:
                with self._published_counter.get_lock():
                    self._published_counter.value += 1
            except (OSError, ValueError):  # pragma: no cover
                pass
        return delivered

    def pending(self) -> bool:
        if self._closed:
            return False
        try:
            return not self._queues[self.member].empty()
        except (OSError, ValueError):  # pragma: no cover
            return False

    def drain(self) -> Tuple[List[BusRecord], int]:
        if self._closed:
            return [], 0
        records: List[BusRecord] = []
        own = self._queues[self.member]
        while True:
            try:
                record = own.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                break
            if isinstance(record, BusRecord) and record.member != self.member:
                records.append(record)
        self.received += len(records)
        return records, 0

    def close(self) -> None:
        self._closed = True


def create_bus(
    members: int,
    transport: str = "shm",
    capacity: int = DEFAULT_CAPACITY,
    policy: Optional[SharePolicy] = None,
):
    """Create the parent-side bus, falling back to queues when shm fails."""
    if transport == "shm":
        try:
            return ShmRingBus(capacity=capacity, policy=policy)
        except (LemmaBusError, OSError, PermissionError):
            transport = "queue"
    if transport == "queue":
        return QueueLemmaBus(members, policy=policy)
    raise LemmaBusError(f"unknown lemma-bus transport {transport!r}")


def open_port(handle: PortHandle):
    """Open a member's port from its picklable handle (child-process side)."""
    if handle.transport == "shm":
        return ShmPort(handle)
    if handle.transport == "queue":
        return QueuePort(handle)
    raise LemmaBusError(f"unknown lemma-bus transport {handle.transport!r}")
