"""The engine abstraction shared by every model checker in this package.

Historically IC3, BMC and k-induction were three unrelated classes with
ad-hoc constructor and ``check()`` signatures.  The :class:`Engine`
protocol pins down the one contract the harness, the CLI and the
portfolio racer rely on:

* an engine is constructed from an AIG (plus keyword configuration) and
  is ready to run afterwards;
* ``name`` identifies the engine in outcomes, tables and logs;
* ``check(time_limit)`` runs the verification and returns a
  :class:`~repro.core.result.CheckOutcome` whose ``result`` is SAFE,
  UNSAFE or UNKNOWN.

``time_limit`` is a *cooperative* budget: engines are expected to poll it
between SAT calls and give up with UNKNOWN, but a single runaway SAT query
may overshoot.  Hard (worker-enforced) budgets are the job of
:mod:`repro.harness.pool`, which runs engines in killable subprocesses.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.core.result import CheckOutcome


@runtime_checkable
class Engine(Protocol):
    """Structural interface of a model-checking engine.

    Any object with a ``name`` attribute and a ``check(time_limit)``
    method satisfies the protocol — the adapters in
    :mod:`repro.engines.adapters` wrap the concrete core engines, and
    user code can register its own implementations with
    :func:`repro.engines.registry.register_engine`.
    """

    name: str

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        """Run the engine under a cooperative time budget (None = unbounded)."""
        ...


class EngineError(Exception):
    """Raised for engine construction/registry failures."""
