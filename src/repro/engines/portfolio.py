"""Portfolio solving: race several engines, first definite verdict wins.

IC3, BMC and k-induction have complementary strengths — BMC finds shallow
counterexamples fastest, k-induction proves shallow inductive properties
with two SAT calls per bound, IC3 handles everything else.  The
:class:`PortfolioEngine` runs the registered member engines concurrently
in separate OS processes (real parallelism; the pure-Python SAT solver
holds the GIL), returns as soon as any member reaches SAFE or UNSAFE,
terminates the losers, and records the winner in
:attr:`~repro.core.result.CheckOutcome.winner`.

A member that errors out or returns UNKNOWN just drops out of the race;
UNKNOWN is only returned once every member has given up or the time limit
expired.  The parent enforces the ``time_limit`` *hard* — members stuck
inside a single SAT call are killed shortly after the budget, so a
portfolio ``check`` never overshoots the budget by more than a small
grace period.

With ``PortfolioOptions.share`` (the default) the race is *cooperative*:
the parent opens a shared-memory lemma bus (:mod:`repro.engines.lembus`),
every member publishes its newly proven frame lemmas and drains foreign
ones at its check-in points, and each import is revalidated locally
before installation — a poisoned or stale bus record can waste a SAT
call but can never flip a verdict.  Members may now repeat an engine
kind (``["ic3-pl", "ic3-pl", "bmc"]``): duplicates are auto-labelled
``name#k`` and diversified with distinct RNG seeds and configuration
jitter so that they explore different lemma sequences worth exchanging.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aiger.aig import AIG
from repro.core.options import IC3Options, LiteralOrdering
from repro.core.result import CheckOutcome, CheckResult
from repro.core.stats import IC3Stats
from repro.engines.adapters import finish_outcome, prepare_model
from repro.engines.lembus import (
    DEFAULT_CAPACITY,
    SharePolicy,
    create_bus,
    open_port,
)
from repro.engines.registry import canonical_name, create_engine, register_engine
from repro.obs.heartbeat import (
    get_heartbeat,
    maybe_install_worker_heartbeat,
    shutdown_worker_heartbeat,
)
from repro.obs.metrics import PORTFOLIO_WINS, record_engine_outcome
from repro.obs.tracer import (
    get_tracer,
    maybe_install_worker_tracer,
    shutdown_worker_tracer,
)

DEFAULT_PORTFOLIO: Tuple[str, ...] = ("ic3-pl", "bmc", "kind")

_POLL_INTERVAL = 0.05

# Engine kinds whose members publish frame lemmas onto the bus; the
# unrolling engines (bmc, kind) are import-only.
_EXPORTING_ENGINES = ("ic3", "ic3-pl")
"""How often the parent re-checks deadlines while waiting on members."""


@dataclass
class PortfolioOptions:
    """Cooperative-portfolio configuration (lemma sharing + diversification)."""

    share: bool = True
    """Exchange frame lemmas between members over the shared bus."""

    transport: str = "shm"
    """Bus transport: ``"shm"`` ring buffer, ``"queue"`` fallback
    (shm silently falls back to queues when the platform refuses it)."""

    capacity: int = DEFAULT_CAPACITY
    """Ring-buffer size in bytes (shm transport only)."""

    max_lits: int = 8
    """Quality filter: only clauses this short are worth shipping."""

    min_level: int = 2
    """Quality filter: minimum frame level before a lemma is exported."""

    base_seed: int = 1
    """Member ``i`` runs with SAT-kernel seed ``base_seed + i`` so the
    kernels branch differently and produce complementary lemmas.
    0 disables seeding entirely (all members run the deterministic
    unseeded decision order)."""

    diversify: bool = True
    """Apply per-member configuration jitter to duplicated engine kinds."""


@dataclass
class _MemberPlan:
    """One spawn slot: resolved label, engine name, options and kwargs."""

    label: str
    engine: str
    options: Optional[IC3Options]
    kwargs: Dict[str, object] = field(default_factory=dict)


_IC3_JITTER: Tuple[Dict[str, object], ...] = (
    {"literal_ordering": LiteralOrdering.ACTIVITY},
    {"literal_ordering": LiteralOrdering.REVERSE_INDEX},
    {"use_unsat_core_shrinking": False},
)
"""Option overrides cycled across duplicated IC3-kind members."""

_IC3_KWARG_JITTER: Tuple[Dict[str, object], ...] = (
    {"sat_backend": "arena"},
    {"frame_backend": "per-frame"},
    {},
)
"""Substrate overrides cycled across duplicated IC3-kind members
(explicit portfolio-level or per-member settings still win)."""


def _run_member(
    conn, label, engine_name, aig, options, property_index, time_limit, kwargs,
    lemma_handle=None,
):
    """Subprocess body: build one member engine, run it, ship the outcome back."""
    maybe_install_worker_tracer(f"portfolio-{label}")
    maybe_install_worker_heartbeat(f"portfolio-{label}")
    port = None
    try:
        if lemma_handle is not None:
            port = open_port(lemma_handle)
            kwargs = dict(kwargs)
            kwargs["lemma_port"] = port
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "portfolio.member", cat="engine", member=label
            ) as span:
                engine = create_engine(
                    engine_name, aig, options=options, property_index=property_index, **kwargs
                )
                outcome = engine.check(time_limit=time_limit)
                span.add(result=outcome.result.value)
        else:
            engine = create_engine(
                engine_name, aig, options=options, property_index=property_index, **kwargs
            )
            outcome = engine.check(time_limit=time_limit)
        conn.send(("ok", outcome))
    except BaseException as exc:  # noqa: BLE001 - must not kill the pipe silently
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if port is not None:
            port.close()
        shutdown_worker_heartbeat()
        shutdown_worker_tracer()
        conn.close()


class PortfolioEngine:
    """Races registered engines across processes; first verdict wins."""

    name = "portfolio"

    def __init__(
        self,
        aig: AIG,
        engines: Sequence[str] = DEFAULT_PORTFOLIO,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        jobs: Optional[int] = None,
        member_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
        grace: float = 0.5,
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        frame_backend: Optional[str] = None,
        sat_backend: Optional[str] = None,
        portfolio_options: Optional[PortfolioOptions] = None,
        **_ignored,
    ):
        if not engines:
            raise ValueError("portfolio needs at least one member engine")
        canonical = [canonical_name(member) for member in engines]  # fails fast on unknowns
        self.engines = tuple(engines)
        self.options = options
        self.portfolio_options = (
            portfolio_options if portfolio_options is not None else PortfolioOptions()
        )
        self.jobs = jobs if jobs and jobs > 0 else len(self.engines)
        self.member_kwargs = dict(member_kwargs or {})
        # Substrate selection applies to every member that honours it
        # (the IC3 adapters); per-member kwargs still win on conflict.
        self._common_kwargs: Dict[str, object] = {}
        if frame_backend is not None:
            self._common_kwargs["frame_backend"] = frame_backend
        if sat_backend is not None:
            self._common_kwargs["sat_backend"] = sat_backend
        self.grace = grace
        # Reduce once in the parent: every member races on the same shrunk
        # model (members are spawned with reduce=False), and the winning
        # witness is lifted back here.
        self._aig, self.property_index, self._reduction = prepare_model(
            aig, property_index, reduce, passes
        )
        self._plan = self._build_plan(canonical)

    # ------------------------------------------------------------------
    def _build_plan(self, canonical: Sequence[str]) -> List[_MemberPlan]:
        """Resolve labels, diversification jitter and seeds for every member.

        Duplicated engine kinds get ``name#k`` labels plus cycled option
        and substrate jitter; every member gets a distinct SAT-kernel
        seed derived from ``PortfolioOptions.base_seed``.  Per-member
        kwargs supplied by the caller (keyed by label, falling back to
        the raw engine name) always win.
        """
        pf = self.portfolio_options
        totals = Counter(canonical)
        seen: Counter = Counter()
        plan: List[_MemberPlan] = []
        for index, (member, canon) in enumerate(zip(self.engines, canonical)):
            dup = seen[canon]
            seen[canon] += 1
            label = member if totals[canon] == 1 else f"{member}#{dup + 1}"
            member_options = self.options
            kwargs: Dict[str, object] = {"reduce": False}
            if pf.diversify and dup and canon in ("ic3", "ic3-pl"):
                base = member_options if member_options is not None else IC3Options()
                member_options = replace(
                    base, **_IC3_JITTER[(dup - 1) % len(_IC3_JITTER)]
                )
                kwargs.update(_IC3_KWARG_JITTER[(dup - 1) % len(_IC3_KWARG_JITTER)])
            if pf.base_seed:
                kwargs["seed"] = (
                    pf.base_seed + index if pf.diversify else pf.base_seed
                )
            kwargs.update(self._common_kwargs)
            kwargs.update(self.member_kwargs.get(label, self.member_kwargs.get(member, {})))
            plan.append(_MemberPlan(label, member, member_options, kwargs))
        return plan

    # ------------------------------------------------------------------
    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        """Race the members; return the first definite verdict."""
        tracer = get_tracer()
        if not tracer.enabled:
            outcome = self._check_inner(time_limit)
        else:
            with tracer.span(
                "portfolio.race", cat="engine", members=list(self.engines)
            ) as span:
                outcome = self._check_inner(time_limit)
                span.add(winner=outcome.winner, result=outcome.result.value)
        record_engine_outcome(outcome)
        if outcome.winner:
            PORTFOLIO_WINS.inc(member=outcome.winner)
        return outcome

    def _check_inner(self, time_limit: Optional[float] = None) -> CheckOutcome:
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None
        hard_deadline = (
            deadline + max(self.grace, 0.05) if deadline is not None else None
        )

        ctx = multiprocessing.get_context()
        pending: List[_MemberPlan] = list(self._plan)
        running: Dict[object, Tuple[_MemberPlan, object]] = {}  # conn -> (plan, process)
        unknown: List[Tuple[str, CheckOutcome]] = []
        errors: List[Tuple[str, str]] = []
        reports: Dict[str, IC3Stats] = {}
        hb = get_heartbeat()
        member_states: Dict[str, str] = (
            {plan.label: "pending" for plan in self._plan} if hb.enabled else {}
        )

        def _publish_members() -> None:
            if hb.enabled:
                hb.update(engine=self.name, members=dict(member_states))

        pf = self.portfolio_options
        bus = None
        # Only IC3-family members export lemmas; a bus without at least
        # one exporter would leave import-only members (BMC, k-induction)
        # listening to silence — k-induction in particular would then sit
        # in its cooperative wait instead of conceding early.
        exporters = sum(1 for plan in self._plan if plan.engine in _EXPORTING_ENGINES)
        if pf.share and len(self._plan) >= 2 and exporters >= 1:
            bus = create_bus(
                len(self._plan),
                transport=pf.transport,
                capacity=pf.capacity,
                policy=SharePolicy(max_lits=pf.max_lits, min_level=pf.min_level),
            )

        try:
            while pending or running:
                while pending and len(running) < self.jobs:
                    plan = pending.pop(0)
                    member_index = self._plan.index(plan)
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    remaining = (
                        max(0.0, deadline - time.perf_counter())
                        if deadline is not None
                        else None
                    )
                    handle = (
                        bus.port_handle(member_index) if bus is not None else None
                    )
                    proc = ctx.Process(
                        target=_run_member,
                        args=(
                            child_conn,
                            plan.label,
                            plan.engine,
                            self._aig,
                            plan.options,
                            self.property_index,
                            remaining,
                            plan.kwargs,
                            handle,
                        ),
                        daemon=True,
                        name=f"portfolio-{plan.label}",
                    )
                    proc.start()
                    child_conn.close()
                    running[parent_conn] = (plan, proc)
                    if hb.enabled:
                        member_states[plan.label] = "running"
                        _publish_members()

                ready = multiprocessing.connection.wait(
                    list(running), timeout=_POLL_INTERVAL
                )
                for conn in ready:
                    plan, proc = running.pop(conn)
                    kind, payload = self._receive(conn)
                    proc.join(timeout=1.0)
                    if hb.enabled:
                        if kind != "ok":
                            member_states[plan.label] = "error"
                        elif payload.solved:
                            member_states[plan.label] = "winner"
                        else:
                            member_states[plan.label] = "unknown"
                        _publish_members()
                    if kind == "ok":
                        reports[plan.label] = payload.stats
                    if kind == "ok" and payload.solved:
                        payload = finish_outcome(payload, self._reduction)
                        payload.winner = plan.label
                        payload.engine = self.name
                        payload.runtime = time.perf_counter() - start
                        payload.sharing = self._sharing_summary(bus, reports)
                        return payload
                    if kind == "ok":
                        unknown.append((plan.label, payload))
                    else:
                        errors.append((plan.label, payload))

                if hard_deadline is not None and time.perf_counter() > hard_deadline:
                    break
        finally:
            for conn, (plan, proc) in running.items():
                _terminate(proc)
                conn.close()
            if bus is not None:
                self._sharing = self._sharing_summary(bus, reports)
                bus.close()
                bus.unlink()
            else:
                self._sharing = None

        outcome = self._inconclusive(start, deadline, unknown, errors)
        outcome.sharing = self._sharing
        return outcome

    # ------------------------------------------------------------------
    @staticmethod
    def _receive(conn) -> Tuple[str, object]:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            kind, payload = "error", "member process died without reporting"
        finally:
            conn.close()
        return kind, payload

    def _sharing_summary(
        self, bus, reports: Dict[str, IC3Stats]
    ) -> Optional[Dict[str, object]]:
        """Bus accounting attached to the outcome (and traced) after a race."""
        if bus is None:
            return None
        members = {
            label: {
                "lemmas_published": stats.lemmas_published,
                "lemmas_received": stats.lemmas_received,
                "lemmas_validated": stats.lemmas_validated,
                "lemmas_rejected": stats.lemmas_rejected,
                "lemmas_imported": stats.lemmas_imported,
                "bus_overflows": stats.bus_overflows,
            }
            for label, stats in reports.items()
        }
        summary = {
            "transport": bus.transport,
            "bus_published": bus.total_published(),
            "members": members,
        }
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "portfolio.share",
                cat="share",
                published=summary["bus_published"],
                members=len(members),
            )
        return summary

    def _inconclusive(self, start, deadline, unknown, errors) -> CheckOutcome:
        stats = IC3Stats()
        frames = 0
        for _, outcome in unknown:
            stats = stats.merge(outcome.stats)
            frames = max(frames, outcome.frames)
        if deadline is not None and time.perf_counter() > deadline:
            reason = "time limit reached"
        else:
            parts = [f"{name}: {o.reason or 'unknown'}" for name, o in unknown]
            parts += [f"{name}: {message}" for name, message in errors]
            reason = "no member reached a verdict (" + "; ".join(parts) + ")"
        return CheckOutcome(
            result=CheckResult.UNKNOWN,
            runtime=time.perf_counter() - start,
            frames=frames,
            stats=stats,
            engine=self.name,
            reason=reason,
            reduction=self._reduction.summary() if self._reduction else None,
        )


def _terminate(proc) -> None:
    """Stop a member process, escalating to SIGKILL if needed."""
    if not proc.is_alive():
        proc.join(timeout=0.1)
        return
    proc.terminate()
    proc.join(timeout=1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=1.0)


@register_engine("portfolio")
def _make_portfolio(aig: AIG, **kwargs) -> PortfolioEngine:
    return PortfolioEngine(aig, **kwargs)
