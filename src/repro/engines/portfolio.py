"""Portfolio solving: race several engines, first definite verdict wins.

IC3, BMC and k-induction have complementary strengths — BMC finds shallow
counterexamples fastest, k-induction proves shallow inductive properties
with two SAT calls per bound, IC3 handles everything else.  The
:class:`PortfolioEngine` runs the registered member engines concurrently
in separate OS processes (real parallelism; the pure-Python SAT solver
holds the GIL), returns as soon as any member reaches SAFE or UNSAFE,
terminates the losers, and records the winner in
:attr:`~repro.core.result.CheckOutcome.winner`.

A member that errors out or returns UNKNOWN just drops out of the race;
UNKNOWN is only returned once every member has given up or the time limit
expired.  The parent enforces the ``time_limit`` *hard* — members stuck
inside a single SAT call are killed shortly after the budget, so a
portfolio ``check`` never overshoots the budget by more than a small
grace period.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aiger.aig import AIG
from repro.core.options import IC3Options
from repro.core.result import CheckOutcome, CheckResult
from repro.core.stats import IC3Stats
from repro.engines.adapters import finish_outcome, prepare_model
from repro.engines.registry import canonical_name, create_engine, register_engine
from repro.obs.tracer import (
    get_tracer,
    maybe_install_worker_tracer,
    shutdown_worker_tracer,
)

DEFAULT_PORTFOLIO: Tuple[str, ...] = ("ic3-pl", "bmc", "kind")

_POLL_INTERVAL = 0.05
"""How often the parent re-checks deadlines while waiting on members."""


def _run_member(conn, engine_name, aig, options, property_index, time_limit, kwargs):
    """Subprocess body: build one member engine, run it, ship the outcome back."""
    maybe_install_worker_tracer(f"portfolio-{engine_name}")
    try:
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "portfolio.member", cat="engine", member=engine_name
            ) as span:
                engine = create_engine(
                    engine_name, aig, options=options, property_index=property_index, **kwargs
                )
                outcome = engine.check(time_limit=time_limit)
                span.add(result=outcome.result.value)
        else:
            engine = create_engine(
                engine_name, aig, options=options, property_index=property_index, **kwargs
            )
            outcome = engine.check(time_limit=time_limit)
        conn.send(("ok", outcome))
    except BaseException as exc:  # noqa: BLE001 - must not kill the pipe silently
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        shutdown_worker_tracer()
        conn.close()


class PortfolioEngine:
    """Races registered engines across processes; first verdict wins."""

    name = "portfolio"

    def __init__(
        self,
        aig: AIG,
        engines: Sequence[str] = DEFAULT_PORTFOLIO,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        jobs: Optional[int] = None,
        member_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
        grace: float = 0.5,
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        frame_backend: Optional[str] = None,
        sat_backend: Optional[str] = None,
        **_ignored,
    ):
        if not engines:
            raise ValueError("portfolio needs at least one member engine")
        canonical = [canonical_name(member) for member in engines]  # fails fast on unknowns
        if len(set(canonical)) != len(canonical):
            raise ValueError("portfolio members must be distinct")
        self.engines = tuple(engines)
        self.options = options
        self.jobs = jobs if jobs and jobs > 0 else len(self.engines)
        self.member_kwargs = dict(member_kwargs or {})
        # Substrate selection applies to every member that honours it
        # (the IC3 adapters); per-member kwargs still win on conflict.
        self._common_kwargs: Dict[str, object] = {}
        if frame_backend is not None:
            self._common_kwargs["frame_backend"] = frame_backend
        if sat_backend is not None:
            self._common_kwargs["sat_backend"] = sat_backend
        self.grace = grace
        # Reduce once in the parent: every member races on the same shrunk
        # model (members are spawned with reduce=False), and the winning
        # witness is lifted back here.
        self._aig, self.property_index, self._reduction = prepare_model(
            aig, property_index, reduce, passes
        )

    # ------------------------------------------------------------------
    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        """Race the members; return the first definite verdict."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self._check_inner(time_limit)
        with tracer.span(
            "portfolio.race", cat="engine", members=list(self.engines)
        ) as span:
            outcome = self._check_inner(time_limit)
            span.add(winner=outcome.winner, result=outcome.result.value)
        return outcome

    def _check_inner(self, time_limit: Optional[float] = None) -> CheckOutcome:
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None
        hard_deadline = (
            deadline + max(self.grace, 0.05) if deadline is not None else None
        )

        ctx = multiprocessing.get_context()
        pending: List[str] = list(self.engines)
        running: Dict[object, Tuple[str, object]] = {}  # conn -> (name, process)
        unknown: List[Tuple[str, CheckOutcome]] = []
        errors: List[Tuple[str, str]] = []

        try:
            while pending or running:
                while pending and len(running) < self.jobs:
                    member = pending.pop(0)
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    remaining = (
                        max(0.0, deadline - time.perf_counter())
                        if deadline is not None
                        else None
                    )
                    kwargs = {"reduce": False}
                    kwargs.update(self._common_kwargs)
                    kwargs.update(self.member_kwargs.get(member, {}))
                    proc = ctx.Process(
                        target=_run_member,
                        args=(
                            child_conn,
                            member,
                            self._aig,
                            self.options,
                            self.property_index,
                            remaining,
                            kwargs,
                        ),
                        daemon=True,
                        name=f"portfolio-{member}",
                    )
                    proc.start()
                    child_conn.close()
                    running[parent_conn] = (member, proc)

                ready = multiprocessing.connection.wait(
                    list(running), timeout=_POLL_INTERVAL
                )
                for conn in ready:
                    member, proc = running.pop(conn)
                    kind, payload = self._receive(conn)
                    proc.join(timeout=1.0)
                    if kind == "ok" and payload.solved:
                        payload = finish_outcome(payload, self._reduction)
                        payload.winner = member
                        payload.engine = self.name
                        payload.runtime = time.perf_counter() - start
                        return payload
                    if kind == "ok":
                        unknown.append((member, payload))
                    else:
                        errors.append((member, payload))

                if hard_deadline is not None and time.perf_counter() > hard_deadline:
                    break
        finally:
            for conn, (member, proc) in running.items():
                _terminate(proc)
                conn.close()

        return self._inconclusive(start, deadline, unknown, errors)

    # ------------------------------------------------------------------
    @staticmethod
    def _receive(conn) -> Tuple[str, object]:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            kind, payload = "error", "member process died without reporting"
        finally:
            conn.close()
        return kind, payload

    def _inconclusive(self, start, deadline, unknown, errors) -> CheckOutcome:
        stats = IC3Stats()
        frames = 0
        for _, outcome in unknown:
            stats = stats.merge(outcome.stats)
            frames = max(frames, outcome.frames)
        if deadline is not None and time.perf_counter() > deadline:
            reason = "time limit reached"
        else:
            parts = [f"{name}: {o.reason or 'unknown'}" for name, o in unknown]
            parts += [f"{name}: {message}" for name, message in errors]
            reason = "no member reached a verdict (" + "; ".join(parts) + ")"
        return CheckOutcome(
            result=CheckResult.UNKNOWN,
            runtime=time.perf_counter() - start,
            frames=frames,
            stats=stats,
            engine=self.name,
            reason=reason,
            reduction=self._reduction.summary() if self._reduction else None,
        )


def _terminate(proc) -> None:
    """Stop a member process, escalating to SIGKILL if needed."""
    if not proc.is_alive():
        proc.join(timeout=0.1)
        return
    proc.terminate()
    proc.join(timeout=1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=1.0)


@register_engine("portfolio")
def _make_portfolio(aig: AIG, **kwargs) -> PortfolioEngine:
    return PortfolioEngine(aig, **kwargs)
