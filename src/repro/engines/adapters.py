"""Adapters that put the core engines behind the uniform Engine protocol.

The concrete algorithms stay in :mod:`repro.core` (and remain importable
from there); each adapter normalizes one of them to the ``(aig, *,
options, property_index, **kwargs)`` construction and ``check(time_limit)``
call shape that the registry, the harness and the portfolio expect.
Engine-specific knobs (BMC's ``max_depth``, k-induction's ``max_k``)
become constructor keywords instead of ``check()`` arguments.

Every adapter also runs the :mod:`repro.reduce` preprocessing pipeline at
construction time (disable with ``reduce=False``, choose passes with
``passes=[...]``): the core engine solves the reduced model, and the
adapter lifts counterexample traces and invariant certificates back to
the original AIG before returning them, so callers — including the
certificate/trace validators — never see the reduced model's variable
numbering.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.aiger.aig import AIG
from repro.core.bmc import BMC
from repro.core.ic3 import IC3
from repro.core.kinduction import KInduction
from repro.core.options import IC3Options
from repro.core.result import CheckOutcome
from repro.engines.registry import register_engine
from repro.obs.metrics import record_engine_outcome
from repro.obs.tracer import get_tracer
from repro.reduce import ReductionResult, reduce_aig


def prepare_model(
    aig: AIG,
    property_index: int = 0,
    reduce: bool = True,
    passes: Optional[Sequence[str]] = None,
):
    """Common preprocessing step of every adapter.

    Returns ``(model, model_property_index, reduction)`` where
    ``reduction`` is None when preprocessing is disabled.
    """
    if not reduce:
        return aig, property_index, None
    reduction = reduce_aig(aig, property_index=property_index, passes=passes)
    return reduction.aig, reduction.property_index, reduction


def finish_outcome(
    outcome: CheckOutcome, reduction: Optional[ReductionResult]
) -> CheckOutcome:
    """Lift witnesses back to the original model and record shrinkage."""
    if reduction is not None:
        outcome = reduction.lift_outcome(outcome)
        outcome.reduction = reduction.summary()
    return outcome


def traced_check(name, run, time_limit):
    """Run an engine's check under an ``engine.<name>`` span.

    Also the single feed point into the metrics registry: every finished
    check folds its verdict, runtime and solver counters into the
    process-default registry exactly once (end-of-run, never hot-path).
    """
    tracer = get_tracer()
    if not tracer.enabled:
        outcome = run(time_limit)
    else:
        with tracer.span("engine." + name, cat="engine") as span:
            outcome = run(time_limit)
            span.add(result=outcome.result.value, frames=outcome.frames)
    record_engine_outcome(outcome)
    return outcome


class IC3Engine:
    """IC3/PDR behind the Engine protocol (optionally with lemma prediction)."""

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        name: Optional[str] = None,
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        frame_backend: Optional[str] = None,
        sat_backend: Optional[str] = None,
        shared_lemmas: Optional[Sequence[Sequence[int]]] = None,
        seed: Optional[int] = None,
        lemma_port=None,
        **_ignored,
    ):
        self.options = options if options is not None else IC3Options()
        if frame_backend is not None:
            self.options = replace(self.options, frame_backend=frame_backend)
        if sat_backend is not None:
            self.options = replace(self.options, sat_backend=sat_backend)
        if seed is not None:
            self.options = replace(self.options, seed=seed)
        self.name = name or ("ic3-pl" if self.options.enable_prediction else "ic3")
        model, model_property, self.reduction = prepare_model(
            aig, property_index, reduce, passes
        )
        # Shared lemmas arrive in the *original* model's latch-index
        # space (see IC3.seed_clauses); when the model was reduced they
        # must follow it through the pass chain.
        seeds = list(shared_lemmas or [])
        if seeds and self.reduction is not None:
            seeds = self.reduction.recon.map_latch_index_clauses(seeds)
        # Live bus lemmas travel in the latch-index space of the model
        # this adapter was handed; when it reduced further, imports follow
        # the pass chain forward and exports lift back through it.
        lemma_maps = None
        if lemma_port is not None and self.reduction is not None:
            recon = self.reduction.recon
            lemma_maps = (
                recon.map_latch_index_clauses,
                recon.lift_latch_index_clauses,
            )
        self._engine = IC3(
            model, self.options, property_index=model_property, seed_clauses=seeds,
            lemma_port=lemma_port, lemma_maps=lemma_maps,
        )

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        outcome = traced_check(
            self.name, lambda limit: self._engine.check(time_limit=limit), time_limit
        )
        outcome = finish_outcome(outcome, self.reduction)
        outcome.engine = self.name
        return outcome


class BMCEngine:
    """Bounded model checking behind the Engine protocol."""

    name = "bmc"

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        max_depth: int = 50,
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        sat_backend: Optional[str] = None,
        seed: Optional[int] = None,
        lemma_port=None,
        **_ignored,
    ):
        self.max_depth = max_depth
        model, model_property, self.reduction = prepare_model(
            aig, property_index, reduce, passes
        )
        base_options = options or IC3Options()
        if sat_backend is None:
            sat_backend = base_options.sat_backend
        if seed is None:
            seed = base_options.seed
        lemma_map = None
        if lemma_port is not None and self.reduction is not None:
            lemma_map = self.reduction.recon.map_latch_index_clauses
        self._engine = BMC(
            model, property_index=model_property, sat_backend=sat_backend,
            seed=seed, lemma_port=lemma_port, lemma_map=lemma_map,
        )

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        outcome = traced_check(
            self.name,
            lambda limit: self._engine.check(max_depth=self.max_depth, time_limit=limit),
            time_limit,
        )
        return finish_outcome(outcome, self.reduction)


class KInductionEngine:
    """k-induction behind the Engine protocol."""

    name = "kind"

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        max_k: int = 20,
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        sat_backend: Optional[str] = None,
        seed: Optional[int] = None,
        lemma_port=None,
        **_ignored,
    ):
        self.max_k = max_k
        model, model_property, self.reduction = prepare_model(
            aig, property_index, reduce, passes
        )
        base_options = options or IC3Options()
        if sat_backend is None:
            sat_backend = base_options.sat_backend
        if seed is None:
            seed = base_options.seed
        lemma_map = None
        if lemma_port is not None and self.reduction is not None:
            lemma_map = self.reduction.recon.map_latch_index_clauses
        self._engine = KInduction(
            model, property_index=model_property, sat_backend=sat_backend,
            seed=seed, lemma_port=lemma_port, lemma_map=lemma_map,
        )

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        outcome = traced_check(
            self.name,
            lambda limit: self._engine.check(max_k=self.max_k, time_limit=limit),
            time_limit,
        )
        return finish_outcome(outcome, self.reduction)


# ----------------------------------------------------------------------
# Default registrations
# ----------------------------------------------------------------------
@register_engine("ic3")
def _make_ic3(aig: AIG, options: Optional[IC3Options] = None, **kwargs) -> IC3Engine:
    return IC3Engine(aig, options=options, name="ic3", **kwargs)


@register_engine("ic3-pl")
def _make_ic3_pl(aig: AIG, options: Optional[IC3Options] = None, **kwargs) -> IC3Engine:
    options = (options if options is not None else IC3Options()).with_prediction()
    return IC3Engine(aig, options=options, name="ic3-pl", **kwargs)


@register_engine("bmc")
def _make_bmc(aig: AIG, **kwargs) -> BMCEngine:
    return BMCEngine(aig, **kwargs)


@register_engine("kind", aliases=("k-induction",))
def _make_kind(aig: AIG, **kwargs) -> KInductionEngine:
    return KInductionEngine(aig, **kwargs)
