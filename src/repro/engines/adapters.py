"""Adapters that put the core engines behind the uniform Engine protocol.

The concrete algorithms stay in :mod:`repro.core` (and remain importable
from there); each adapter normalizes one of them to the ``(aig, *,
options, property_index, **kwargs)`` construction and ``check(time_limit)``
call shape that the registry, the harness and the portfolio expect.
Engine-specific knobs (BMC's ``max_depth``, k-induction's ``max_k``)
become constructor keywords instead of ``check()`` arguments.
"""

from __future__ import annotations

from typing import Optional

from repro.aiger.aig import AIG
from repro.core.bmc import BMC
from repro.core.ic3 import IC3
from repro.core.kinduction import KInduction
from repro.core.options import IC3Options
from repro.core.result import CheckOutcome
from repro.engines.registry import register_engine


class IC3Engine:
    """IC3/PDR behind the Engine protocol (optionally with lemma prediction)."""

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        name: Optional[str] = None,
        **_ignored,
    ):
        self.options = options if options is not None else IC3Options()
        self.name = name or ("ic3-pl" if self.options.enable_prediction else "ic3")
        self._engine = IC3(aig, self.options, property_index=property_index)

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        outcome = self._engine.check(time_limit=time_limit)
        outcome.engine = self.name
        return outcome


class BMCEngine:
    """Bounded model checking behind the Engine protocol."""

    name = "bmc"

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        max_depth: int = 50,
        **_ignored,
    ):
        self.max_depth = max_depth
        self._engine = BMC(aig, property_index=property_index)

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        return self._engine.check(max_depth=self.max_depth, time_limit=time_limit)


class KInductionEngine:
    """k-induction behind the Engine protocol."""

    name = "kind"

    def __init__(
        self,
        aig: AIG,
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        max_k: int = 20,
        **_ignored,
    ):
        self.max_k = max_k
        self._engine = KInduction(aig, property_index=property_index)

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        return self._engine.check(max_k=self.max_k, time_limit=time_limit)


# ----------------------------------------------------------------------
# Default registrations
# ----------------------------------------------------------------------
@register_engine("ic3")
def _make_ic3(aig: AIG, options: Optional[IC3Options] = None, **kwargs) -> IC3Engine:
    return IC3Engine(aig, options=options, name="ic3", **kwargs)


@register_engine("ic3-pl")
def _make_ic3_pl(aig: AIG, options: Optional[IC3Options] = None, **kwargs) -> IC3Engine:
    options = (options if options is not None else IC3Options()).with_prediction()
    return IC3Engine(aig, options=options, name="ic3-pl", **kwargs)


@register_engine("bmc")
def _make_bmc(aig: AIG, **kwargs) -> BMCEngine:
    return BMCEngine(aig, **kwargs)


@register_engine("kind", aliases=("k-induction",))
def _make_kind(aig: AIG, **kwargs) -> KInductionEngine:
    return KInductionEngine(aig, **kwargs)
