"""Counter-style benchmark circuits.

These are the bread-and-butter instances of hardware model checking:
binary counters with resets, saturating counters and counters with
redundant bookkeeping (parity), in safe and deliberately buggy (unsafe)
variants.  Safe variants need IC3 to discover range/parity invariants;
unsafe variants have counterexamples whose depth grows with the width,
which exercises the blocking phase.
"""

from __future__ import annotations

from typing import List

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def _counter_word(aig: AIG, width: int, name: str = "cnt") -> List[int]:
    """Allocate ``width`` latch bits (LSB first), all reset to 0."""
    return [aig.add_latch(init=0, name=f"{name}{i}") for i in range(width)]


def modular_counter(width: int, modulus: int, bad_value: int) -> BenchmarkCase:
    """A counter that counts 0, 1, ..., modulus-1, 0, ... every cycle.

    ``bad_value`` determines the verdict: values below the modulus are
    reached (UNSAFE, shortest counterexample has ``bad_value`` steps),
    values at or above it are unreachable (SAFE).
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    if not 0 < modulus <= (1 << width):
        raise ValueError("modulus must be in 1..2^width")
    if not 0 <= bad_value < (1 << width):
        raise ValueError("bad_value must fit in the counter width")

    aig = AIG(comment=f"modular counter width={width} modulus={modulus} bad={bad_value}")
    bits = _counter_word(aig, width)
    incremented = aig.increment(bits)
    wrap = aig.equal_const(bits, modulus - 1)
    for bit, inc in zip(bits, incremented):
        aig.set_latch_next(bit, aig.mux(wrap, FALSE_LIT, inc))
    aig.add_bad(aig.equal_const(bits, bad_value))

    unsafe = bad_value < modulus
    return BenchmarkCase(
        name=f"modcnt_w{width}_m{modulus}_b{bad_value}",
        aig=aig,
        expected=CheckResult.UNSAFE if unsafe else CheckResult.SAFE,
        family="counter",
        params={"width": width, "modulus": modulus, "bad_value": bad_value},
        expected_depth=bad_value if unsafe else None,
    )


def counter_overflow(width: int, safe: bool = True) -> BenchmarkCase:
    """A free-running counter with an enable input and an overflow flag.

    The counter increments only when ``enable`` is high.  The SAFE variant
    stops at its maximum value (saturates), so the overflow flag can never
    rise; the UNSAFE variant wraps around and raises the flag on the wrap,
    reachable in ``2^width`` enabled steps.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    aig = AIG(comment=f"counter overflow width={width} safe={safe}")
    enable = aig.add_input("enable")
    bits = _counter_word(aig, width)
    overflow = aig.add_latch(init=0, name="overflow")

    at_max = aig.equal_const(bits, (1 << width) - 1)
    incremented = aig.increment(bits)
    for bit, inc in zip(bits, incremented):
        if safe:
            # Saturate: hold the value once every bit is 1.
            hold = aig.mux(at_max, bit, inc)
        else:
            hold = inc
        aig.set_latch_next(bit, aig.mux(enable, hold, bit))
    wrap_event = aig.add_and(enable, at_max)
    aig.set_latch_next(overflow, aig.or_gate(overflow, FALSE_LIT if safe else wrap_event))
    aig.add_bad(overflow)

    return BenchmarkCase(
        name=f"ovf_w{width}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="counter",
        params={"width": width, "safe": safe},
        expected_depth=None if safe else (1 << width),
    )


def parity_counter(width: int, safe: bool = True) -> BenchmarkCase:
    """A counter with a redundant parity latch.

    The parity latch tracks the XOR of the counter bits; the property says
    they never disagree.  The SAFE variant updates the parity correctly
    (the invariant is inductive); the UNSAFE variant omits the update on a
    carry out of the low bit, so the latches drift apart after two steps.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    aig = AIG(comment=f"parity counter width={width} safe={safe}")
    bits = _counter_word(aig, width)
    parity = aig.add_latch(init=0, name="parity")

    incremented = aig.increment(bits)
    for bit, inc in zip(bits, incremented):
        aig.set_latch_next(bit, inc)

    if safe:
        next_parity = FALSE_LIT
        for inc in incremented:
            next_parity = aig.xor_gate(next_parity, inc)
    else:
        # Buggy: assume only the LSB toggles, i.e. parity simply flips.
        next_parity = aig.negate(parity)
    aig.set_latch_next(parity, next_parity)

    actual_parity = FALSE_LIT
    for bit in bits:
        actual_parity = aig.xor_gate(actual_parity, bit)
    aig.add_bad(aig.xor_gate(parity, actual_parity))

    return BenchmarkCase(
        name=f"parity_w{width}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="counter",
        params={"width": width, "safe": safe},
        expected_depth=None if safe else 2,
    )


def saturating_counter(width: int, limit: int, bad_value: int) -> BenchmarkCase:
    """A saturating up/down counter that never exceeds ``limit``.

    ``up``/``down`` inputs move the counter, which saturates at 0 and at
    ``limit`` (< 2^width).  The bad condition checks ``counter == bad_value``:
    values above the limit are unreachable (SAFE, IC3 must discover the
    range invariant); values within 0..limit are reachable (UNSAFE, with a
    shortest counterexample of ``bad_value`` up-steps).
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    cap = (1 << width) - 1
    if not 0 < limit <= cap:
        raise ValueError("limit must be in 1..2^width-1")
    if not 0 <= bad_value <= cap:
        raise ValueError("bad_value must fit in the counter width")
    aig = AIG(comment=f"saturating counter width={width} limit={limit}")
    up = aig.add_input("up")
    down = aig.add_input("down")
    bits = _counter_word(aig, width)

    at_limit = aig.equal_const(bits, limit)
    at_min = aig.equal_const(bits, 0)
    incremented = aig.increment(bits)
    ones = [TRUE_LIT] * width
    decremented = aig.adder(bits, ones)  # adding all-ones is subtracting 1 (mod 2^w)

    do_up = aig.add_and(up, aig.negate(down))
    do_up = aig.add_and(do_up, aig.negate(at_limit))
    do_down = aig.add_and(down, aig.negate(up))
    do_down = aig.add_and(do_down, aig.negate(at_min))

    for bit, inc, dec in zip(bits, incremented, decremented):
        next_bit = aig.mux(do_up, inc, aig.mux(do_down, dec, bit))
        aig.set_latch_next(bit, next_bit)

    aig.add_bad(aig.equal_const(bits, bad_value))

    unsafe = bad_value <= limit
    return BenchmarkCase(
        name=f"satcnt_w{width}_l{limit}_b{bad_value}",
        aig=aig,
        expected=CheckResult.UNSAFE if unsafe else CheckResult.SAFE,
        family="counter",
        params={"width": width, "limit": limit, "bad_value": bad_value},
        expected_depth=bad_value if unsafe else None,
    )
