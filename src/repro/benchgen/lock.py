"""Combination-lock benchmark.

The lock opens only after a specific sequence of input symbols is entered;
any wrong symbol resets the progress counter.  The "unlocked" state is
reachable (UNSAFE) with a shortest counterexample as long as the code,
which makes these instances easy for BMC and progressively harder for
IC3's backward search — a classic evaluation family for bug finding.
"""

from __future__ import annotations

from typing import Sequence

from repro.aiger.aig import AIG, FALSE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def combination_lock(code: Sequence[int], symbol_bits: int = 2, safe: bool = False) -> BenchmarkCase:
    """A lock guarded by the input sequence ``code`` (each symbol < 2^symbol_bits).

    The UNSAFE (default) variant's bad state is "unlocked", reachable in
    ``len(code)`` steps by entering the code.  The SAFE variant additionally
    requires a progress value beyond the last stage, which the reset logic
    makes unreachable.
    """
    if not code:
        raise ValueError("code must not be empty")
    if any(symbol >= (1 << symbol_bits) or symbol < 0 for symbol in code):
        raise ValueError("code symbols must fit in symbol_bits")

    stages = len(code)
    stage_bits = max(1, (stages + 1).bit_length())
    aig = AIG(comment=f"combination lock code={list(code)} safe={safe}")
    symbol_in = [aig.add_input(f"sym{i}") for i in range(symbol_bits)]
    progress = [aig.add_latch(init=0, name=f"prog{i}") for i in range(stage_bits)]

    # progress == s and input == code[s]  -->  progress' = s + 1, else 0.
    advance_any = FALSE_LIT
    next_value_bits = [FALSE_LIT] * stage_bits
    for stage, symbol in enumerate(code):
        at_stage = aig.equal_const(progress, stage)
        symbol_match = aig.equal_const(symbol_in, symbol)
        advance = aig.add_and(at_stage, symbol_match)
        advance_any = aig.or_gate(advance_any, advance)
        target = stage + 1
        for bit_index in range(stage_bits):
            if (target >> bit_index) & 1:
                next_value_bits[bit_index] = aig.or_gate(
                    next_value_bits[bit_index], advance
                )
    # Once fully unlocked, stay unlocked.
    unlocked = aig.equal_const(progress, stages)
    for bit_index in range(stage_bits):
        if (stages >> bit_index) & 1:
            next_value_bits[bit_index] = aig.or_gate(next_value_bits[bit_index], unlocked)

    for latch, value in zip(progress, next_value_bits):
        aig.set_latch_next(latch, value)

    if safe:
        # Progress values beyond `stages` are unreachable by construction.
        bad = FALSE_LIT
        for value in range(stages + 1, 1 << stage_bits):
            bad = aig.or_gate(bad, aig.equal_const(progress, value))
        expected = CheckResult.SAFE
        depth = None
    else:
        bad = unlocked
        expected = CheckResult.UNSAFE
        depth = stages
    aig.add_bad(bad)

    return BenchmarkCase(
        name=f"lock_k{stages}_b{symbol_bits}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=expected,
        family="lock",
        params={"code": list(code), "symbol_bits": symbol_bits, "safe": safe},
        expected_depth=depth,
    )
