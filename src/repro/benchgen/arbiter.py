"""Round-robin arbiter benchmark.

A one-hot priority token rotates among ``size`` clients; a client's grant
is registered when it requests while holding the token.  Mutual exclusion
of grants is the safety property — its proof needs the one-hot invariant
over the token latches, which IC3 learns as a collection of pairwise
lemmas (rich parent-lemma structure across frames).
"""

from __future__ import annotations

from repro.aiger.aig import AIG, FALSE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def round_robin_arbiter(size: int, safe: bool = True) -> BenchmarkCase:
    """Round-robin arbiter with ``size`` request/grant pairs.

    SAFE variant: ``grant[i]`` is registered from ``req[i] & token[i]``, so
    two grants can never coexist.  UNSAFE variant: client 0's grant ignores
    the token (a classic priority bug), so two grants appear whenever client
    0 and the token holder request in the same cycle.
    """
    if size < 2:
        raise ValueError("size must be at least 2")
    aig = AIG(comment=f"round robin arbiter size={size} safe={safe}")
    requests = [aig.add_input(f"req{i}") for i in range(size)]
    token = [
        aig.add_latch(init=1 if i == 0 else 0, name=f"token{i}") for i in range(size)
    ]
    grants = [aig.add_latch(init=0, name=f"grant{i}") for i in range(size)]

    # The token advances every cycle.
    for index, stage in enumerate(token):
        aig.set_latch_next(stage, token[(index - 1) % size])

    for index, grant in enumerate(grants):
        if index == 0 and not safe:
            allowed = requests[index]  # bug: ignores the token
        else:
            allowed = aig.add_and(requests[index], token[index])
        aig.set_latch_next(grant, allowed)

    collision = FALSE_LIT
    for i in range(size):
        for j in range(i + 1, size):
            collision = aig.or_gate(collision, aig.add_and(grants[i], grants[j]))
    aig.add_bad(collision)

    return BenchmarkCase(
        name=f"arb_n{size}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="arbiter",
        params={"size": size, "safe": safe},
        expected_depth=None if safe else 2,
    )
