"""FIFO-controller benchmark.

The occupancy counter of a FIFO with capacity ``2^(width-1)`` is tracked in
``width`` bits.  Push/pop inputs move the counter, guarded by full/empty
flags.  The property is "the FIFO never overflows" — the counter stays at
or below the capacity.  The buggy variant drops the full check on pushes,
so the counter can climb past the capacity in ``capacity + 1`` pushes.
"""

from __future__ import annotations

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def fifo_controller(width: int, safe: bool = True) -> BenchmarkCase:
    """FIFO occupancy controller with ``width``-bit counter (capacity 2^(width-1))."""
    if width < 2:
        raise ValueError("width must be at least 2")
    capacity = 1 << (width - 1)
    aig = AIG(comment=f"fifo controller width={width} capacity={capacity} safe={safe}")
    push = aig.add_input("push")
    pop = aig.add_input("pop")
    count = [aig.add_latch(init=0, name=f"count{i}") for i in range(width)]

    full = aig.equal_const(count, capacity)
    empty = aig.equal_const(count, 0)

    do_push = aig.add_and(push, aig.negate(pop))
    if safe:
        do_push = aig.add_and(do_push, aig.negate(full))
    do_pop = aig.add_and(pop, aig.negate(push))
    do_pop = aig.add_and(do_pop, aig.negate(empty))

    incremented = aig.increment(count)
    ones = [TRUE_LIT] * width
    decremented = aig.adder(count, ones)  # minus one, modulo 2^width

    for bit, inc, dec in zip(count, incremented, decremented):
        aig.set_latch_next(bit, aig.mux(do_push, inc, aig.mux(do_pop, dec, bit)))

    # Overflow: occupancy strictly greater than the capacity.
    overflow = FALSE_LIT
    for value in range(capacity + 1, 1 << width):
        overflow = aig.or_gate(overflow, aig.equal_const(count, value))
    aig.add_bad(overflow)

    return BenchmarkCase(
        name=f"fifo_w{width}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="fifo",
        params={"width": width, "capacity": capacity, "safe": safe},
        expected_depth=None if safe else capacity + 1,
    )
