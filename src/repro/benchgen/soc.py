"""SoC-style benchmark circuits with heavy reducible structure.

Real system-on-chip dumps are the reason preprocessing exists: the
property cone is a small island inside telemetry counters, debug
monitors, duplicated (lockstep) registers and configuration straps.
These generators reproduce that shape deliberately, giving every pass of
the :mod:`repro.reduce` default pipeline something to do:

* a *noise* block (a feedback shift chain fed by its own sensor input)
  is observable but outside the property cone — COI removes it;
* a *mode*/*spin* configuration strap latch is provably stuck at its
  reset value — ternary simulation sweeps it, and the muxes it gated
  fold away on the rebuild;
* a *shadow* copy of the datapath register (lockstep redundancy) is
  sequentially equivalent to the main copy — latch merging collapses it.

The instances are tractable for the pure-Python IC3 once reduced; the
larger sizes of :func:`repro.benchgen.suite.reduction_suite` are *only*
tractable with reduction, which is exactly what they are there to show.
"""

from __future__ import annotations

from repro.aiger.aig import AIG, FALSE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def _attach_noise(aig: AIG, stages: int) -> None:
    """An observable feedback shift chain that cannot affect any bad signal."""
    sensor = aig.add_input("sensor")
    previous = sensor
    for index in range(stages):
        stage = aig.add_latch(init=0, name=f"noise{index}")
        aig.set_latch_next(stage, aig.xor_gate(previous, stage))
        previous = stage
    aig.add_output(previous)  # telemetry: observable, but not the property


def monitored_counter(
    width: int, noise: int = 8, safe: bool = True, copies: int = 2
) -> BenchmarkCase:
    """A saturating counter replicated in lockstep, plus a mode strap.

    The counter increments while ``enable`` is high; the SAFE variant
    saturates at ``2^width - 2`` so the all-ones value is unreachable,
    the UNSAFE variant free-runs and reaches it in ``2^width - 1``
    enabled steps.  ``copies`` lockstep replicas (think N-modular
    redundancy) are kept, and the property also asserts that no replica
    ever disagrees with the first.  A ``mode`` strap latch (stuck at 0)
    gates a polarity inversion that never happens, and ``noise`` dead
    latches ride along.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    if copies < 1:
        raise ValueError("copies must be at least 1")
    limit = (1 << width) - 2
    bad_value = (1 << width) - 1

    aig = AIG(
        comment=f"monitored counter width={width} noise={noise} "
        f"copies={copies} safe={safe}"
    )
    enable = aig.add_input("enable")
    mode = aig.add_latch(init=0, name="mode")
    aig.set_latch_next(mode, aig.add_and(mode, enable))  # provably stuck at 0

    words = []
    for copy in range(copies):
        prefix = "cnt" if copy == 0 else f"shadow{copy}"
        bits = [aig.add_latch(init=0, name=f"{prefix}{i}") for i in range(width)]
        at_limit = aig.equal_const(bits, limit)
        incremented = aig.increment(bits)
        for bit, inc in zip(bits, incremented):
            step = aig.mux(at_limit, bit, inc) if safe else inc
            nxt = aig.mux(enable, step, bit)
            # mode is stuck at 0, so the inversion folds away once swept.
            aig.set_latch_next(bit, aig.mux(mode, aig.negate(nxt), nxt))
        words.append(bits)
    counter = words[0]

    mismatch = aig.or_many(
        [aig.negate(aig.equal_words(counter, replica)) for replica in words[1:]]
    )
    aig.add_bad(aig.or_gate(mismatch, aig.equal_const(counter, bad_value)))
    _attach_noise(aig, noise)

    return BenchmarkCase(
        name=f"moncnt_w{width}_n{noise}_c{copies}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="soc",
        params={"width": width, "noise": noise, "copies": copies, "safe": safe},
        expected_depth=None if safe else bad_value,
    )


def shadowed_ring(size: int, noise: int = 6, safe: bool = True) -> BenchmarkCase:
    """A one-hot token ring duplicated in lockstep, plus a spin strap.

    The property is mutual exclusion on the main ring and agreement
    between the rings.  The UNSAFE variant has a ``dup`` input that
    duplicates the token (in both rings alike), violating mutual
    exclusion after one step.  A ``spin`` strap latch (stuck at 1)
    gates the rotation, and ``noise`` dead latches ride along.
    """
    if size < 2:
        raise ValueError("size must be at least 2")
    if noise < 0:
        raise ValueError("noise must be non-negative")

    aig = AIG(comment=f"shadowed ring size={size} noise={noise} safe={safe}")
    dup = aig.add_input("dup") if not safe else None
    spin = aig.add_latch(init=1, name="spin")
    aig.set_latch_next(spin, spin)  # provably stuck at 1

    rings = []
    for prefix in ("main", "shadow"):
        stages = [
            aig.add_latch(init=1 if i == 0 else 0, name=f"{prefix}{i}")
            for i in range(size)
        ]
        for index, stage in enumerate(stages):
            rotated = stages[(index - 1) % size]
            if not safe:
                rotated = aig.or_gate(rotated, aig.add_and(dup, stage))
            # spin is stuck at 1, so the hold branch folds away once swept.
            aig.set_latch_next(stage, aig.mux(spin, rotated, stage))
        rings.append(stages)
    main, shadow = rings

    collision = FALSE_LIT
    for i in range(size):
        for j in range(i + 1, size):
            collision = aig.or_gate(collision, aig.add_and(main[i], main[j]))
    mismatch = aig.negate(aig.equal_words(main, shadow))
    aig.add_bad(aig.or_gate(collision, mismatch))
    _attach_noise(aig, noise)

    return BenchmarkCase(
        name=f"shring_n{size}_x{noise}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="soc",
        params={"size": size, "noise": noise, "safe": safe},
        expected_depth=None if safe else 1,
    )
