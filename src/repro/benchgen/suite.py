"""Assembly of benchmark suites.

``default_suite()`` plays the role of the HWMCC'15/'17 set in the paper's
evaluation: a fixed, deterministic list of cases spanning all generator
families, several sizes, and a mix of SAFE and UNSAFE verdicts.  The sizes
are calibrated for the pure-Python SAT solver (seconds, not the paper's
1000 s budget); ``quick_suite()`` is a small subset for smoke tests and CI,
and ``build_suite`` lets callers scale the instance sizes up or down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.benchgen.arbiter import round_robin_arbiter
from repro.benchgen.case import BenchmarkCase
from repro.benchgen.counters import (
    counter_overflow,
    modular_counter,
    parity_counter,
    saturating_counter,
)
from repro.benchgen.fifo import fifo_controller
from repro.benchgen.lock import combination_lock
from repro.benchgen.registers import johnson_counter, lfsr, pipeline_tag, token_ring
from repro.benchgen.soc import monitored_counter, shadowed_ring
from repro.benchgen.traffic import traffic_light


@dataclass
class SuiteSpec:
    """Size knobs for :func:`build_suite`."""

    counter_widths: Sequence[int] = (3, 4, 5, 6, 7)
    modular_widths: Sequence[int] = (3, 4, 5, 7)
    ring_sizes: Sequence[int] = (3, 4, 5, 6, 8, 12)
    johnson_widths: Sequence[int] = (3, 4, 5, 6, 12, 16)
    lfsr_widths: Sequence[int] = (3, 4, 5, 6, 8)
    pipeline_stages: Sequence[int] = (3, 4, 6, 8, 10)
    arbiter_sizes: Sequence[int] = (2, 3, 4, 5, 8)
    fifo_widths: Sequence[int] = (2, 3, 4, 6)
    lock_lengths: Sequence[int] = (2, 3, 4)
    soc_counter_widths: Sequence[int] = (3, 4)
    soc_ring_sizes: Sequence[int] = (3, 4)
    include_unsafe: bool = True


def build_suite(spec: Optional[SuiteSpec] = None) -> List[BenchmarkCase]:
    """Build a benchmark suite according to ``spec`` (default sizes otherwise)."""
    spec = spec if spec is not None else SuiteSpec()
    cases: List[BenchmarkCase] = []

    for width in spec.counter_widths:
        cases.append(counter_overflow(width, safe=True))
        cases.append(parity_counter(width, safe=True))
    for width in spec.modular_widths:
        modulus = (1 << width) - 2
        cases.append(modular_counter(width, modulus=modulus, bad_value=(1 << width) - 1))
        cases.append(saturating_counter(width, limit=(1 << width) - 2, bad_value=(1 << width) - 1))
    for size in spec.ring_sizes:
        cases.append(token_ring(size, safe=True))
    for width in spec.johnson_widths:
        cases.append(johnson_counter(width, safe=True))
    for width in spec.lfsr_widths:
        cases.append(lfsr(width, safe=True))
    for stages in spec.pipeline_stages:
        cases.append(pipeline_tag(stages, safe=True))
    for size in spec.arbiter_sizes:
        cases.append(round_robin_arbiter(size, safe=True))
    for width in spec.fifo_widths:
        cases.append(fifo_controller(width, safe=True))
    for width in spec.soc_counter_widths:
        cases.append(monitored_counter(width, noise=2 * width, safe=True))
    for size in spec.soc_ring_sizes:
        cases.append(shadowed_ring(size, noise=size + 2, safe=True))
    cases.append(traffic_light(safe=True))

    if spec.include_unsafe:
        for width in spec.counter_widths[:2]:
            cases.append(counter_overflow(width, safe=False))
            cases.append(parity_counter(width, safe=False))
        for width in spec.modular_widths[:2]:
            cases.append(modular_counter(width, modulus=(1 << width) - 2, bad_value=3))
        for size in spec.ring_sizes[:3]:
            cases.append(token_ring(size, safe=False))
        for width in spec.johnson_widths[:2]:
            cases.append(johnson_counter(width, safe=False))
        for width in spec.lfsr_widths[:2]:
            cases.append(lfsr(width, safe=False, unsafe_depth=4))
        for stages in spec.pipeline_stages[:2]:
            cases.append(pipeline_tag(stages, safe=False))
        for size in spec.arbiter_sizes[:2]:
            cases.append(round_robin_arbiter(size, safe=False))
        for width in spec.fifo_widths[:2]:
            cases.append(fifo_controller(width, safe=False))
        for width in spec.soc_counter_widths[:1]:
            cases.append(monitored_counter(width, noise=2 * width, safe=False))
        for size in spec.soc_ring_sizes[:1]:
            cases.append(shadowed_ring(size, noise=size + 2, safe=False))
        for length in spec.lock_lengths:
            cases.append(combination_lock(code=[1, 2, 3, 2][:length], symbol_bits=2))
        cases.append(traffic_light(safe=False))

    _check_unique_names(cases)
    return cases


def default_suite() -> List[BenchmarkCase]:
    """The suite used by the paper-reproduction harness (Table 1 etc.)."""
    return build_suite(SuiteSpec())


def extended_suite() -> List[BenchmarkCase]:
    """The default suite plus the datapath-consistency families.

    The extended suite is not part of the documented EXPERIMENTS.md run (so
    those numbers stay reproducible), but it exercises longer, multi-latch
    lemmas and is useful for stress-testing the prediction mechanism.
    """
    from repro.benchgen.datapath import gray_counter, lockstep_counters

    cases = default_suite()
    for width in (3, 4, 5, 6):
        cases.append(gray_counter(width, safe=True))
        cases.append(lockstep_counters(width, safe=True))
    for width in (3, 4):
        cases.append(gray_counter(width, safe=False))
        cases.append(lockstep_counters(width, safe=False))
    _check_unique_names(cases)
    return cases


def reduction_suite() -> List[BenchmarkCase]:
    """Large SoC-style cases that are only tractable with reduction.

    Each instance buries a small property cone inside out-of-cone noise,
    constant configuration straps and lockstep register replicas; the
    default :mod:`repro.reduce` pipeline shrinks them by one to two
    orders of magnitude.  Without reduction, the pure-Python IC3 blows
    the harness's usual per-case budget on every one of them — which is
    the point: run ``repro-check evaluate`` with and without
    ``--no-reduce`` to see the difference.
    """
    cases = [
        monitored_counter(8, noise=24, copies=6, safe=True),
        monitored_counter(8, noise=32, copies=8, safe=True),
        monitored_counter(6, noise=48, copies=6, safe=True),
        monitored_counter(4, noise=32, copies=8, safe=False),
        shadowed_ring(16, noise=24, safe=True),
        shadowed_ring(20, noise=32, safe=True),
        shadowed_ring(12, noise=40, safe=False),
    ]
    _check_unique_names(cases)
    return cases


def liveness_suite() -> List[BenchmarkCase]:
    """Justice/fairness obligations for the liveness engines and scheduler.

    Every family comes in a safe and a buggy (livelock-able) variant:
    k-liveness proves the safe ones with a small bound, liveness-to-safety
    refutes the buggy ones with a short lasso, and the ``livemix`` cases
    mix SAFE and UNSAFE bads with a justice property in one model so a
    single scheduler run returns one verdict per property.
    """
    from repro.benchgen.liveness import (
        arbiter_live,
        handshake_live,
        mixed_properties,
        token_ring_live,
    )

    cases = [
        token_ring_live(3, safe=True),
        token_ring_live(3, safe=False),
        token_ring_live(4, safe=True),
        token_ring_live(4, safe=False),
        arbiter_live(2, safe=True),
        arbiter_live(2, safe=False),
        arbiter_live(3, safe=True),
        arbiter_live(3, safe=False),
        handshake_live(safe=True),
        handshake_live(safe=False),
        mixed_properties(3),
        mixed_properties(4),
    ]
    _check_unique_names(cases)
    return cases


def quick_suite() -> List[BenchmarkCase]:
    """A small, fast subset used by smoke tests and examples."""
    spec = SuiteSpec(
        counter_widths=(3,),
        modular_widths=(3,),
        ring_sizes=(3, 4),
        johnson_widths=(3,),
        lfsr_widths=(3,),
        pipeline_stages=(3,),
        arbiter_sizes=(2,),
        fifo_widths=(2,),
        lock_lengths=(2,),
        soc_counter_widths=(),
        soc_ring_sizes=(),
        include_unsafe=True,
    )
    return build_suite(spec)


def bench_suite() -> List[BenchmarkCase]:
    """The canonical fixed suite behind the committed ``BENCH_*.json``.

    Calibrated for the backend benchmarks: it is a strict superset of
    :func:`quick_suite` (so the CI quick gate can replay a committed
    snapshot case-by-case) plus the medium SAFE instances — parity_w5/w6
    and johnson_w12/w16 — whose SAT time is large enough for a kernel
    speedup to be measurable above timer noise.  The composition is part
    of the snapshot contract: changing it orphans every earlier
    ``BENCH_*.json``, so grow it only alongside a fresh snapshot.
    """
    spec = SuiteSpec(
        counter_widths=(3, 5, 6),
        modular_widths=(3,),
        ring_sizes=(3, 4, 8),
        johnson_widths=(3, 12, 16),
        lfsr_widths=(3, 6),
        pipeline_stages=(3, 6),
        arbiter_sizes=(2, 4),
        fifo_widths=(2, 3),
        lock_lengths=(2, 3),
        soc_counter_widths=(),
        soc_ring_sizes=(),
        include_unsafe=True,
    )
    return build_suite(spec)


def _check_unique_names(cases: List[BenchmarkCase]) -> None:
    seen: Dict[str, int] = {}
    for case in cases:
        if case.name in seen:
            raise ValueError(f"duplicate benchmark name: {case.name}")
        seen[case.name] = 1
