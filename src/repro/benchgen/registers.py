"""Shift-register-style benchmark circuits: token rings, Johnson counters,
LFSRs and tagged pipelines.

All of these have compact inductive invariants (one-hotness, valid code
words, non-zero state) that IC3 has to discover clause by clause — a good
source of parent-lemma/CTP interplay for the prediction mechanism.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.aiger.aig import AIG, FALSE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def token_ring(size: int, safe: bool = True) -> BenchmarkCase:
    """A one-hot token circulating through ``size`` stages.

    The property is mutual exclusion: no two stages hold the token at the
    same time.  The SAFE variant simply rotates the token; the UNSAFE
    variant has a ``dup`` input that copies the token into the next stage
    without clearing the current one, so two tokens appear after one step.
    """
    if size < 2:
        raise ValueError("size must be at least 2")
    aig = AIG(comment=f"token ring size={size} safe={safe}")
    dup = aig.add_input("dup") if not safe else None
    stages = [
        aig.add_latch(init=1 if i == 0 else 0, name=f"stage{i}") for i in range(size)
    ]

    for index, stage in enumerate(stages):
        previous = stages[(index - 1) % size]
        next_value = previous
        if not safe:
            # Duplication bug: a stage may also keep its token while passing it on.
            next_value = aig.or_gate(previous, aig.add_and(dup, stage))
        aig.set_latch_next(stage, next_value)

    collision = FALSE_LIT
    for i in range(size):
        for j in range(i + 1, size):
            collision = aig.or_gate(collision, aig.add_and(stages[i], stages[j]))
    aig.add_bad(collision)

    return BenchmarkCase(
        name=f"ring_n{size}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="ring",
        params={"size": size, "safe": safe},
        expected_depth=None if safe else 1,
    )


def johnson_counter(width: int, safe: bool = True) -> BenchmarkCase:
    """A Johnson (twisted-ring) counter.

    Valid Johnson states are runs of ones followed by runs of zeros (and
    their rotations through the inverted feedback), only ``2*width`` of the
    ``2^width`` patterns.  The SAFE variant flags an invalid pattern with an
    isolated one, which is unreachable; the UNSAFE variant flags a valid
    pattern on the counter's orbit.
    """
    if width < 3:
        raise ValueError("width must be at least 3")
    aig = AIG(comment=f"johnson counter width={width} safe={safe}")
    bits = [aig.add_latch(init=0, name=f"j{i}") for i in range(width)]

    # Shift left by one; bit 0 receives the inverted last bit.
    aig.set_latch_next(bits[0], aig.negate(bits[-1]))
    for index in range(1, width):
        aig.set_latch_next(bits[index], bits[index - 1])

    if safe:
        # 0101... alternating pattern is never a Johnson code word for width >= 3.
        pattern = sum(1 << i for i in range(0, width, 2))
        bad_value = pattern
        expected = CheckResult.SAFE
        depth: Optional[int] = None
    else:
        # The all-ones state is reached after exactly `width` steps.
        bad_value = (1 << width) - 1
        expected = CheckResult.UNSAFE
        depth = width
    aig.add_bad(aig.equal_const(bits, bad_value))

    return BenchmarkCase(
        name=f"johnson_w{width}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=expected,
        family="johnson",
        params={"width": width, "safe": safe, "bad_value": bad_value},
        expected_depth=depth,
    )


def _simulate_lfsr(width: int, taps: Sequence[int], steps: int, seed: int = 1) -> int:
    """Pure-Python reference model of the Fibonacci LFSR used below."""
    state = seed
    for _ in range(steps):
        feedback = 0
        for tap in taps:
            feedback ^= (state >> tap) & 1
        state = ((state << 1) | feedback) & ((1 << width) - 1)
    return state


_DEFAULT_TAPS = {
    3: (2, 1),
    4: (3, 2),
    5: (4, 2),
    6: (5, 4),
    7: (6, 5),
    8: (7, 5, 4, 3),
}


def lfsr(width: int, safe: bool = True, unsafe_depth: int = 6) -> BenchmarkCase:
    """A Fibonacci LFSR seeded with 1.

    SAFE variant: the all-zero state is unreachable from a non-zero seed
    (the classic LFSR invariant).  UNSAFE variant: the bad value is the
    state the reference model reaches after ``unsafe_depth`` steps.
    """
    if width not in _DEFAULT_TAPS:
        raise ValueError(f"no tap table for width {width} (have {sorted(_DEFAULT_TAPS)})")
    taps = _DEFAULT_TAPS[width]
    aig = AIG(comment=f"lfsr width={width} taps={taps} safe={safe}")
    bits = [aig.add_latch(init=1 if i == 0 else 0, name=f"x{i}") for i in range(width)]

    feedback = FALSE_LIT
    for tap in taps:
        feedback = aig.xor_gate(feedback, bits[tap])
    aig.set_latch_next(bits[0], feedback)
    for index in range(1, width):
        aig.set_latch_next(bits[index], bits[index - 1])

    if safe:
        bad_value = 0
        expected = CheckResult.SAFE
        depth: Optional[int] = None
    else:
        bad_value = _simulate_lfsr(width, taps, unsafe_depth)
        expected = CheckResult.UNSAFE
        depth = unsafe_depth
    aig.add_bad(aig.equal_const(bits, bad_value))

    return BenchmarkCase(
        name=f"lfsr_w{width}_{'safe' if safe else f'unsafe_d{unsafe_depth}'}",
        aig=aig,
        expected=expected,
        family="lfsr",
        params={"width": width, "taps": taps, "safe": safe, "bad_value": bad_value},
        expected_depth=depth,
    )


def pipeline_tag(stages: int, safe: bool = True) -> BenchmarkCase:
    """A valid/tag pipeline: two parallel shift registers fed the same bit.

    Every stage of the ``valid`` pipeline must equal the corresponding
    stage of the ``tag`` pipeline (they are loaded identically).  The
    UNSAFE variant forgets to load the tag pipeline's first stage from the
    input and wires it to constant 0, so the pipelines diverge as soon as a
    high input drains through.
    """
    if stages < 2:
        raise ValueError("stages must be at least 2")
    aig = AIG(comment=f"pipeline tag stages={stages} safe={safe}")
    data_in = aig.add_input("in_valid")
    valid = [aig.add_latch(init=0, name=f"valid{i}") for i in range(stages)]
    tag = [aig.add_latch(init=0, name=f"tag{i}") for i in range(stages)]

    aig.set_latch_next(valid[0], data_in)
    aig.set_latch_next(tag[0], data_in if safe else FALSE_LIT)
    for index in range(1, stages):
        aig.set_latch_next(valid[index], valid[index - 1])
        aig.set_latch_next(tag[index], tag[index - 1])

    mismatch = FALSE_LIT
    for v, t in zip(valid, tag):
        mismatch = aig.or_gate(mismatch, aig.xor_gate(v, t))
    aig.add_bad(mismatch)

    return BenchmarkCase(
        name=f"pipe_s{stages}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="pipeline",
        params={"stages": stages, "safe": safe},
        expected_depth=None if safe else 1,
    )
