"""Benchmark case description."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aiger.aig import AIG
from repro.core.result import CheckResult


@dataclass
class BenchmarkCase:
    """One verification problem of the synthetic suite."""

    name: str
    aig: AIG
    expected: Optional[CheckResult] = None
    """Ground-truth verdict (None when genuinely unknown)."""

    family: str = ""
    """Generator family (counter, lfsr, arbiter, ...)."""

    params: Dict[str, object] = field(default_factory=dict)
    """Generator parameters, for reporting."""

    expected_depth: Optional[int] = None
    """For UNSAFE cases: length (in transitions) of a shortest counterexample."""

    expected_properties: Optional[List[CheckResult]] = None
    """For multi-property cases: per-obligation ground truth, in the
    canonical obligation order (bads first, then justice properties; see
    :func:`repro.props.obligations.enumerate_obligations`).  ``expected``
    then carries the aggregate verdict.  None for single-property cases."""

    def __post_init__(self) -> None:
        if not self.family:
            self.family = self.name.split("_")[0]

    @property
    def num_latches(self) -> int:
        """Number of latches in the underlying circuit."""
        return self.aig.num_latches

    def describe(self) -> str:
        """One-line description used in reports."""
        expectation = self.expected.value if self.expected else "unknown"
        return (
            f"{self.name}: {self.family} "
            f"(latches={self.aig.num_latches}, ands={self.aig.num_ands}, "
            f"expected={expectation})"
        )
