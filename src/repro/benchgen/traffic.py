"""Traffic-light controller benchmark.

Two lights guard an intersection.  Each light walks through the phases
red → green → yellow → red, driven by a request input, and an interlock
latch gives the intersection to one direction at a time.  The property is
that the two lights are never green together.  The buggy variant lets the
second light start its green phase on a request regardless of the
interlock, so a simultaneous-green state is reachable in a few steps.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.aiger.aig import AIG
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult

# Phase encoding (2 bits per light): 00 = red, 01 = green, 10 = yellow.
_RED = 0
_GREEN = 1
_YELLOW = 2


def _light(aig: AIG, name: str) -> List[int]:
    return [aig.add_latch(init=0, name=f"{name}_phase{i}") for i in range(2)]


def _phase_next(
    aig: AIG, phase: List[int], start_green: int
) -> Tuple[List[int], int, int]:
    """Next-phase logic; returns (next bits, is_green, is_red)."""
    is_red = aig.equal_const(phase, _RED)
    is_green = aig.equal_const(phase, _GREEN)
    is_yellow = aig.equal_const(phase, _YELLOW)

    # red --start_green--> green --always--> yellow --always--> red
    go_green = aig.add_and(is_red, start_green)
    next_bit0 = go_green                      # green has bit0 set
    next_bit1 = is_green                      # yellow has bit1 set
    # When yellow (or red without a start), fall back to red (00): nothing to add.
    next_phase = [next_bit0, next_bit1]
    _ = is_yellow
    return next_phase, is_green, is_red


def traffic_light(safe: bool = True) -> BenchmarkCase:
    """Two-way traffic-light controller (fixed size, 5 latches)."""
    aig = AIG(comment=f"traffic light safe={safe}")
    request_a = aig.add_input("req_a")
    request_b = aig.add_input("req_b")

    phase_a = _light(aig, "a")
    phase_b = _light(aig, "b")
    # The interlock: 0 = direction A owns the intersection, 1 = direction B.
    turn = aig.add_latch(init=0, name="turn")

    a_may_start = aig.add_and(request_a, aig.negate(turn))
    if safe:
        b_may_start = aig.add_and(request_b, turn)
    else:
        b_may_start = request_b  # bug: ignores the interlock

    next_a, a_green, a_red = _phase_next(aig, phase_a, a_may_start)
    next_b, b_green, b_red = _phase_next(aig, phase_b, b_may_start)
    for latch, value in zip(phase_a, next_a):
        aig.set_latch_next(latch, value)
    for latch, value in zip(phase_b, next_b):
        aig.set_latch_next(latch, value)

    # Hand the intersection over only while both directions are red.
    both_red = aig.add_and(a_red, b_red)
    aig.set_latch_next(turn, aig.mux(both_red, aig.negate(turn), turn))

    aig.add_bad(aig.add_and(a_green, b_green))

    return BenchmarkCase(
        name=f"traffic_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="traffic",
        params={"safe": safe},
        expected_depth=None if safe else 1,
    )
