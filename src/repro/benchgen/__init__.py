"""Synthetic hardware benchmark generator.

The paper evaluates on the HWMCC'15/'17 AIGER benchmarks, which are not
redistributable here; this package generates a deterministic suite of
hardware-style verification problems instead — counters, Gray/Johnson
counters, LFSRs, token rings, arbiters, FIFO controllers, traffic-light
controllers, combination locks and pipelines — each as an
:class:`~repro.aiger.AIG` with a known SAFE/UNSAFE verdict.  The instances
are parametric, so the suite scales from trivial to (for a pure-Python
solver) genuinely hard.
"""

from repro.benchgen.case import BenchmarkCase
from repro.benchgen.counters import (
    counter_overflow,
    modular_counter,
    parity_counter,
    saturating_counter,
)
from repro.benchgen.registers import (
    token_ring,
    johnson_counter,
    lfsr,
    pipeline_tag,
)
from repro.benchgen.arbiter import round_robin_arbiter
from repro.benchgen.fifo import fifo_controller
from repro.benchgen.traffic import traffic_light
from repro.benchgen.lock import combination_lock
from repro.benchgen.datapath import gray_counter, lockstep_counters
from repro.benchgen.soc import monitored_counter, shadowed_ring
from repro.benchgen.liveness import (
    arbiter_live,
    handshake_live,
    mixed_properties,
    token_ring_live,
)
from repro.benchgen.suite import (
    bench_suite,
    default_suite,
    extended_suite,
    liveness_suite,
    quick_suite,
    reduction_suite,
    build_suite,
    SuiteSpec,
)

__all__ = [
    "BenchmarkCase",
    "counter_overflow",
    "modular_counter",
    "parity_counter",
    "saturating_counter",
    "token_ring",
    "johnson_counter",
    "lfsr",
    "pipeline_tag",
    "round_robin_arbiter",
    "fifo_controller",
    "traffic_light",
    "combination_lock",
    "gray_counter",
    "lockstep_counters",
    "monitored_counter",
    "shadowed_ring",
    "token_ring_live",
    "arbiter_live",
    "handshake_live",
    "mixed_properties",
    "bench_suite",
    "default_suite",
    "extended_suite",
    "liveness_suite",
    "quick_suite",
    "reduction_suite",
    "build_suite",
    "SuiteSpec",
]
