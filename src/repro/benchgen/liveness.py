"""Liveness benchmark circuits: justice/fairness verification problems.

Each family states a ``G F p`` ("p happens infinitely often") obligation
in the standard AIGER 1.9 encoding of its negation ``F G ¬p``: a free
``jump`` oracle input moves a monitor latch ``in_final`` to its accepting
state, an invariant constraint forbids ``p`` once there, and the justice
property is "``in_final`` infinitely often" — a counterexample is exactly
a run on which ``p`` eventually never happens again.  Fairness
constraints refine the arbiter family (starvation only counts while the
client keeps requesting).

The safe variants are genuinely live (k-liveness proves them with a
small bound); the buggy variants have a reachable livelock that
liveness-to-safety refutes with a short lasso.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.aiger.aig import AIG, FALSE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def _attach_gf_monitor(
    aig: AIG, recur_lit: int, name: str = "gf"
) -> Tuple[int, int]:
    """Encode the justice obligation ``G F recur_lit`` on the circuit.

    Returns ``(justice_index, in_final_lit)``.  The encoding adds the
    Büchi monitor for the negation ``F G ¬recur_lit``: a free ``jump``
    input, an absorbing ``in_final`` latch, the invariant constraint
    ``¬(in_final ∧ recur_lit)`` (harmless for the original behaviour —
    every run can keep ``jump`` low) and the justice set ``{in_final}``.
    """
    jump = aig.add_input(f"{name}_jump")
    in_final = aig.add_latch(init=0, name=f"{name}_in_final")
    aig.set_latch_next(in_final, aig.or_gate(in_final, jump))
    aig.add_constraint(aig.negate(aig.add_and(in_final, recur_lit)))
    return aig.add_justice([in_final]), in_final


def token_ring_live(size: int, safe: bool = True) -> BenchmarkCase:
    """Token-ring starvation: the token must return to stage 0 forever.

    The obligation is ``G F stage0``.  The SAFE variant rotates the token
    unconditionally, so stage 0 sees it every ``size`` steps on every
    run.  The buggy variant adds a ``stall`` input that freezes the whole
    ring — stalling forever after the token leaves stage 0 starves it, a
    one-step-loop lasso.
    """
    if size < 2:
        raise ValueError("size must be at least 2")
    aig = AIG(comment=f"live token ring size={size} safe={safe}")
    stall = aig.add_input("stall") if not safe else None
    stages = [
        aig.add_latch(init=1 if i == 0 else 0, name=f"stage{i}") for i in range(size)
    ]
    for index, stage in enumerate(stages):
        rotated = stages[(index - 1) % size]
        aig.set_latch_next(stage, aig.mux(stall, stage, rotated) if not safe else rotated)
    _attach_gf_monitor(aig, stages[0], name="starve")
    aig.validate()

    return BenchmarkCase(
        name=f"livering_n{size}_{'safe' if safe else 'buggy'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="livering",
        params={"size": size, "safe": safe},
        expected_properties=[CheckResult.SAFE if safe else CheckResult.UNSAFE],
    )


def arbiter_live(clients: int, safe: bool = True) -> BenchmarkCase:
    """Eventual grant: a persistently requesting client 0 is served.

    Requests are latched into ``pending`` flags until granted.  The SAFE
    variant grants with a round-robin token, so a pending request meets
    the token within ``clients`` steps on every run.  The buggy variant
    grants by fixed priority favouring the *highest* client — a
    permanent request from client 1 starves client 0 forever.  The
    fairness constraint restricts counterexamples to runs where client 0
    actually keeps wanting the grant (``pending0`` infinitely often).
    """
    if clients < 2:
        raise ValueError("clients must be at least 2")
    aig = AIG(comment=f"live arbiter clients={clients} safe={safe}")
    requests = [aig.add_input(f"req{i}") for i in range(clients)]
    pending = [aig.add_latch(init=0, name=f"pending{i}") for i in range(clients)]
    token = (
        [aig.add_latch(init=1 if i == 0 else 0, name=f"token{i}") for i in range(clients)]
        if safe
        else []
    )

    wants = [aig.or_gate(p, r) for p, r in zip(pending, requests)]
    grants: List[int] = []
    if safe:
        for index in range(clients):
            aig.set_latch_next(token[index], token[(index - 1) % clients])
            grants.append(aig.add_and(wants[index], token[index]))
    else:
        # Fixed priority, highest client wins: lower clients starve.
        higher = FALSE_LIT
        priority_grants: List[Optional[int]] = [None] * clients
        for index in range(clients - 1, -1, -1):
            priority_grants[index] = aig.add_and(wants[index], aig.negate(higher))
            higher = aig.or_gate(higher, wants[index])
        grants = [g for g in priority_grants]

    for index in range(clients):
        aig.set_latch_next(
            pending[index], aig.add_and(wants[index], aig.negate(grants[index]))
        )

    _attach_gf_monitor(aig, grants[0], name="grant")
    aig.add_fairness(pending[0])
    aig.validate()

    return BenchmarkCase(
        name=f"livearb_c{clients}_{'safe' if safe else 'buggy'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="livearb",
        params={"clients": clients, "safe": safe},
        expected_properties=[CheckResult.SAFE if safe else CheckResult.UNSAFE],
    )


def handshake_live(safe: bool = True) -> BenchmarkCase:
    """A four-phase handshake that must keep completing transactions.

    States IDLE → REQ → ACK → DONE → IDLE; the obligation is
    ``G F done``.  The SAFE variant always advances.  The buggy variant
    adds a ``retry`` input at ACK that bounces the handshake back to REQ
    without completing — retrying forever is a classic livelock, a
    two-step-loop lasso.
    """
    aig = AIG(comment=f"live handshake safe={safe}")
    retry = aig.add_input("retry") if not safe else None
    s0 = aig.add_latch(init=0, name="hs0")  # state bit 0
    s1 = aig.add_latch(init=0, name="hs1")  # state bit 1

    idle = aig.add_and(aig.negate(s1), aig.negate(s0))
    req = aig.add_and(aig.negate(s1), s0)
    ack = aig.add_and(s1, aig.negate(s0))
    done = aig.add_and(s1, s0)

    # IDLE->REQ, REQ->ACK, ACK->(retry ? REQ : DONE), DONE->IDLE.
    to_req = idle
    to_ack = req
    if safe:
        to_done = ack
        bounced = FALSE_LIT
    else:
        bounced = aig.add_and(ack, retry)
        to_done = aig.add_and(ack, aig.negate(retry))
    next_s1 = aig.or_gate(to_ack, to_done)
    next_s0 = aig.or_gate(aig.or_gate(to_req, to_done), bounced)
    aig.set_latch_next(s0, next_s0)
    aig.set_latch_next(s1, next_s1)

    _attach_gf_monitor(aig, done, name="progress")
    aig.validate()

    return BenchmarkCase(
        name=f"livehs_{'safe' if safe else 'buggy'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="livehs",
        params={"safe": safe},
        expected_properties=[CheckResult.SAFE if safe else CheckResult.UNSAFE],
    )


def mixed_properties(size: int = 3) -> BenchmarkCase:
    """A multi-property model with mixed verdicts: the scheduler's bread
    and butter and the acceptance scenario of the subsystem.

    One rotating one-hot ring carries three obligations:

    * ``b0`` — mutual exclusion (never two tokens): SAFE;
    * ``b1`` — the token reaches the last stage: UNSAFE at depth
      ``size - 1``;
    * ``j0`` — the token returns to stage 0 infinitely often: SAFE.
    """
    if size < 2:
        raise ValueError("size must be at least 2")
    aig = AIG(comment=f"mixed-verdict multi-property ring size={size}")
    stages = [
        aig.add_latch(init=1 if i == 0 else 0, name=f"stage{i}") for i in range(size)
    ]
    for index, stage in enumerate(stages):
        aig.set_latch_next(stage, stages[(index - 1) % size])

    collision = FALSE_LIT
    for i in range(size):
        for j in range(i + 1, size):
            collision = aig.or_gate(collision, aig.add_and(stages[i], stages[j]))
    aig.add_bad(collision)
    aig.add_bad(stages[size - 1])
    _attach_gf_monitor(aig, stages[0], name="starve")
    aig.validate()

    return BenchmarkCase(
        name=f"livemix_n{size}",
        aig=aig,
        expected=CheckResult.UNSAFE,  # aggregate: one property fails
        family="livemix",
        params={"size": size},
        expected_depth=size - 1,
        expected_properties=[CheckResult.SAFE, CheckResult.UNSAFE, CheckResult.SAFE],
    )
