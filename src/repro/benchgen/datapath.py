"""Datapath-consistency benchmark circuits.

Two families that mimic classic equivalence/consistency obligations from
RTL verification:

* :func:`gray_counter` — a binary counter and a registered Gray-code copy
  of it; the property is that the Gray register always equals
  ``binary ^ (binary >> 1)``.
* :func:`lockstep_counters` — two independently implemented counters (a
  ripple increment and a wrap-around mux tree) that must stay equal
  forever, i.e. a tiny sequential equivalence-checking problem.

Both have inductive invariants that relate several latches at once, which
produces longer lemmas than the one-hot/range families and therefore a
different prediction profile.
"""

from __future__ import annotations

from typing import List

from repro.aiger.aig import AIG, FALSE_LIT
from repro.benchgen.case import BenchmarkCase
from repro.core.result import CheckResult


def gray_counter(width: int, safe: bool = True) -> BenchmarkCase:
    """Binary counter plus a registered Gray-code shadow.

    The shadow register is loaded every cycle with the Gray encoding of the
    *next* binary value, so "shadow == gray(binary)" is an inductive
    invariant.  The UNSAFE variant omits the XOR with the top bit when
    loading the shadow, so the two registers diverge as soon as the counter
    reaches the value with that bit set (depth ``2^(width-1)``).
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    aig = AIG(comment=f"gray counter width={width} safe={safe}")
    binary = [aig.add_latch(init=0, name=f"bin{i}") for i in range(width)]
    gray = [aig.add_latch(init=0, name=f"gray{i}") for i in range(width)]

    next_binary = aig.increment(binary)
    for latch, value in zip(binary, next_binary):
        aig.set_latch_next(latch, value)

    # gray(next) = next ^ (next >> 1); the MSB of the Gray code is the MSB
    # of the binary value itself.
    for index in range(width):
        if index == width - 1:
            next_gray = next_binary[index]
        else:
            next_gray = aig.xor_gate(next_binary[index], next_binary[index + 1])
            if not safe and index == width - 2:
                # Bug: forget the XOR with the top bit for this position.
                next_gray = next_binary[index]
        aig.set_latch_next(gray[index], next_gray)

    mismatch = FALSE_LIT
    for index in range(width):
        if index == width - 1:
            expected = binary[index]
        else:
            expected = aig.xor_gate(binary[index], binary[index + 1])
        mismatch = aig.or_gate(mismatch, aig.xor_gate(gray[index], expected))
    aig.add_bad(mismatch)

    return BenchmarkCase(
        name=f"gray_w{width}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="gray",
        params={"width": width, "safe": safe},
        expected_depth=None if safe else (1 << (width - 1)),
    )


def lockstep_counters(width: int, safe: bool = True) -> BenchmarkCase:
    """Two differently implemented counters that must stay equal.

    Counter A uses the ripple-carry incrementer; counter B recomputes each
    bit as ``bit XOR carry`` with an explicitly built carry chain.  Both
    wrap at the same modulus, so "A == B" is inductive.  The UNSAFE variant
    makes counter B skip the wrap (it keeps counting past the modulus), so
    the counters disagree one step after the wrap point.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    modulus = (1 << width) - 1  # wrap one step early so the wrap logic matters
    aig = AIG(comment=f"lockstep counters width={width} safe={safe}")
    counter_a = [aig.add_latch(init=0, name=f"a{i}") for i in range(width)]
    counter_b = [aig.add_latch(init=0, name=f"b{i}") for i in range(width)]

    # Counter A: increment, wrap at `modulus - 1`.
    wrap_a = aig.equal_const(counter_a, modulus - 1)
    incremented_a = aig.increment(counter_a)
    for latch, inc in zip(counter_a, incremented_a):
        aig.set_latch_next(latch, aig.mux(wrap_a, FALSE_LIT, inc))

    # Counter B: explicit carry chain, same wrap (unless buggy).
    carry = None
    next_b: List[int] = []
    for index, bit in enumerate(counter_b):
        if carry is None:
            next_b.append(aig.negate(bit))
            carry = bit
        else:
            next_b.append(aig.xor_gate(bit, carry))
            carry = aig.add_and(bit, carry)
    if safe:
        wrap_b = aig.equal_const(counter_b, modulus - 1)
        next_b = [aig.mux(wrap_b, FALSE_LIT, value) for value in next_b]
    for latch, value in zip(counter_b, next_b):
        aig.set_latch_next(latch, value)

    mismatch = FALSE_LIT
    for a_bit, b_bit in zip(counter_a, counter_b):
        mismatch = aig.or_gate(mismatch, aig.xor_gate(a_bit, b_bit))
    aig.add_bad(mismatch)

    return BenchmarkCase(
        name=f"lockstep_w{width}_{'safe' if safe else 'unsafe'}",
        aig=aig,
        expected=CheckResult.SAFE if safe else CheckResult.UNSAFE,
        family="lockstep",
        params={"width": width, "modulus": modulus, "safe": safe},
        expected_depth=None if safe else modulus,
    )
