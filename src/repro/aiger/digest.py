"""Order-independent structural digest of an AIG.

The verification service (:mod:`repro.serve`) must recognise that two
submissions are *the same circuit* even when the files differ textually:
gates listed in a different order, different variable numbering from an
isomorphic rebuild, swapped AND operands, double negations folded one way
or the other, or dead logic left behind by an editor.  All of those
produce the same :func:`structural_digest`, because the digest hashes the
*DAG reachable from the semantic roots* bottom-up instead of the file:

* every node gets a hash built only from the hashes of its operands —
  variable numbers and gate list positions never enter the digest;
* AND operand hashes are combined commutatively (sorted), so ``a & b``
  and ``b & a`` agree, and structurally duplicate gates collapse to one
  hash by construction;
* only gates in the transitive fan-in of a root (latch next-state
  functions, outputs, bads, invariant constraints, justice and fairness
  literals) contribute — dead logic is invisible;
* invariant constraints and the literals inside one justice group are
  conjunctive sets, so their hashes are sorted before combination.

What the digest is *not* invariant under: input/latch/property
reordering.  Input ``i`` hashes as "the i-th input" — permuting the
interface changes the circuit's meaning for witnesses and per-property
verdicts, so it must change the key.  This matches what a
:class:`~repro.reduce.strash.StructuralHashPass` rebuild preserves: the
digest of an AIG and of its strashed rebuild are identical.

The result is a hex SHA-256 string, stable across processes and Python
versions (no ``hash()`` randomisation), usable as a dictionary key for
result caches and harness-level deduplication.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Set

from repro.aiger.aig import AIG, FALSE_LIT

_SEP = b"\x1f"


def _h(*parts: bytes) -> bytes:
    return hashlib.sha256(_SEP.join(parts)).digest()


def _root_literals(aig: AIG) -> List[int]:
    """Every literal the digest must reach (the semantic outputs)."""
    roots = [latch.next for latch in aig.latches]
    roots += list(aig.outputs) + list(aig.bads) + list(aig.constraints)
    roots += [lit for group in aig.justice for lit in group]
    roots += list(aig.fairness)
    return roots


def _cone_gates(aig: AIG, roots: Iterable[int]) -> Set[int]:
    """Positive literals of AND gates in the fan-in cone of the roots."""
    gate_by_lhs = {gate.lhs: gate for gate in aig.ands}
    needed: Set[int] = set()
    pending = [lit & ~1 for lit in roots]
    while pending:
        base = pending.pop()
        if base in needed:
            continue
        gate = gate_by_lhs.get(base)
        if gate is None:
            continue
        needed.add(base)
        pending.append(gate.rhs0 & ~1)
        pending.append(gate.rhs1 & ~1)
    return needed


def structural_digest(aig: AIG) -> str:
    """Hex SHA-256 digest of the circuit's structure (see module docs)."""
    node: Dict[int, bytes] = {FALSE_LIT >> 1: _h(b"const")}
    for index, lit in enumerate(aig.inputs):
        node[lit >> 1] = _h(b"input", str(index).encode())
    for index, latch in enumerate(aig.latches):
        node[latch.lit >> 1] = _h(
            b"latch", str(index).encode(), str(latch.init).encode()
        )

    def lit_hash(lit: int) -> bytes:
        base = node.get(lit >> 1)
        if base is None:
            # A root can only reach an undefined variable in a malformed
            # AIG; hash it distinctly instead of crashing the digest.
            base = _h(b"undef")
        return base + (b"-" if lit & 1 else b"+")

    needed = _cone_gates(aig, _root_literals(aig))
    # ``aig.ands`` is topologically ordered (validate() enforces
    # lhs > rhs), so operand hashes exist by the time a gate is reached
    # regardless of how the gate list is permuted within that order.
    for gate in aig.ands:
        if gate.lhs in needed:
            a, b = sorted((lit_hash(gate.rhs0), lit_hash(gate.rhs1)))
            node[gate.lhs >> 1] = _h(b"and", a, b)

    def combine(tag: bytes, hashes: Sequence[bytes]) -> bytes:
        return _h(tag, *hashes)

    parts = [
        _h(b"shape", str(aig.num_inputs).encode(), str(aig.num_latches).encode()),
        combine(
            b"latches",
            [
                _h(b"latchrec", str(latch.init).encode(), lit_hash(latch.next))
                for latch in aig.latches
            ],
        ),
        combine(b"outputs", [lit_hash(lit) for lit in aig.outputs]),
        combine(b"bads", [lit_hash(lit) for lit in aig.bads]),
        combine(b"constraints", sorted(lit_hash(lit) for lit in aig.constraints)),
        combine(
            b"justice",
            [
                combine(b"group", sorted(lit_hash(lit) for lit in group))
                for group in aig.justice
            ],
        ),
        combine(b"fairness", sorted(lit_hash(lit) for lit in aig.fairness)),
    ]
    return hashlib.sha256(_SEP.join(parts)).hexdigest()
