"""The And-Inverter Graph data structure and construction API.

Literal convention (as in the AIGER format): variable ``v`` has the
positive literal ``2*v`` and the negated literal ``2*v + 1``; literal 0 is
the constant FALSE and literal 1 the constant TRUE.  Variable 0 is the
constant node; inputs, latches and AND gates each own one variable.

The builder performs constant folding and structural hashing so that
generated circuits stay compact, and offers the usual derived gates
(OR, XOR, MUX, equality, adders) needed by the synthetic benchmark
generators in :mod:`repro.benchgen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

FALSE_LIT = 0
TRUE_LIT = 1


class AigerError(Exception):
    """Malformed AIG construction or file content."""


class AigerParseError(AigerError):
    """Malformed AIGER document (bad header, truncated or invalid section)."""


def liveness_hint(aig: "AIG") -> str:
    """Error-message suffix pointing justice-only models at the liveness
    engines; empty when the AIG declares no justice properties.  Shared by
    every layer that rejects a model for lacking safety properties."""
    if not aig.justice:
        return ""
    count = len(aig.justice)
    return (
        f" (the AIG also declares {count} justice "
        f"propert{'y' if count == 1 else 'ies'}; use the l2s/klive liveness "
        f"engines or the property scheduler for those)"
    )


@dataclass
class Latch:
    """A state-holding element: ``lit`` is its output literal."""

    lit: int
    next: int = FALSE_LIT
    init: Optional[int] = 0  # 0, 1 or None (uninitialised)
    name: Optional[str] = None


@dataclass
class AndGate:
    """An AND gate ``lhs = rhs0 & rhs1`` (lhs is always even)."""

    lhs: int
    rhs0: int
    rhs1: int


@dataclass
class Symbol:
    """A named input/latch/output for symbol tables."""

    kind: str
    index: int
    name: str


class AIG:
    """A mutable And-Inverter Graph."""

    def __init__(self, comment: Optional[str] = None):
        self._max_var = 0
        self.inputs: List[int] = []
        self.latches: List[Latch] = []
        self.ands: List[AndGate] = []
        self.outputs: List[int] = []
        self.bads: List[int] = []
        self.constraints: List[int] = []
        self.justice: List[List[int]] = []
        self.fairness: List[int] = []
        self.comment = comment
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._input_names: Dict[int, str] = {}
        self._latch_by_lit: Dict[int, Latch] = {}

    # ------------------------------------------------------------------
    # Basic literal helpers
    # ------------------------------------------------------------------
    @property
    def max_var(self) -> int:
        """Largest variable index in use."""
        return self._max_var

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.inputs)

    @property
    def num_latches(self) -> int:
        """Number of latches."""
        return len(self.latches)

    @property
    def num_ands(self) -> int:
        """Number of AND gates."""
        return len(self.ands)

    @staticmethod
    def lit_var(lit: int) -> int:
        """Variable index of a literal."""
        return lit >> 1

    @staticmethod
    def lit_is_negated(lit: int) -> bool:
        """True if the literal carries an inversion."""
        return bool(lit & 1)

    def _check_lit(self, lit: int) -> None:
        if lit < 0 or (lit >> 1) > self._max_var:
            raise AigerError(f"literal {lit} refers to an unknown variable")

    def negate(self, lit: int) -> int:
        """Return the complementary literal."""
        self._check_lit(lit)
        return lit ^ 1

    def _new_var(self) -> int:
        self._max_var += 1
        return self._max_var

    # ------------------------------------------------------------------
    # Structure construction
    # ------------------------------------------------------------------
    def add_input(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its (positive) literal."""
        lit = 2 * self._new_var()
        self.inputs.append(lit)
        if name is not None:
            self._input_names[lit] = name
        return lit

    def add_latch(self, init: Optional[int] = 0, name: Optional[str] = None) -> int:
        """Create a latch with reset value ``init``; returns its literal.

        The next-state function must be assigned later with
        :meth:`set_latch_next` (circuits usually need the latch literal to
        define its own next-state logic).
        """
        if init not in (0, 1, None):
            raise AigerError(f"latch init must be 0, 1 or None, got {init!r}")
        lit = 2 * self._new_var()
        latch = Latch(lit=lit, next=FALSE_LIT, init=init, name=name)
        self.latches.append(latch)
        self._latch_by_lit[lit] = latch
        return lit

    def set_latch_next(self, latch_lit: int, next_lit: int) -> None:
        """Assign the next-state function of a latch."""
        self._check_lit(next_lit)
        latch = self._latch_by_lit.get(latch_lit)
        if latch is None:
            raise AigerError(f"literal {latch_lit} is not a latch output")
        latch.next = next_lit

    def add_and(self, a: int, b: int) -> int:
        """Return a literal for ``a & b`` (folded / structurally hashed)."""
        self._check_lit(a)
        self._check_lit(b)
        # Constant folding.
        if a == FALSE_LIT or b == FALSE_LIT or a == (b ^ 1):
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT:
            return a
        if a == b:
            return a
        key = (a, b) if a <= b else (b, a)
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        lhs = 2 * self._new_var()
        self.ands.append(AndGate(lhs=lhs, rhs0=key[1], rhs1=key[0]))
        self._and_cache[key] = lhs
        return lhs

    # Derived gates -----------------------------------------------------
    def and_many(self, lits: Sequence[int]) -> int:
        """Conjunction of arbitrarily many literals (TRUE for empty input)."""
        result = TRUE_LIT
        for lit in lits:
            result = self.add_and(result, lit)
        return result

    def or_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a | b``."""
        return self.negate(self.add_and(self.negate(a), self.negate(b)))

    def or_many(self, lits: Sequence[int]) -> int:
        """Disjunction of arbitrarily many literals (FALSE for empty input)."""
        result = FALSE_LIT
        for lit in lits:
            result = self.or_gate(result, lit)
        return result

    def xor_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a ^ b``."""
        return self.or_gate(
            self.add_and(a, self.negate(b)), self.add_and(self.negate(a), b)
        )

    def xnor_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a == b``."""
        return self.negate(self.xor_gate(a, b))

    def mux(self, sel: int, if_true: int, if_false: int) -> int:
        """Return ``if_true`` when ``sel`` else ``if_false``."""
        return self.or_gate(
            self.add_and(sel, if_true), self.add_and(self.negate(sel), if_false)
        )

    def implies_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a -> b``."""
        return self.or_gate(self.negate(a), b)

    def equal_const(self, lits: Sequence[int], value: int) -> int:
        """Return a literal that is true iff the word ``lits`` equals ``value``.

        ``lits[0]`` is the least significant bit.
        """
        terms = []
        for position, lit in enumerate(lits):
            bit = (value >> position) & 1
            terms.append(lit if bit else self.negate(lit))
        return self.and_many(terms)

    def equal_words(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Return a literal that is true iff the two words are equal."""
        if len(a) != len(b):
            raise AigerError("word width mismatch in equality")
        return self.and_many([self.xnor_gate(x, y) for x, y in zip(a, b)])

    def adder(self, a: Sequence[int], b: Sequence[int], carry_in: int = FALSE_LIT) -> List[int]:
        """Ripple-carry adder; returns the sum word (same width as inputs)."""
        if len(a) != len(b):
            raise AigerError("word width mismatch in adder")
        carry = carry_in
        total: List[int] = []
        for x, y in zip(a, b):
            partial = self.xor_gate(x, y)
            total.append(self.xor_gate(partial, carry))
            carry = self.or_gate(self.add_and(x, y), self.add_and(partial, carry))
        return total

    def increment(self, word: Sequence[int]) -> List[int]:
        """Return ``word + 1`` (wrapping)."""
        zeros = [FALSE_LIT] * len(word)
        return self.adder(word, zeros, carry_in=TRUE_LIT)

    # Properties ---------------------------------------------------------
    def add_output(self, lit: int) -> None:
        """Declare a primary output."""
        self._check_lit(lit)
        self.outputs.append(lit)

    def add_bad(self, lit: int) -> None:
        """Declare a bad-state property (the safety property is ``G !bad``)."""
        self._check_lit(lit)
        self.bads.append(lit)

    def add_constraint(self, lit: int) -> None:
        """Declare an invariant constraint (assumed to hold on every step)."""
        self._check_lit(lit)
        self.constraints.append(lit)

    def add_justice(self, lits: Sequence[int]) -> int:
        """Declare a justice property; returns its index.

        A justice property is *violated* by an infinite run in which every
        one of its literals holds infinitely often (while every fairness
        constraint also holds infinitely often and every invariant
        constraint holds on each step).  Verification succeeds when no
        such run exists.
        """
        literals = list(lits)
        if not literals:
            raise AigerError("a justice property needs at least one literal")
        for lit in literals:
            self._check_lit(lit)
        self.justice.append(literals)
        return len(self.justice) - 1

    def add_fairness(self, lit: int) -> None:
        """Declare a fairness constraint (must recur in any justice violation)."""
        self._check_lit(lit)
        self.fairness.append(lit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_input(self, lit: int) -> bool:
        """True if the (positive form of the) literal is a primary input."""
        return (lit & ~1) in set(self.inputs)

    def is_latch(self, lit: int) -> bool:
        """True if the (positive form of the) literal is a latch output."""
        return (lit & ~1) in self._latch_by_lit

    def latch_of(self, lit: int) -> Latch:
        """Return the :class:`Latch` whose output literal matches ``lit``."""
        latch = self._latch_by_lit.get(lit & ~1)
        if latch is None:
            raise AigerError(f"literal {lit} is not a latch output")
        return latch

    def input_name(self, lit: int) -> Optional[str]:
        """Name of an input literal, if one was given."""
        return self._input_names.get(lit & ~1)

    def structural_digest(self) -> str:
        """Stable, order-independent hash of the circuit's structure.

        Invariant under gate reordering, AND-operand order, structural
        duplicates, dead logic and isomorphic rebuilds (renumbered
        variables); sensitive to input/latch/property order and to any
        semantic change.  See :mod:`repro.aiger.digest`.
        """
        from repro.aiger.digest import structural_digest

        return structural_digest(self)

    def validate(self) -> None:
        """Check structural well-formedness; raises :class:`AigerError`."""
        seen_vars = {0}
        for lit in self.inputs:
            if lit & 1:
                raise AigerError(f"input literal {lit} must be positive")
            seen_vars.add(lit >> 1)
        for latch in self.latches:
            if latch.lit & 1:
                raise AigerError(f"latch literal {latch.lit} must be positive")
            seen_vars.add(latch.lit >> 1)
        for gate in self.ands:
            if gate.lhs & 1:
                raise AigerError(f"AND literal {gate.lhs} must be positive")
            if gate.lhs <= gate.rhs0 or gate.lhs <= gate.rhs1:
                raise AigerError(
                    f"AND gate {gate.lhs} is not in topological order"
                )
            seen_vars.add(gate.lhs >> 1)
        justice_lits = [lit for group in self.justice for lit in group]
        for lit in self.outputs + self.bads + self.constraints + justice_lits + self.fairness + [
            latch.next for latch in self.latches
        ]:
            if (lit >> 1) not in seen_vars:
                raise AigerError(f"literal {lit} refers to an undefined variable")
        for group in self.justice:
            if not group:
                raise AigerError("a justice property needs at least one literal")

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        input_sequence: Sequence[Dict[int, bool]],
        initial_latches: Optional[Dict[int, bool]] = None,
    ) -> List[Dict[str, object]]:
        """Cycle-accurate simulation.

        ``input_sequence`` is a list of per-step mappings from input literal
        to Boolean value (missing inputs default to False).
        ``initial_latches`` overrides reset values (needed for latches with
        undefined reset).  Returns one record per step with the latch
        values, the evaluated outputs/bad/constraint literals and the input
        values used.
        """
        latch_values: Dict[int, bool] = {}
        for latch in self.latches:
            if initial_latches and latch.lit in initial_latches:
                latch_values[latch.lit] = bool(initial_latches[latch.lit])
            else:
                latch_values[latch.lit] = bool(latch.init) if latch.init else False

        trace: List[Dict[str, object]] = []
        for step_inputs in input_sequence:
            values = self._evaluate_combinational(step_inputs, latch_values)
            record = {
                "latches": {l.lit: latch_values[l.lit] for l in self.latches},
                "inputs": {i: bool(step_inputs.get(i, False)) for i in self.inputs},
                "outputs": [values[lit] for lit in self.outputs],
                "bads": [values[lit] for lit in self.bads],
                "constraints": [values[lit] for lit in self.constraints],
                "justice": [
                    [values[lit] for lit in group] for group in self.justice
                ],
                "fairness": [values[lit] for lit in self.fairness],
            }
            trace.append(record)
            latch_values = {
                latch.lit: values[latch.next] for latch in self.latches
            }
        return trace

    def _evaluate_combinational(
        self, step_inputs: Dict[int, bool], latch_values: Dict[int, bool]
    ) -> Dict[int, bool]:
        """Evaluate every literal for one step (inputs + current latches)."""
        values: Dict[int, bool] = {FALSE_LIT: False, TRUE_LIT: True}

        def set_both(lit: int, value: bool) -> None:
            values[lit] = value
            values[lit ^ 1] = not value

        for lit in self.inputs:
            set_both(lit, bool(step_inputs.get(lit, False)))
        for latch in self.latches:
            set_both(latch.lit, latch_values[latch.lit])
        for gate in self.ands:
            set_both(gate.lhs, values[gate.rhs0] and values[gate.rhs1])
        return values

    def __repr__(self) -> str:
        liveness = ""
        if self.justice or self.fairness:
            liveness = f", justice={len(self.justice)}, fairness={len(self.fairness)}"
        return (
            f"AIG(inputs={self.num_inputs}, latches={self.num_latches}, "
            f"ands={self.num_ands}, outputs={len(self.outputs)}, bads={len(self.bads)}"
            f"{liveness})"
        )
