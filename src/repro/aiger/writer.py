"""AIGER writers for the ASCII (``.aag``) and binary (``.aig``) formats.

Binary writing requires every AND gate to satisfy ``lhs > rhs0 >= rhs1``
and inputs/latches/ANDs to occupy consecutive variable ranges; AIGs built
with :class:`~repro.aiger.aig.AIG` satisfy the ordering but not necessarily
the variable-range layout, so the binary writer first re-encodes the graph
(the ASCII writer emits literals verbatim).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.aiger.aig import AIG, AigerError, FALSE_LIT


def _extension_counts(aig: AIG) -> List[int]:
    """The ``B C J F`` header fields, trimmed after the last non-zero one."""
    counts = [len(aig.bads), len(aig.constraints), len(aig.justice), len(aig.fairness)]
    while counts and counts[-1] == 0:
        counts.pop()
    return counts


def to_aag_string(aig: AIG) -> str:
    """Render an AIG in the ASCII AIGER format."""
    header_counts = [
        aig.max_var,
        aig.num_inputs,
        aig.num_latches,
        len(aig.outputs),
        aig.num_ands,
    ] + _extension_counts(aig)
    lines = ["aag " + " ".join(str(n) for n in header_counts)]
    for lit in aig.inputs:
        lines.append(str(lit))
    for latch in aig.latches:
        if latch.init is None:
            lines.append(f"{latch.lit} {latch.next} {latch.lit}")
        elif latch.init == 1:
            lines.append(f"{latch.lit} {latch.next} 1")
        else:
            lines.append(f"{latch.lit} {latch.next}")
    for lit in aig.outputs:
        lines.append(str(lit))
    for lit in aig.bads:
        lines.append(str(lit))
    for lit in aig.constraints:
        lines.append(str(lit))
    for group in aig.justice:
        lines.append(str(len(group)))
    for group in aig.justice:
        for lit in group:
            lines.append(str(lit))
    for lit in aig.fairness:
        lines.append(str(lit))
    for gate in aig.ands:
        lines.append(f"{gate.lhs} {gate.rhs0} {gate.rhs1}")
    for index, lit in enumerate(aig.inputs):
        name = aig.input_name(lit)
        if name:
            lines.append(f"i{index} {name}")
    for index, latch in enumerate(aig.latches):
        if latch.name:
            lines.append(f"l{index} {latch.name}")
    if aig.comment:
        lines.append("c")
        lines.append(aig.comment)
    return "\n".join(lines) + "\n"


def write_aag(aig: AIG, path: Union[str, Path]) -> None:
    """Write an AIG to an ASCII ``.aag`` file."""
    Path(path).write_text(to_aag_string(aig))


def write_aig(aig: AIG, path: Union[str, Path]) -> None:
    """Write an AIG to a binary ``.aig`` file."""
    Path(path).write_bytes(to_aig_bytes(aig))


def to_aig_bytes(aig: AIG) -> bytes:
    """Render an AIG in the binary AIGER format."""
    remap = _build_remap(aig)

    def map_lit(lit: int) -> int:
        return remap[lit & ~1] | (lit & 1)

    num_inputs = aig.num_inputs
    num_latches = aig.num_latches
    num_ands = aig.num_ands
    max_var = num_inputs + num_latches + num_ands

    header = [
        max_var,
        num_inputs,
        num_latches,
        len(aig.outputs),
        num_ands,
    ] + _extension_counts(aig)
    parts: List[bytes] = ["aig {}\n".format(" ".join(str(n) for n in header)).encode()]

    for latch in aig.latches:
        line = str(map_lit(latch.next))
        if latch.init is None:
            line += f" {map_lit(latch.lit)}"
        elif latch.init == 1:
            line += " 1"
        parts.append((line + "\n").encode())
    for lit in aig.outputs:
        parts.append(f"{map_lit(lit)}\n".encode())
    for lit in aig.bads:
        parts.append(f"{map_lit(lit)}\n".encode())
    for lit in aig.constraints:
        parts.append(f"{map_lit(lit)}\n".encode())
    for group in aig.justice:
        parts.append(f"{len(group)}\n".encode())
    for group in aig.justice:
        for lit in group:
            parts.append(f"{map_lit(lit)}\n".encode())
    for lit in aig.fairness:
        parts.append(f"{map_lit(lit)}\n".encode())

    for gate in aig.ands:
        lhs = map_lit(gate.lhs)
        rhs0 = map_lit(gate.rhs0)
        rhs1 = map_lit(gate.rhs1)
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        if not lhs > rhs0 >= rhs1:
            raise AigerError(
                f"AND gate ({lhs}, {rhs0}, {rhs1}) violates binary AIGER ordering"
            )
        parts.append(_encode_number(lhs - rhs0))
        parts.append(_encode_number(rhs0 - rhs1))

    if aig.comment:
        parts.append(b"c\n")
        parts.append(aig.comment.encode() + b"\n")
    return b"".join(parts)


def _build_remap(aig: AIG) -> Dict[int, int]:
    """Map original positive literals to the dense binary-format layout."""
    remap: Dict[int, int] = {FALSE_LIT: FALSE_LIT}
    next_var = 1
    for lit in aig.inputs:
        remap[lit] = 2 * next_var
        next_var += 1
    for latch in aig.latches:
        remap[latch.lit] = 2 * next_var
        next_var += 1
    for gate in aig.ands:
        remap[gate.lhs] = 2 * next_var
        next_var += 1
    return remap


def _encode_number(value: int) -> bytes:
    """Encode a non-negative integer in the AIGER LEB128 variant."""
    if value < 0:
        raise AigerError(f"cannot encode negative delta {value}")
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)
