"""AIGER readers for the ASCII (``.aag``) and binary (``.aig``) formats.

The parser follows the AIGER 1.9 specification closely enough to read
HWMCC-style files: the MILOA header with optional B/C extensions, latch
reset values, the delta-encoded binary AND section, symbol tables and
comments.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.aiger.aig import AIG, AigerError, Latch, AndGate


def read_aiger(path: Union[str, Path]) -> AIG:
    """Read an AIGER file; the format is chosen by the header magic."""
    data = Path(path).read_bytes()
    return parse_aiger(data)


def parse_aiger(data: Union[str, bytes]) -> AIG:
    """Parse AIGER content given as text or bytes."""
    if isinstance(data, str):
        data = data.encode("ascii")
    if data.startswith(b"aag"):
        return _parse_ascii(data.decode("ascii"))
    if data.startswith(b"aig"):
        return _parse_binary(data)
    raise AigerError("not an AIGER document (missing 'aag'/'aig' magic)")


# ----------------------------------------------------------------------
# ASCII format
# ----------------------------------------------------------------------
def _parse_header(line: str) -> Tuple[str, List[int]]:
    parts = line.split()
    if not parts or parts[0] not in ("aag", "aig"):
        raise AigerError(f"malformed AIGER header: {line!r}")
    if len(parts) < 6:
        raise AigerError(f"AIGER header needs at least M I L O A: {line!r}")
    try:
        numbers = [int(p) for p in parts[1:]]
    except ValueError as exc:
        raise AigerError(f"non-numeric AIGER header field in {line!r}") from exc
    if any(n < 0 for n in numbers):
        raise AigerError(f"negative AIGER header field in {line!r}")
    return parts[0], numbers


def _parse_ascii(text: str) -> AIG:
    lines = text.splitlines()
    if not lines:
        raise AigerError("empty AIGER document")
    magic, header = _parse_header(lines[0])
    if magic != "aag":
        raise AigerError("ASCII parser invoked on binary content")
    max_var, num_inputs, num_latches, num_outputs, num_ands = header[:5]
    num_bads = header[5] if len(header) > 5 else 0
    num_constraints = header[6] if len(header) > 6 else 0

    aig = AIG()
    aig._max_var = max_var  # variables are allocated by the file itself

    cursor = 1

    def next_line() -> str:
        nonlocal cursor
        if cursor >= len(lines):
            raise AigerError("unexpected end of AIGER document")
        line = lines[cursor]
        cursor += 1
        return line

    for _ in range(num_inputs):
        lit = int(next_line().split()[0])
        if lit & 1 or lit == 0:
            raise AigerError(f"invalid input literal {lit}")
        aig.inputs.append(lit)

    for _ in range(num_latches):
        fields = next_line().split()
        if len(fields) < 2:
            raise AigerError(f"malformed latch line: {fields!r}")
        lit = int(fields[0])
        nxt = int(fields[1])
        init: Optional[int] = 0
        if len(fields) >= 3:
            raw = int(fields[2])
            if raw == lit:
                init = None
            elif raw in (0, 1):
                init = raw
            else:
                raise AigerError(f"invalid latch reset value {raw}")
        latch = Latch(lit=lit, next=nxt, init=init)
        aig.latches.append(latch)
        aig._latch_by_lit[lit] = latch

    for _ in range(num_outputs):
        aig.outputs.append(int(next_line().split()[0]))
    for _ in range(num_bads):
        aig.bads.append(int(next_line().split()[0]))
    for _ in range(num_constraints):
        aig.constraints.append(int(next_line().split()[0]))

    for _ in range(num_ands):
        fields = next_line().split()
        if len(fields) < 3:
            raise AigerError(f"malformed AND line: {fields!r}")
        lhs, rhs0, rhs1 = int(fields[0]), int(fields[1]), int(fields[2])
        aig.ands.append(AndGate(lhs=lhs, rhs0=rhs0, rhs1=rhs1))

    _parse_symbols_and_comment(aig, lines[cursor:])
    return aig


def _parse_symbols_and_comment(aig: AIG, lines: List[str]) -> None:
    comment_lines: List[str] = []
    in_comment = False
    for line in lines:
        if in_comment:
            comment_lines.append(line)
            continue
        if line.startswith("c"):
            in_comment = True
            continue
        if not line.strip():
            continue
        kind = line[0]
        if kind not in "ilob":
            continue
        try:
            index_str, name = line[1:].split(" ", 1)
            index = int(index_str)
        except ValueError:
            continue
        if kind == "i" and index < len(aig.inputs):
            aig._input_names[aig.inputs[index]] = name
        elif kind == "l" and index < len(aig.latches):
            aig.latches[index].name = name
    if comment_lines:
        aig.comment = "\n".join(comment_lines)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def _parse_binary(data: bytes) -> AIG:
    newline = data.index(b"\n")
    magic, header = _parse_header(data[:newline].decode("ascii"))
    if magic != "aig":
        raise AigerError("binary parser invoked on ASCII content")
    max_var, num_inputs, num_latches, num_outputs, num_ands = header[:5]
    num_bads = header[5] if len(header) > 5 else 0
    num_constraints = header[6] if len(header) > 6 else 0

    aig = AIG()
    aig._max_var = max_var
    # In the binary format literals are implicit: inputs are 2..2I,
    # latches are 2(I+1)..2(I+L).
    aig.inputs = [2 * (i + 1) for i in range(num_inputs)]

    cursor = newline + 1
    text_until_ands, cursor = _read_text_section(
        data, cursor, num_latches + num_outputs + num_bads + num_constraints
    )
    line_iter = iter(text_until_ands)

    for index in range(num_latches):
        fields = next(line_iter).split()
        lit = 2 * (num_inputs + index + 1)
        nxt = int(fields[0])
        init: Optional[int] = 0
        if len(fields) >= 2:
            raw = int(fields[1])
            init = None if raw == lit else raw
        latch = Latch(lit=lit, next=nxt, init=init)
        aig.latches.append(latch)
        aig._latch_by_lit[lit] = latch
    for _ in range(num_outputs):
        aig.outputs.append(int(next(line_iter).split()[0]))
    for _ in range(num_bads):
        aig.bads.append(int(next(line_iter).split()[0]))
    for _ in range(num_constraints):
        aig.constraints.append(int(next(line_iter).split()[0]))

    # Delta-encoded AND gates.
    for index in range(num_ands):
        lhs = 2 * (num_inputs + num_latches + index + 1)
        delta0, cursor = _decode_number(data, cursor)
        delta1, cursor = _decode_number(data, cursor)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise AigerError(f"binary AND gate {lhs} decodes to negative literal")
        aig.ands.append(AndGate(lhs=lhs, rhs0=rhs0, rhs1=rhs1))

    remainder = data[cursor:].decode("ascii", errors="replace").splitlines()
    _parse_symbols_and_comment(aig, remainder)
    return aig


def _read_text_section(data: bytes, cursor: int, num_lines: int) -> Tuple[List[str], int]:
    lines: List[str] = []
    for _ in range(num_lines):
        end = data.index(b"\n", cursor)
        lines.append(data[cursor:end].decode("ascii"))
        cursor = end + 1
    return lines, cursor


def _decode_number(data: bytes, cursor: int) -> Tuple[int, int]:
    """Decode one LEB128-style number of the binary AND section."""
    value = 0
    shift = 0
    while True:
        if cursor >= len(data):
            raise AigerError("truncated binary AND section")
        byte = data[cursor]
        cursor += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, cursor
        shift += 7
