"""AIGER readers for the ASCII (``.aag``) and binary (``.aig``) formats.

The parser implements the full AIGER 1.9 specification as used by
HWMCC-style files: the ``M I L O A B C J F`` header, latch reset values,
invariant constraints, justice properties (a list of sizes followed by the
concatenated literal lists), fairness constraints, the delta-encoded
binary AND section, symbol tables and comments.

Malformed documents raise :class:`~repro.aiger.aig.AigerParseError` (a
subclass of :class:`~repro.aiger.aig.AigerError`) with a description of
the offending section — a truncated or corrupted 1.9 extension section is
always rejected, never silently dropped.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.aiger.aig import AIG, AigerError, AigerParseError, Latch, AndGate

_HEADER_FIELDS = ("M", "I", "L", "O", "A", "B", "C", "J", "F")


def read_aiger(path: Union[str, Path]) -> AIG:
    """Read an AIGER file; the format is chosen by the header magic."""
    data = Path(path).read_bytes()
    return parse_aiger(data)


def parse_aiger(data: Union[str, bytes]) -> AIG:
    """Parse AIGER content given as text or bytes."""
    if isinstance(data, str):
        data = data.encode("ascii")
    if data.startswith(b"aag"):
        return _parse_ascii(data.decode("ascii"))
    if data.startswith(b"aig"):
        return _parse_binary(data)
    raise AigerParseError("not an AIGER document (missing 'aag'/'aig' magic)")


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _parse_header(line: str) -> Tuple[str, List[int]]:
    parts = line.split()
    if not parts or parts[0] not in ("aag", "aig"):
        raise AigerParseError(f"malformed AIGER header: {line!r}")
    if len(parts) < 6:
        raise AigerParseError(f"AIGER header needs at least M I L O A: {line!r}")
    if len(parts) > 1 + len(_HEADER_FIELDS):
        raise AigerParseError(
            f"AIGER header has more than the {len(_HEADER_FIELDS)} fields "
            f"{' '.join(_HEADER_FIELDS)}: {line!r}"
        )
    try:
        numbers = [int(p) for p in parts[1:]]
    except ValueError as exc:
        raise AigerParseError(f"non-numeric AIGER header field in {line!r}") from exc
    if any(n < 0 for n in numbers):
        raise AigerParseError(f"negative AIGER header field in {line!r}")
    numbers += [0] * (len(_HEADER_FIELDS) - len(numbers))
    return parts[0], numbers


def _parse_int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise AigerParseError(f"non-numeric {what}: {text!r}") from exc


def _first_field(line: str, what: str) -> str:
    fields = line.split()
    if not fields:
        raise AigerParseError(f"blank line where {what} was expected")
    return fields[0]


def _parse_lit(text: str, max_var: int, what: str) -> int:
    lit = _parse_int(text, what)
    if lit < 0 or (lit >> 1) > max_var:
        raise AigerParseError(
            f"{what} {lit} is out of range for maximum variable index {max_var}"
        )
    return lit


def _read_justice_and_fairness(
    aig: AIG, next_line, num_justice: int, num_fairness: int
) -> None:
    """Read the J and F sections (identical text layout in both formats).

    The justice section lists the size of each justice property first,
    then the concatenated literal lists, one literal per line.
    """
    sizes: List[int] = []
    for index in range(num_justice):
        size = _parse_int(
            _first_field(next_line(f"size of justice property {index}"), f"size of justice property {index}"),
            f"size of justice property {index}",
        )
        if size <= 0:
            raise AigerParseError(
                f"justice property {index} declares invalid size {size}"
            )
        sizes.append(size)
    for index, size in enumerate(sizes):
        group = [
            _parse_lit(
                _first_field(next_line(f"literal of justice property {index}"), f"literal of justice property {index}"),
                aig.max_var,
                f"justice literal (property {index})",
            )
            for _ in range(size)
        ]
        aig.justice.append(group)
    for index in range(num_fairness):
        aig.fairness.append(
            _parse_lit(
                _first_field(next_line(f"fairness constraint {index}"), f"fairness constraint {index}"),
                aig.max_var,
                "fairness literal",
            )
        )


# ----------------------------------------------------------------------
# ASCII format
# ----------------------------------------------------------------------
def _parse_ascii(text: str) -> AIG:
    lines = text.splitlines()
    if not lines:
        raise AigerParseError("empty AIGER document")
    magic, header = _parse_header(lines[0])
    if magic != "aag":
        raise AigerParseError("ASCII parser invoked on binary content")
    (
        max_var,
        num_inputs,
        num_latches,
        num_outputs,
        num_ands,
        num_bads,
        num_constraints,
        num_justice,
        num_fairness,
    ) = header

    aig = AIG()
    aig._max_var = max_var  # variables are allocated by the file itself

    cursor = 1

    def next_line(what: str = "line") -> str:
        nonlocal cursor
        if cursor >= len(lines):
            raise AigerParseError(f"unexpected end of AIGER document (expected {what})")
        line = lines[cursor]
        cursor += 1
        return line

    for _ in range(num_inputs):
        lit = _parse_lit(_first_field(next_line("input"), "input"), max_var, "input literal")
        if lit & 1 or lit == 0:
            raise AigerParseError(f"invalid input literal {lit}")
        aig.inputs.append(lit)

    for _ in range(num_latches):
        fields = next_line("latch").split()
        if len(fields) < 2:
            raise AigerParseError(f"malformed latch line: {fields!r}")
        lit = _parse_lit(fields[0], max_var, "latch literal")
        nxt = _parse_lit(fields[1], max_var, "latch next-state literal")
        init: Optional[int] = 0
        if len(fields) >= 3:
            raw = _parse_int(fields[2], "latch reset value")
            if raw == lit:
                init = None
            elif raw in (0, 1):
                init = raw
            else:
                raise AigerParseError(f"invalid latch reset value {raw}")
        latch = Latch(lit=lit, next=nxt, init=init)
        aig.latches.append(latch)
        aig._latch_by_lit[lit] = latch

    for _ in range(num_outputs):
        aig.outputs.append(
            _parse_lit(_first_field(next_line("output"), "output"), max_var, "output literal")
        )
    for _ in range(num_bads):
        aig.bads.append(
            _parse_lit(_first_field(next_line("bad property"), "bad property"), max_var, "bad literal")
        )
    for _ in range(num_constraints):
        aig.constraints.append(
            _parse_lit(
                _first_field(next_line("invariant constraint"), "invariant constraint"),
                max_var,
                "constraint literal",
            )
        )
    _read_justice_and_fairness(aig, next_line, num_justice, num_fairness)

    for _ in range(num_ands):
        fields = next_line("AND gate").split()
        if len(fields) < 3:
            raise AigerParseError(f"malformed AND line: {fields!r}")
        lhs = _parse_lit(fields[0], max_var, "AND output literal")
        rhs0 = _parse_lit(fields[1], max_var, "AND operand literal")
        rhs1 = _parse_lit(fields[2], max_var, "AND operand literal")
        aig.ands.append(AndGate(lhs=lhs, rhs0=rhs0, rhs1=rhs1))

    _parse_symbols_and_comment(aig, lines[cursor:])
    return aig


def _parse_symbols_and_comment(aig: AIG, lines: List[str]) -> None:
    comment_lines: List[str] = []
    in_comment = False
    for line in lines:
        if in_comment:
            comment_lines.append(line)
            continue
        if line.startswith("c") and (len(line) == 1 or not line[1].isdigit()):
            in_comment = True
            continue
        if not line.strip():
            continue
        kind = line[0]
        if kind not in "ilobcjf":
            continue
        try:
            index_str, name = line[1:].split(" ", 1)
            index = int(index_str)
        except ValueError:
            continue
        if kind == "i" and index < len(aig.inputs):
            aig._input_names[aig.inputs[index]] = name
        elif kind == "l" and index < len(aig.latches):
            aig.latches[index].name = name
    if comment_lines:
        aig.comment = "\n".join(comment_lines)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def _parse_binary(data: bytes) -> AIG:
    try:
        newline = data.index(b"\n")
    except ValueError:
        raise AigerParseError("binary AIGER document has no header line") from None
    magic, header = _parse_header(data[:newline].decode("ascii", errors="replace"))
    if magic != "aig":
        raise AigerParseError("binary parser invoked on ASCII content")
    (
        max_var,
        num_inputs,
        num_latches,
        num_outputs,
        num_ands,
        num_bads,
        num_constraints,
        num_justice,
        num_fairness,
    ) = header
    if max_var != num_inputs + num_latches + num_ands:
        raise AigerParseError(
            f"binary AIGER header M={max_var} must equal "
            f"I+L+A={num_inputs + num_latches + num_ands}"
        )

    aig = AIG()
    aig._max_var = max_var
    # In the binary format literals are implicit: inputs are 2..2I,
    # latches are 2(I+1)..2(I+L).
    aig.inputs = [2 * (i + 1) for i in range(num_inputs)]

    cursor = newline + 1

    def next_line(what: str = "line") -> str:
        nonlocal cursor
        try:
            end = data.index(b"\n", cursor)
        except ValueError:
            raise AigerParseError(
                f"unexpected end of AIGER document (expected {what})"
            ) from None
        line = data[cursor:end].decode("ascii", errors="replace")
        cursor = end + 1
        return line

    for index in range(num_latches):
        fields = next_line("latch").split()
        if not fields:
            raise AigerParseError(f"malformed latch line for latch {index}")
        lit = 2 * (num_inputs + index + 1)
        nxt = _parse_lit(fields[0], max_var, "latch next-state literal")
        init: Optional[int] = 0
        if len(fields) >= 2:
            raw = _parse_int(fields[1], "latch reset value")
            if raw == lit:
                init = None
            elif raw in (0, 1):
                init = raw
            else:
                raise AigerParseError(f"invalid latch reset value {raw}")
        latch = Latch(lit=lit, next=nxt, init=init)
        aig.latches.append(latch)
        aig._latch_by_lit[lit] = latch
    for _ in range(num_outputs):
        aig.outputs.append(
            _parse_lit(_first_field(next_line("output"), "output"), max_var, "output literal")
        )
    for _ in range(num_bads):
        aig.bads.append(
            _parse_lit(_first_field(next_line("bad property"), "bad property"), max_var, "bad literal")
        )
    for _ in range(num_constraints):
        aig.constraints.append(
            _parse_lit(
                _first_field(next_line("invariant constraint"), "invariant constraint"),
                max_var,
                "constraint literal",
            )
        )
    _read_justice_and_fairness(aig, next_line, num_justice, num_fairness)

    # Delta-encoded AND gates.
    for index in range(num_ands):
        lhs = 2 * (num_inputs + num_latches + index + 1)
        delta0, cursor = _decode_number(data, cursor)
        delta1, cursor = _decode_number(data, cursor)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise AigerParseError(f"binary AND gate {lhs} decodes to negative literal")
        aig.ands.append(AndGate(lhs=lhs, rhs0=rhs0, rhs1=rhs1))

    remainder = data[cursor:].decode("ascii", errors="replace").splitlines()
    _parse_symbols_and_comment(aig, remainder)
    return aig


def _decode_number(data: bytes, cursor: int) -> Tuple[int, int]:
    """Decode one LEB128-style number of the binary AND section."""
    value = 0
    shift = 0
    while True:
        if cursor >= len(data):
            raise AigerParseError("truncated binary AND section")
        byte = data[cursor]
        cursor += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, cursor
        shift += 7


# Backwards-compatible alias: callers that caught AigerError keep working.
__all__ = ["read_aiger", "parse_aiger", "AigerError", "AigerParseError"]
