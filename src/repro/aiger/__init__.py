"""And-Inverter Graph (AIG) infrastructure.

HWMCC benchmarks — the evaluation substrate of the paper — are distributed
in the AIGER format.  This package provides the AIG data structure with a
construction API (structural hashing, constant folding, derived gates such
as OR/XOR/MUX/adders), cycle-accurate simulation for counterexample
replay, and readers/writers for both the ASCII ``.aag`` and the binary
``.aig`` formats.
"""

from repro.aiger.aig import AIG, AigerError, AigerParseError, FALSE_LIT, TRUE_LIT
from repro.aiger.digest import structural_digest
from repro.aiger.parser import parse_aiger, read_aiger
from repro.aiger.writer import write_aag, write_aig, to_aag_string, to_aig_bytes

__all__ = [
    "AIG",
    "AigerError",
    "AigerParseError",
    "FALSE_LIT",
    "TRUE_LIT",
    "parse_aiger",
    "read_aiger",
    "structural_digest",
    "write_aag",
    "write_aig",
    "to_aag_string",
    "to_aig_bytes",
]
