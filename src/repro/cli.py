"""Command-line interface.

``repro-check`` exposes the three things a user typically wants from the
command line:

* ``repro-check check model.aag`` — model-check one AIGER file with IC3
  (optionally with lemma prediction) and print the verdict;
* ``repro-check evaluate`` — run the paper's evaluation harness on the
  synthetic suite and print Tables 1/2 and the figure summaries;
* ``repro-check suite --list`` — show the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.aiger.parser import read_aiger
from repro.benchgen.suite import default_suite, quick_suite
from repro.core.ic3 import IC3
from repro.core.bmc import BMC
from repro.core.options import IC3Options
from repro.core.result import CheckResult
from repro.harness.report import run_paper_evaluation


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="IC3 with CTP-based lemma prediction (DAC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="model-check an AIGER file")
    check.add_argument("model", help="path to an .aag or .aig file")
    check.add_argument(
        "--engine",
        choices=["ic3", "ic3-pl", "bmc"],
        default="ic3-pl",
        help="engine to use (default: ic3-pl)",
    )
    check.add_argument("--timeout", type=float, default=None, help="time limit in seconds")
    check.add_argument("--max-depth", type=int, default=50, help="BMC depth bound")
    check.add_argument("--verbose", action="store_true", help="per-frame progress")

    evaluate = sub.add_parser("evaluate", help="run the paper evaluation harness")
    evaluate.add_argument("--timeout", type=float, default=5.0, help="per-case timeout")
    evaluate.add_argument(
        "--quick", action="store_true", help="use the small smoke-test suite"
    )
    evaluate.add_argument(
        "--validate", action="store_true", help="validate certificates and traces"
    )
    evaluate.add_argument("--verbose", action="store_true", help="per-case progress")

    suite = sub.add_parser("suite", help="inspect the benchmark suite")
    suite.add_argument("--list", action="store_true", help="list the cases")
    suite.add_argument("--quick", action="store_true", help="use the smoke-test suite")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return _command_check(args)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "suite":
        return _command_suite(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _command_check(args: argparse.Namespace) -> int:
    aig = read_aiger(args.model)
    if args.engine == "bmc":
        outcome = BMC(aig).check(max_depth=args.max_depth, time_limit=args.timeout)
    else:
        options = IC3Options(verbose=1 if args.verbose else 0)
        if args.engine == "ic3-pl":
            options = options.with_prediction()
        outcome = IC3(aig, options).check(time_limit=args.timeout)
    print(outcome.summary())
    if outcome.result == CheckResult.UNSAFE:
        return 1
    if outcome.result == CheckResult.SAFE:
        return 0
    return 2


def _command_evaluate(args: argparse.Namespace) -> int:
    cases = quick_suite() if args.quick else default_suite()
    report = run_paper_evaluation(
        cases=cases,
        timeout=args.timeout,
        validate=args.validate,
        verbose=args.verbose,
    )
    print(report.to_text())
    wrong = report.suite_result.incorrect_results()
    if wrong:
        print(f"\nWARNING: {len(wrong)} results contradict the ground truth")
        return 1
    return 0


def _command_suite(args: argparse.Namespace) -> int:
    cases = quick_suite() if args.quick else default_suite()
    print(f"{len(cases)} cases")
    if args.list:
        for case in cases:
            print("  " + case.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
