"""Command-line interface.

``repro-check`` exposes the four things a user typically wants from the
command line:

* ``repro-check check model.aag`` — model-check one AIGER file with any
  registered engine (``--engine ic3|ic3-pl|bmc|kind|portfolio|l2s|klive``;
  the portfolio races engines across ``--jobs`` worker processes and
  reports which member won).  ``--all-properties`` verifies every bad
  and justice property of an AIGER 1.9 file in one scheduled run and
  prints one verdict per property; ``--property N`` picks a single one.
  Models are shrunk through the default reduction pipeline first;
  ``--no-reduce`` disables that and ``--passes`` picks the passes;
* ``repro-check reduce model.aag`` — run only the reduction pipeline and
  report per-pass shrinkage (optionally writing the reduced model with
  ``--output``);
* ``repro-check evaluate`` — run the paper's evaluation harness on the
  synthetic suite and print Tables 1/2 and the figure summaries.
  ``--jobs N`` parallelizes the configurations × cases cross product over
  worker processes with hard per-case timeouts, and ``--output run.json``
  records a machine-readable manifest of the run;
* ``repro-check suite --list`` — show the benchmark suite;
* ``repro-check serve`` — run the verification-as-a-service HTTP daemon
  (warm worker pool, bounded queue, per-tenant budgets, structural-hash
  result cache); ``repro-check submit model.aag --wait 60`` is the
  matching client.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from contextlib import contextmanager, nullcontext
from typing import List, Optional

from repro.aiger.parser import read_aiger
from repro.aiger.writer import write_aag
from repro.benchgen.suite import (
    bench_suite,
    default_suite,
    extended_suite,
    liveness_suite,
    quick_suite,
    reduction_suite,
)
from repro.core.frames import available_frame_backends
from repro.sat.context import available_sat_backends
from repro.core.options import IC3Options
from repro.core.result import CheckResult
from repro.engines import available_engines, create_engine
from repro.harness.configs import (
    apply_frame_backend,
    apply_sat_backend,
    apply_seed,
    paper_configurations,
)
from repro.harness.manifest import build_manifest, write_manifest
from repro.harness.report import run_paper_evaluation
from repro.reduce import available_passes, reduce_aig


# Suite name -> module-level factory attribute; the single source for
# both the argparse choices and the dispatch in _select_suite.
_SUITES = {
    "default": "default_suite",
    "extended": "extended_suite",
    "quick": "quick_suite",
    "bench": "bench_suite",
    "reduction": "reduction_suite",
    "liveness": "liveness_suite",
}


def _select_suite(args: argparse.Namespace):
    """Resolve the ``--suite``/``--quick`` flags to (cases, suite name).

    The factory is looked up on this module at call time so tests can
    monkeypatch the suite functions.
    """
    name = "quick" if args.quick else args.suite
    return globals()[_SUITES[name]](), name


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="IC3 with CTP-based lemma prediction (DAC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="model-check an AIGER file")
    check.add_argument("model", help="path to an .aag or .aig file")
    check.add_argument(
        "--engine",
        choices=available_engines(include_aliases=True),
        default="ic3-pl",
        help="engine to use (default: ic3-pl)",
    )
    check.add_argument("--timeout", type=float, default=None, help="time limit in seconds")
    check.add_argument("--max-depth", type=int, default=50, help="BMC depth bound")
    check.add_argument(
        "--max-k", type=int, default=20, help="k-induction / k-liveness bound"
    )
    check.add_argument(
        "--all-properties",
        action="store_true",
        help="verify every property of the model (bads and justice) in one "
        "scheduled run and print one verdict per property",
    )
    check.add_argument(
        "--property",
        type=int,
        default=None,
        metavar="N",
        help="verify only property number N of the model (bads first, then "
        "justice properties; see the scheduler's numbering)",
    )
    check.add_argument(
        "--property-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-property time budget for scheduled multi-property runs",
    )
    check.add_argument(
        "--frame-backend",
        choices=available_frame_backends(),
        default=None,
        help="IC3 frame-management substrate (default: monolithic)",
    )
    check.add_argument(
        "--sat-backend",
        choices=available_sat_backends(),
        default=None,
        help="SAT kernel behind every solver the run creates (default: default)",
    )
    check.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="portfolio worker processes (default: one per member engine)",
    )
    check.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="RNG seed for the SAT kernels' randomized branching "
        "(0 = deterministic unseeded order; the portfolio derives "
        "distinct per-member seeds from it)",
    )
    check.add_argument(
        "--portfolio-share",
        dest="portfolio_share",
        action="store_true",
        default=True,
        help="portfolio only: exchange proven lemmas between members "
        "over a shared-memory bus (default: on)",
    )
    check.add_argument(
        "--no-portfolio-share",
        dest="portfolio_share",
        action="store_false",
        help="portfolio only: run members fully independently",
    )
    _add_reduction_arguments(check)
    check.add_argument("--verbose", action="store_true", help="per-frame progress")
    check.add_argument(
        "--live",
        action="store_true",
        help="paint a self-erasing live status line (IC3 frame, lemma and "
        "obligation totals, …) while the engine runs; automatically "
        "suppressed when stdout is not a terminal",
    )
    check.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record a full-stack trace of the run and write it as a "
        "Chrome trace-event (Perfetto-loadable) JSON file to PATH",
    )

    reduce_cmd = sub.add_parser(
        "reduce", help="shrink an AIGER file and report per-pass sizes"
    )
    reduce_cmd.add_argument("model", help="path to an .aag or .aig file")
    reduce_cmd.add_argument(
        "--passes",
        metavar="LIST",
        default=None,
        help="comma-separated pass list (default pipeline otherwise); "
        f"available: {', '.join(available_passes())}",
    )
    reduce_cmd.add_argument(
        "--property", type=int, default=0, help="bad-property index (default: 0)"
    )
    reduce_cmd.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the reduced model as ASCII AIGER to PATH",
    )

    evaluate = sub.add_parser("evaluate", help="run the paper evaluation harness")
    evaluate.add_argument("--timeout", type=float, default=5.0, help="per-case timeout")
    evaluate.add_argument(
        "--quick", action="store_true", help="use the small smoke-test suite"
    )
    evaluate.add_argument(
        "--suite",
        choices=sorted(_SUITES),
        default="default",
        help="benchmark suite to run (--quick is shorthand for --suite quick)",
    )
    evaluate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (0 = one per CPU; default: 1)",
    )
    evaluate.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write a machine-readable JSON run manifest to PATH",
    )
    evaluate.add_argument(
        "--validate", action="store_true", help="validate certificates and traces"
    )
    evaluate.add_argument(
        "--no-reduce",
        action="store_true",
        help="solve the original models without reduction preprocessing",
    )
    evaluate.add_argument(
        "--frame-backend",
        choices=available_frame_backends(),
        default=None,
        help="frame-management substrate for every IC3 configuration",
    )
    evaluate.add_argument(
        "--sat-backend",
        choices=available_sat_backends(),
        default=None,
        help="SAT kernel for every configuration (default: default)",
    )
    evaluate.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="RNG seed for the SAT kernels of every configuration "
        "(default: deterministic unseeded order)",
    )
    evaluate.add_argument("--verbose", action="store_true", help="per-case progress")
    evaluate.add_argument(
        "--live",
        action="store_true",
        help="paint a live status line aggregating the worker processes' "
        "heartbeats; suppressed when stdout is not a terminal",
    )
    evaluate.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record a pid/tid-tagged timeline of the whole evaluation "
        "(parent + every worker process) to PATH as Chrome trace JSON",
    )

    trace_report = sub.add_parser(
        "trace-report",
        help="summarize a recorded trace into a per-phase hotspot table",
    )
    trace_report.add_argument(
        "trace", help="path to a Chrome trace JSON or JSONL event file"
    )
    trace_report.add_argument(
        "--validate",
        action="store_true",
        help="check the Chrome trace-event schema first; nonzero exit on problems",
    )

    serve = sub.add_parser(
        "serve", help="run the verification-as-a-service HTTP daemon"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8123, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="warm worker processes (default: 2)"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="bounded job-queue depth; overflow answers 503 (default: 16)",
    )
    serve.add_argument(
        "--max-jobs-per-worker",
        type=int,
        default=32,
        help="recycle a worker process after this many jobs (default: 32)",
    )
    serve.add_argument(
        "--default-timeout",
        type=float,
        default=30.0,
        help="per-job time budget when the submission names none (default: 30)",
    )
    serve.add_argument(
        "--max-timeout",
        type=float,
        default=300.0,
        help="hard ceiling on requested per-job budgets (default: 300)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="result-cache entries before LRU eviction (default: 256)",
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=5.0,
        help="token-bucket refill rate per tenant, jobs/second (default: 5)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=20.0,
        help="token-bucket burst capacity per tenant (default: 20)",
    )
    serve.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="record one JSONL trace per job into DIR and expose it at "
        "GET /jobs/{id}/trace",
    )
    serve.add_argument(
        "--stall-timeout",
        type=float,
        default=10.0,
        help="replace a busy worker whose heartbeat has been silent this "
        "long, before its hard deadline (default: 10)",
    )
    serve.add_argument(
        "--no-heartbeats",
        action="store_true",
        help="disable worker heartbeats (and with them /jobs/{id}/progress "
        "and the stall watchdog)",
    )

    submit = sub.add_parser(
        "submit", help="submit an AIGER file to a running serve daemon"
    )
    submit.add_argument("model", help="path to an .aag or .aig file")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8123", help="daemon base URL"
    )
    submit.add_argument(
        "--engine",
        choices=available_engines(include_aliases=True),
        default="ic3-pl",
        help="engine to request (default: ic3-pl)",
    )
    submit.add_argument("--timeout", type=float, default=None, help="job time budget")
    submit.add_argument(
        "--tenant", default="cli", help="X-Tenant header value (default: cli)"
    )
    submit.add_argument(
        "--priority", type=int, default=0, help="queue priority (lower runs first)"
    )
    submit.add_argument(
        "--all-properties",
        action="store_true",
        help="verify every property via the scheduler",
    )
    submit.add_argument(
        "--no-reduce", action="store_true", help="skip reduction preprocessing"
    )
    submit.add_argument(
        "--wait",
        type=float,
        default=None,
        metavar="SECONDS",
        help="poll until the job finishes (at most SECONDS); exit code follows "
        "the verdict: 0 safe, 1 unsafe, 2 unknown/failed",
    )

    metrics = sub.add_parser(
        "metrics",
        help="one-shot metrics dump: this process's registry, or a running "
        "serve daemon when --url is given",
    )
    metrics.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="scrape GET /metrics of a running serve daemon instead of "
        "rendering the in-process registry",
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON snapshot (GET /metrics.json against a daemon) "
        "instead of Prometheus text",
    )

    sub.add_parser(
        "version",
        help="print version and registry diagnostics (engines, backends, passes)",
    )

    suite = sub.add_parser("suite", help="inspect the benchmark suite")
    suite.add_argument("--list", action="store_true", help="list the cases")
    suite.add_argument("--quick", action="store_true", help="use the smoke-test suite")
    suite.add_argument(
        "--suite",
        choices=sorted(_SUITES),
        default="default",
        help="benchmark suite to inspect",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return _command_check(args)
    if args.command == "reduce":
        return _command_reduce(args)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "suite":
        return _command_suite(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "trace-report":
        return _command_trace_report(args)
    if args.command == "metrics":
        return _command_metrics(args)
    if args.command == "version":
        return _command_version(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _maybe_trace(path: Optional[str], label: str):
    """A ``trace_session`` writing to ``path``, or a no-op without one."""
    if not path:
        return nullcontext()
    from repro.obs.tracer import trace_session

    return trace_session(path, label=label)


@contextmanager
def _live_check_session(active: bool):
    """``check --live``: an in-process heartbeat feeding a status line.

    The engine runs in this process, so no publisher file is needed —
    the status line reads the heartbeat object directly.  LiveStatus
    suppresses itself when stdout is not a terminal.
    """
    if not active:
        yield
        return
    from repro.obs.heartbeat import (
        Heartbeat,
        LiveStatus,
        format_progress,
        install_heartbeat,
        uninstall_heartbeat,
    )

    heartbeat = install_heartbeat(Heartbeat(role="check"))
    try:
        with LiveStatus(lambda: format_progress(heartbeat.snapshot())):
            yield
    finally:
        uninstall_heartbeat()
        heartbeat.close()


@contextmanager
def _live_evaluate_session(active: bool):
    """``evaluate --live``: aggregate the worker heartbeats on one line.

    Opens a heartbeat session (the harness pool workers pick the
    directory up from the environment and publish into it) and paints
    the freshest worker's progress, prefixed with the live worker count.
    """
    if not active:
        yield
        return
    from repro.obs.heartbeat import LiveStatus, format_progress, heartbeat_session

    with heartbeat_session() as monitor:

        def _line() -> Optional[str]:
            records = [r for r in monitor.read_all() if monitor.age(r) < 5.0]
            if not records:
                return None
            records.sort(key=lambda r: r.get("time_mono", 0.0), reverse=True)
            head = format_progress(records[0])
            if len(records) > 1:
                return f"[{len(records)} workers] {head}"
            return head

        with LiveStatus(_line):
            yield


def _configure_verbose_logging(args: argparse.Namespace) -> None:
    """Route the engines' ``logging`` progress output to stderr."""
    if getattr(args, "verbose", False):
        logging.basicConfig(
            level=logging.INFO, format="%(message)s", stream=sys.stderr
        )


def _command_version(args: argparse.Namespace) -> int:
    """Print the version plus every extension registry's contents.

    The registries are the supported customization points (engines,
    frame substrates, SAT kernels, reduction passes); listing them in
    one place is the quickest way to see what a given checkout or
    third-party plugin actually provides.
    """
    import repro
    from repro.harness.manifest import MANIFEST_SCHEMA

    print(f"repro-check {repro.__version__}")
    print(f"manifest schema:  {MANIFEST_SCHEMA}")
    print(f"engines:          {', '.join(available_engines(include_aliases=True))}")
    print(f"frame backends:   {', '.join(available_frame_backends())}")
    print(f"sat backends:     {', '.join(available_sat_backends())}")
    print(f"reduction passes: {', '.join(available_passes())}")
    return 0


def _add_reduction_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-reduce",
        action="store_true",
        help="solve the original model without reduction preprocessing",
    )
    parser.add_argument(
        "--passes",
        metavar="LIST",
        default=None,
        help="comma-separated reduction pass list; "
        f"available: {', '.join(available_passes())}",
    )


def _parse_passes(value: Optional[str]) -> Optional[List[str]]:
    """Validate a ``--passes`` value against the pass registry."""
    if value is None:
        return None
    names = [name.strip() for name in value.split(",") if name.strip()]
    known = set(available_passes())
    for name in names:
        if name not in known:
            raise SystemExit(
                f"error: unknown reduction pass {name!r} "
                f"(available: {', '.join(sorted(known))})"
            )
    return names


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Per-kind construction keywords for the ``check`` subcommand."""
    kwargs: dict = {
        "reduce": not args.no_reduce,
        "passes": _parse_passes(args.passes),
    }
    if getattr(args, "frame_backend", None):
        kwargs["frame_backend"] = args.frame_backend
    if getattr(args, "sat_backend", None):
        kwargs["sat_backend"] = args.sat_backend
    if args.engine == "bmc":
        kwargs["max_depth"] = args.max_depth
    elif args.engine in ("kind", "k-induction"):
        kwargs["max_k"] = args.max_k
    elif args.engine in ("klive", "k-liveness"):
        kwargs["max_k"] = args.max_k
    elif args.engine in ("l2s", "liveness-to-safety"):
        kwargs["max_depth"] = args.max_depth
    elif args.engine == "portfolio":
        from repro.engines.portfolio import PortfolioOptions

        kwargs["jobs"] = args.jobs
        kwargs["member_kwargs"] = {
            "bmc": {"max_depth": args.max_depth},
            "kind": {"max_k": args.max_k},
        }
        kwargs["portfolio_options"] = PortfolioOptions(
            share=args.portfolio_share,
            base_seed=args.seed if args.seed else 1,
        )
    return kwargs


def _command_check(args: argparse.Namespace) -> int:
    _configure_verbose_logging(args)
    with _maybe_trace(args.trace_out, "check"):
        with _live_check_session(args.live):
            exit_code = _check_body(args)
    if args.trace_out:
        print(f"Trace written to {args.trace_out}")
    return exit_code


def _check_body(args: argparse.Namespace) -> int:
    aig = read_aiger(args.model)
    options = IC3Options(verbose=1 if args.verbose else 0, seed=args.seed)
    if args.all_properties or args.property is not None:
        return _check_scheduled(args, aig, options)
    engine = create_engine(args.engine, aig, options=options, **_engine_kwargs(args))
    outcome = engine.check(time_limit=args.timeout)
    if args.verbose and outcome.reduction:
        original = outcome.reduction["original"]
        reduced = outcome.reduction["reduced"]
        print(
            f"[reduce] latches {original['latches']} -> {reduced['latches']}, "
            f"ands {original['ands']} -> {reduced['ands']} "
            f"(passes: {', '.join(outcome.reduction['passes'])})"
        )
    print(outcome.summary())
    if outcome.result == CheckResult.UNSAFE:
        return 1
    if outcome.result == CheckResult.SAFE:
        return 0
    return 2


def _check_scheduled(args: argparse.Namespace, aig, options) -> int:
    """``check --all-properties`` / ``--property N``: the scheduler path."""
    from repro.props import PropertyScheduler, SchedulerError

    # Liveness/scheduler kinds have their own strategies; the --engine
    # flag then only picks the safety-property engine.
    safety_engine = args.engine
    if safety_engine in ("l2s", "liveness-to-safety", "klive", "k-liveness",
                         "scheduler", "sched", "multi"):
        safety_engine = "ic3-pl"
    try:
        scheduler = PropertyScheduler(
            aig,
            engine=safety_engine,
            options=options,
            reduce=not args.no_reduce,
            passes=_parse_passes(args.passes),
            property_timeout=args.property_timeout,
            properties=None if args.all_properties else [args.property],
            max_k=args.max_k,
            max_depth=args.max_depth,
            frame_backend=getattr(args, "frame_backend", None),
            sat_backend=getattr(args, "sat_backend", None),
        )
    except SchedulerError as error:
        print(f"error: {error}")
        return 2
    result = scheduler.run(time_limit=args.timeout)
    print(result.format_table())
    if not result.all_validated:
        failed = [v.obligation.label for v in result.verdicts if v.validated is False]
        print(f"WARNING: witness validation failed for: {', '.join(failed)}")
        return 2
    if result.aggregate == CheckResult.UNSAFE:
        return 1
    if result.aggregate == CheckResult.SAFE:
        return 0
    return 2


def _command_reduce(args: argparse.Namespace) -> int:
    aig = read_aiger(args.model)
    result = reduce_aig(
        aig, property_index=args.property, passes=_parse_passes(args.passes)
    )
    header = f"{'pass':<10s} {'inputs':>14s} {'latches':>14s} {'ands':>14s}"
    print(header)
    print("-" * len(header))
    for info in result.infos:
        print(
            f"{info.pass_name:<10s} "
            f"{info.inputs_before:>6d} -> {info.inputs_after:<5d}"
            f"{info.latches_before:>6d} -> {info.latches_after:<5d}"
            f"{info.ands_before:>6d} -> {info.ands_after:<5d}"
        )
    print("-" * len(header))
    print(
        f"{'total':<10s} "
        f"{aig.num_inputs:>6d} -> {result.aig.num_inputs:<5d}"
        f"{aig.num_latches:>6d} -> {result.aig.num_latches:<5d}"
        f"{aig.num_ands:>6d} -> {result.aig.num_ands:<5d}"
    )
    if args.output:
        write_aag(result.aig, args.output)
        print(f"\nReduced model written to {args.output}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    _configure_verbose_logging(args)
    with _maybe_trace(args.trace_out, "evaluate"):
        with _live_evaluate_session(args.live):
            exit_code = _evaluate_body(args)
    if args.trace_out:
        print(f"Trace written to {args.trace_out}")
    return exit_code


def _evaluate_body(args: argparse.Namespace) -> int:
    cases, suite_name = _select_suite(args)
    if suite_name == "liveness":
        # The liveness suite carries justice properties the paper's IC3
        # configurations cannot express — it runs through the
        # multi-property scheduler instead of the Table 1/2 harness.
        return _evaluate_liveness(args, cases, suite_name)
    start = time.perf_counter()
    report = run_paper_evaluation(
        cases=cases,
        timeout=args.timeout,
        validate=args.validate,
        verbose=args.verbose,
        jobs=args.jobs,
        reduce=not args.no_reduce,
        frame_backend=args.frame_backend,
        sat_backend=args.sat_backend,
        seed=args.seed,
    )
    wall_clock = time.perf_counter() - start
    print(report.to_text())
    if args.output:
        configs = apply_seed(
            apply_sat_backend(
                apply_frame_backend(paper_configurations(), args.frame_backend),
                args.sat_backend,
            ),
            args.seed,
        )
        telemetry = None
        if args.live:
            from repro.obs.metrics import get_registry, snapshot_totals

            telemetry = snapshot_totals(get_registry().snapshot())
        manifest = build_manifest(
            report.suite_result,
            suite=suite_name,
            jobs=args.jobs,
            validate=args.validate,
            reduce=not args.no_reduce,
            configs=configs,
            wall_clock=wall_clock,
            telemetry=telemetry,
        )
        write_manifest(args.output, manifest)
        print(f"\nRun manifest written to {args.output}")
    exit_code = 0
    crashed = [r for r in report.suite_result.results if r.error]
    if crashed:
        print(f"\nWARNING: {len(crashed)} worker(s) crashed instead of reporting:")
        for result in crashed[:10]:
            print(f"  {result.config_name} / {result.case_name}: {result.error}")
        exit_code = 1
    wrong = report.suite_result.incorrect_results()
    if wrong:
        print(f"\nWARNING: {len(wrong)} results contradict the ground truth")
        exit_code = 1
    return exit_code


def _evaluate_liveness(args: argparse.Namespace, cases, suite_name: str) -> int:
    """Scheduler-based evaluation of the liveness suite (manifest v4)."""
    from repro.harness.configs import EngineConfig
    from repro.harness.runner import BenchmarkRunner

    config = EngineConfig(
        name="scheduler",
        engine="scheduler",
        plays_role_of="multi-property scheduler (l2s + k-liveness + shared BMC)",
        engine_kwargs={"max_k": 12},
    )
    start = time.perf_counter()
    # Witness validation happens per property inside the scheduler (the
    # per-property records carry the results); harness-level validation
    # of the aggregate outcome is a no-op but kept on so the manifest's
    # recorded configuration matches the runner's.
    runner = BenchmarkRunner(
        cases,
        [config],
        timeout=args.timeout,
        validate=True,
        verbose=args.verbose,
        jobs=args.jobs,
        reduce=not args.no_reduce,
    )
    suite_result = runner.run()
    wall_clock = time.perf_counter() - start

    exit_code = 0
    case_by_name = {case.name: case for case in cases}
    header = f"{'case':<24s} {'prop':<6s} {'verdict':<8s} {'engine':<12s} {'expected':<8s}"
    print(header)
    print("-" * len(header))
    for result in suite_result.results:
        case = case_by_name[result.case_name]
        if result.error:
            print(f"{result.case_name:<24s} ERROR: {result.error}")
            exit_code = 1
            continue
        if not result.properties:
            print(f"{result.case_name:<24s} {result.result.value} (no property records)")
            continue
        expected = case.expected_properties or []
        for position, record in enumerate(result.properties):
            want = expected[position].value if position < len(expected) else "?"
            got = record["result"]
            flag = "" if got in (want, "unknown") else "  << WRONG"
            if record.get("validated") is False:
                flag += "  << INVALID WITNESS"
            if flag:
                exit_code = 1
            print(
                f"{result.case_name:<24s} {record['label']:<6s} {got:<8s} "
                f"{record['engine']:<12s} {want:<8s}{flag}"
            )
    print("-" * len(header))
    solved = sum(1 for r in suite_result.results if r.solved)
    print(f"{solved}/{len(suite_result.results)} cases solved in {wall_clock:.1f}s")

    if args.output:
        manifest = build_manifest(
            suite_result,
            suite=suite_name,
            jobs=args.jobs,
            validate=True,
            reduce=not args.no_reduce,
            configs=[config],
            wall_clock=wall_clock,
        )
        write_manifest(args.output, manifest)
        print(f"\nRun manifest written to {args.output}")
    return exit_code


def _command_metrics(args: argparse.Namespace) -> int:
    """One-shot metrics dump: the process registry, or a scraped daemon."""
    import json

    if args.url:
        import urllib.error
        import urllib.request

        base = args.url.rstrip("/")
        path = "/metrics.json" if args.json else "/metrics"
        try:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                body = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as error:
            print(f"error: cannot scrape {base + path}: {error}")
            return 2
        sys.stdout.write(body if body.endswith("\n") else body + "\n")
        return 0

    from repro.obs.metrics import get_registry, render_prometheus

    snapshot = get_registry().snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def _command_trace_report(args: argparse.Namespace) -> int:
    """Print the per-phase hotspot table of a recorded trace."""
    from repro.obs import format_report, read_trace, validate_trace_file

    try:
        events = read_trace(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: cannot read trace {args.trace!r}: {error}")
        return 2
    if args.validate:
        problems = validate_trace_file(args.trace)
        if problems:
            print(f"{len(problems)} trace schema problem(s):")
            for problem in problems[:20]:
                print(f"  {problem}")
            return 1
        print(f"trace schema OK ({len(events)} events)")
    if not events:
        print("trace is empty")
        return 0
    print(format_report(events))
    return 0


def _command_suite(args: argparse.Namespace) -> int:
    cases, suite_name = _select_suite(args)
    print(f"{len(cases)} cases ({suite_name} suite)")
    if args.list:
        for case in cases:
            print("  " + case.describe())
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import run_server
    from repro.serve.service import VerificationService

    service = VerificationService(
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_jobs_per_worker=args.max_jobs_per_worker,
        default_timeout=args.default_timeout,
        max_timeout=args.max_timeout,
        cache_size=args.cache_size,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        trace_dir=args.trace_dir,
        heartbeats=not args.no_heartbeats,
        stall_timeout=args.stall_timeout,
    )
    run_server(service, host=args.host, port=args.port)
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    """HTTP client for a running ``repro-check serve`` daemon.

    Binary ``.aig`` inputs are re-serialized as ASCII AAG locally so the
    wire format is always the JSON envelope the daemon accepts.
    """
    import json
    import urllib.error
    import urllib.request

    from repro.aiger.writer import to_aag_string

    model_text = to_aag_string(read_aiger(args.model))
    document = {
        "model": model_text,
        "engine": args.engine,
        "priority": args.priority,
    }
    if args.timeout is not None:
        document["timeout"] = args.timeout
    if args.all_properties:
        document["all_properties"] = True
    if args.no_reduce:
        document["reduce"] = False
    base = args.url.rstrip("/")
    request = urllib.request.Request(
        base + "/jobs",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json", "X-Tenant": args.tenant},
        method="POST",
    )

    def _send(req):
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode("utf-8"))

    status, payload = _send(request)
    if status not in (200, 202):
        retry = payload.get("retry_after")
        suffix = f" (retry after {retry}s)" if retry is not None else ""
        print(f"submission rejected ({status}): {payload.get('error')}{suffix}")
        return 2
    job_id = payload["id"]
    if payload.get("cache_hit"):
        print(f"{job_id}: served from cache")
    else:
        print(f"{job_id}: {payload['status']}")
    if args.wait is None:
        print(json.dumps(payload, indent=2))
        return 0

    deadline = time.monotonic() + args.wait
    while payload.get("status") not in ("done", "failed"):
        if time.monotonic() >= deadline:
            print(f"{job_id}: still {payload.get('status')} after {args.wait}s")
            return 2
        time.sleep(min(0.5, max(0.05, deadline - time.monotonic())))
        status, payload = _send(
            urllib.request.Request(base + f"/jobs/{job_id}", method="GET")
        )
        if status != 200:
            print(f"poll failed ({status}): {payload.get('error')}")
            return 2
    print(json.dumps(payload, indent=2))
    result = (payload.get("result") or {}).get("result")
    if payload.get("status") == "failed":
        return 2
    return {"safe": 0, "unsafe": 1}.get(result, 2)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
