"""Command-line interface.

``repro-check`` exposes the three things a user typically wants from the
command line:

* ``repro-check check model.aag`` — model-check one AIGER file with any
  registered engine (``--engine ic3|ic3-pl|bmc|kind|portfolio``; the
  portfolio races engines across ``--jobs`` worker processes and reports
  which member won);
* ``repro-check evaluate`` — run the paper's evaluation harness on the
  synthetic suite and print Tables 1/2 and the figure summaries.
  ``--jobs N`` parallelizes the configurations × cases cross product over
  worker processes with hard per-case timeouts, and ``--output run.json``
  records a machine-readable manifest of the run;
* ``repro-check suite --list`` — show the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.aiger.parser import read_aiger
from repro.benchgen.suite import default_suite, quick_suite
from repro.core.options import IC3Options
from repro.core.result import CheckResult
from repro.engines import available_engines, create_engine
from repro.harness.configs import paper_configurations
from repro.harness.manifest import build_manifest, write_manifest
from repro.harness.report import run_paper_evaluation


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="IC3 with CTP-based lemma prediction (DAC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="model-check an AIGER file")
    check.add_argument("model", help="path to an .aag or .aig file")
    check.add_argument(
        "--engine",
        choices=available_engines(include_aliases=True),
        default="ic3-pl",
        help="engine to use (default: ic3-pl)",
    )
    check.add_argument("--timeout", type=float, default=None, help="time limit in seconds")
    check.add_argument("--max-depth", type=int, default=50, help="BMC depth bound")
    check.add_argument("--max-k", type=int, default=20, help="k-induction bound")
    check.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="portfolio worker processes (default: one per member engine)",
    )
    check.add_argument("--verbose", action="store_true", help="per-frame progress")

    evaluate = sub.add_parser("evaluate", help="run the paper evaluation harness")
    evaluate.add_argument("--timeout", type=float, default=5.0, help="per-case timeout")
    evaluate.add_argument(
        "--quick", action="store_true", help="use the small smoke-test suite"
    )
    evaluate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (0 = one per CPU; default: 1)",
    )
    evaluate.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write a machine-readable JSON run manifest to PATH",
    )
    evaluate.add_argument(
        "--validate", action="store_true", help="validate certificates and traces"
    )
    evaluate.add_argument("--verbose", action="store_true", help="per-case progress")

    suite = sub.add_parser("suite", help="inspect the benchmark suite")
    suite.add_argument("--list", action="store_true", help="list the cases")
    suite.add_argument("--quick", action="store_true", help="use the smoke-test suite")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return _command_check(args)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "suite":
        return _command_suite(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Per-kind construction keywords for the ``check`` subcommand."""
    if args.engine == "bmc":
        return {"max_depth": args.max_depth}
    if args.engine in ("kind", "k-induction"):
        return {"max_k": args.max_k}
    if args.engine == "portfolio":
        return {
            "jobs": args.jobs,
            "member_kwargs": {
                "bmc": {"max_depth": args.max_depth},
                "kind": {"max_k": args.max_k},
            },
        }
    return {}


def _command_check(args: argparse.Namespace) -> int:
    aig = read_aiger(args.model)
    options = IC3Options(verbose=1 if args.verbose else 0)
    engine = create_engine(args.engine, aig, options=options, **_engine_kwargs(args))
    outcome = engine.check(time_limit=args.timeout)
    print(outcome.summary())
    if outcome.result == CheckResult.UNSAFE:
        return 1
    if outcome.result == CheckResult.SAFE:
        return 0
    return 2


def _command_evaluate(args: argparse.Namespace) -> int:
    cases = quick_suite() if args.quick else default_suite()
    start = time.perf_counter()
    report = run_paper_evaluation(
        cases=cases,
        timeout=args.timeout,
        validate=args.validate,
        verbose=args.verbose,
        jobs=args.jobs,
    )
    wall_clock = time.perf_counter() - start
    print(report.to_text())
    if args.output:
        manifest = build_manifest(
            report.suite_result,
            suite="quick" if args.quick else "default",
            jobs=args.jobs,
            validate=args.validate,
            configs=paper_configurations(),
            wall_clock=wall_clock,
        )
        write_manifest(args.output, manifest)
        print(f"\nRun manifest written to {args.output}")
    exit_code = 0
    crashed = [r for r in report.suite_result.results if r.error]
    if crashed:
        print(f"\nWARNING: {len(crashed)} worker(s) crashed instead of reporting:")
        for result in crashed[:10]:
            print(f"  {result.config_name} / {result.case_name}: {result.error}")
        exit_code = 1
    wrong = report.suite_result.incorrect_results()
    if wrong:
        print(f"\nWARNING: {len(wrong)} results contradict the ground truth")
        exit_code = 1
    return exit_code


def _command_suite(args: argparse.Namespace) -> int:
    cases = quick_suite() if args.quick else default_suite()
    print(f"{len(cases)} cases")
    if args.list:
        for case in cases:
            print("  " + case.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
