"""Pluggable incremental SAT-context layer.

A :class:`SatContext` is one persistent incremental solver plus the
bookkeeping that model-checking engines need around it: activation-literal
*scopes* for removable clause groups, timed and counted ``solve`` calls,
and clause-loading accounting.  (The clauses-shared vs clauses-duplicated
comparison between frame substrates lives in
:class:`repro.core.stats.IC3Stats`, where the manifest reads it.)

The concrete solver behind a context is chosen by name from a small
factory registry, so alternative backends (a different CDCL
implementation, an instrumented wrapper, a native binding) can be plugged
in without touching the engines::

    @register_sat_backend("counting")
    def _make():
        return MyInstrumentedSolver()

    ctx = SatContext(backend="counting")

Every registered backend must provide the :class:`~repro.sat.solver.Solver`
interface (``add_clause``, ``solve``, assumptions, ``unsat_core``,
``get_model`` and the activation-literal API).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.sat.arena import ArenaSolver
from repro.sat.exceptions import SolverError
from repro.sat.solver import Solver

SolverFactory = Callable[[], Solver]

_BACKENDS: Dict[str, SolverFactory] = {}


# Backends every installation must keep: "default" is the reference
# oracle the differential tests and benchmarks compare against, "arena"
# is the flat-arena production kernel.
_PROTECTED_BACKENDS = frozenset({"default", "arena"})


def register_sat_backend(
    name: str, factory: Optional[SolverFactory] = None, override: bool = False
):
    """Register a solver factory under ``name`` (usable as a decorator).

    Re-registering an existing name raises :class:`SolverError` unless
    ``override=True`` is passed explicitly, so a plugin cannot silently
    shadow another backend (or the built-in ones).
    """

    def _register(fn: SolverFactory) -> SolverFactory:
        if name in _BACKENDS and not override:
            raise SolverError(
                f"SAT backend {name!r} is already registered "
                "(pass override=True to replace it)"
            )
        _BACKENDS[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def unregister_sat_backend(name: str) -> None:
    """Remove a backend registration (primarily for tests).

    The built-in backends cannot be unregistered: ``default`` is the
    reference oracle behind the differential-soundness guarantees and
    ``arena`` is the shipped production kernel.
    """
    if name in _PROTECTED_BACKENDS:
        raise SolverError(
            f"SAT backend {name!r} is built in and cannot be unregistered"
        )
    _BACKENDS.pop(name, None)


def sat_backend(name: str) -> SolverFactory:
    """Look up a registered solver factory by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise SolverError(
            f"unknown SAT backend {name!r} "
            f"(available: {', '.join(sorted(_BACKENDS))})"
        ) from None


def available_sat_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_BACKENDS)


register_sat_backend("default", Solver)
register_sat_backend("arena", ArenaSolver)


def apply_solver_seed(solver, seed: int) -> None:
    """Seed a solver's branching randomization if the backend supports it.

    Both built-in kernels expose ``set_seed``; custom registered backends
    may not, in which case the seed is silently ignored (the solver just
    stays deterministic-unseeded, which is always sound).
    """
    if seed:
        set_seed = getattr(solver, "set_seed", None)
        if set_seed is not None:
            set_seed(seed)


@dataclass
class ContextStats:
    """Counters accumulated over the lifetime of one context."""

    solve_calls: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    solve_time: float = 0.0
    clauses_loaded: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "solve_calls": self.solve_calls,
            "sat_answers": self.sat_answers,
            "unsat_answers": self.unsat_answers,
            "solve_time": self.solve_time,
            "clauses_loaded": self.clauses_loaded,
        }


class SatContext:
    """A reusable incremental solving context.

    Wraps one solver instance for the whole lifetime of an engine run;
    callers express clause removability through *scopes* (activation
    literals) instead of creating fresh solvers, and solve under
    assumptions that select which scopes are active.
    """

    def __init__(self, backend: str = "default", seed: int = 0):
        self.backend_name = backend
        self.solver = sat_backend(backend)()
        if seed:
            apply_solver_seed(self.solver, seed)
        self.stats = ContextStats()

    # ------------------------------------------------------------------
    # Clause loading
    # ------------------------------------------------------------------
    def load(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Bulk-add permanent clauses (e.g. a transition relation)."""
        ok = True
        for clause in clauses:
            ok = self.solver.add_clause(clause) and ok
            self.stats.clauses_loaded += 1
        return ok

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add one permanent clause."""
        self.stats.clauses_loaded += 1
        return self.solver.add_clause(literals)

    # ------------------------------------------------------------------
    # Scopes (removable clause groups)
    # ------------------------------------------------------------------
    def new_scope(self) -> int:
        """Open a removable clause scope; returns its activation literal."""
        return self.solver.new_activation()

    def add_to_scope(self, act: int, literals: Sequence[int]):
        """Add a clause active only while ``act`` is assumed.

        Returns the stored clause handle (None when simplified away),
        usable with :meth:`remove_from_scope`.
        """
        _, handle = self.solver.add_guarded(act, literals)
        return handle

    def remove_from_scope(self, act: int, handle) -> None:
        """Remove one clause from a scope (caller guarantees implication)."""
        self.solver.remove_guarded(act, handle)

    def release_scope(self, act: int) -> None:
        """Drop a scope's clauses and recycle its activation literal."""
        self.solver.release(act)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Timed, counted solve under assumptions."""
        start = time.perf_counter()
        result = self.solver.solve(assumptions)
        self.stats.solve_time += time.perf_counter() - start
        self.stats.solve_calls += 1
        if result:
            self.stats.sat_answers += 1
        else:
            self.stats.unsat_answers += 1
        return result

    def get_model(self) -> Dict[int, bool]:
        return self.solver.get_model()

    def unsat_core(self) -> List[int]:
        return self.solver.unsat_core()
