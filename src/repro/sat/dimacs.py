"""DIMACS CNF parsing and writing helpers for the SAT layer.

These functions are used by the command-line interface, by tests that
cross-check the solver against brute-force enumeration, and by users who
want to feed an externally generated CNF into the solver.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.logic.cnf import CNF
from repro.sat.exceptions import SolverError
from repro.sat.solver import Solver


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``."""
    num_vars = 0
    declared_clauses = None
    clauses: List[List[int]] = []
    pending: List[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed DIMACS header: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(pending)
                pending = []
            else:
                pending.append(lit)
                num_vars = max(num_vars, abs(lit))
    if pending:
        clauses.append(pending)
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerated: many generators emit slightly inconsistent headers.
        pass
    return num_vars, clauses


def load_dimacs(path: Union[str, Path]) -> Solver:
    """Read a DIMACS file and return a solver loaded with its clauses."""
    num_vars, clauses = parse_dimacs(Path(path).read_text())
    solver = Solver()
    solver.ensure_var(max(num_vars, 1))
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def write_dimacs(cnf: CNF, path: Union[str, Path]) -> None:
    """Write a :class:`~repro.logic.cnf.CNF` to a DIMACS file."""
    Path(path).write_text(cnf.to_dimacs())
