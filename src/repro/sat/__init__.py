"""A from-scratch CDCL SAT solver.

The paper's IC3 implementations sit on MiniSat-class incremental solvers;
this package provides the Python equivalent: two-watched-literal unit
propagation, first-UIP clause learning with minimisation, VSIDS decision
ordering with phase saving, Luby restarts, learnt-clause reduction,
solving under assumptions, model extraction, and assumption cores (the
``analyzeFinal`` of MiniSat) which IC3 uses to shrink predecessor cubes
and accelerate generalization.
"""

from repro.sat.solver import Solver, SolverStats
from repro.sat.arena import ArenaClauseRef, ArenaSolver
from repro.sat.context import (
    ContextStats,
    SatContext,
    available_sat_backends,
    register_sat_backend,
    sat_backend,
    unregister_sat_backend,
)
from repro.sat.exceptions import SolverError, ResourceBudgetExceeded
from repro.sat.luby import luby
from repro.sat.dimacs import parse_dimacs, write_dimacs

__all__ = [
    "Solver",
    "SolverStats",
    "ArenaSolver",
    "ArenaClauseRef",
    "SatContext",
    "ContextStats",
    "register_sat_backend",
    "unregister_sat_backend",
    "sat_backend",
    "available_sat_backends",
    "SolverError",
    "ResourceBudgetExceeded",
    "luby",
    "parse_dimacs",
    "write_dimacs",
]
