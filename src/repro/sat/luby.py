"""The Luby restart sequence.

The sequence 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... multiplied by
a base interval is the standard restart schedule of modern CDCL solvers; it
is provably within a logarithmic factor of the optimal universal strategy.
The implementation follows MiniSat's ``luby()``.
"""

from __future__ import annotations


def luby(index: int) -> int:
    """Return the ``index``-th element (0-based) of the Luby sequence."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    # Find the finite subsequence that contains this index and its size.
    size = 1
    seq = 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        seq -= 1
        index = index % size
    return 1 << seq
