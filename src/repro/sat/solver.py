"""A CDCL SAT solver with assumptions, models and assumption cores.

The design follows MiniSat 2.2: two-watched-literal propagation, first-UIP
conflict analysis with clause minimisation, VSIDS variable activities with
phase saving, Luby restarts and learnt-clause database reduction.  The
external interface works directly with DIMACS-style signed integer
literals, which is what the rest of the library (CNF encoding, IC3) uses.

Typical use::

    solver = Solver()
    solver.add_clause([1, 2])
    solver.add_clause([-1, 3])
    if solver.solve(assumptions=[-3]):
        model = solver.get_model()
    else:
        core = solver.unsat_core()
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic.cube import Cube
from repro.obs.tracer import get_tracer
from repro.sat.clause import SolverClause
from repro.sat.exceptions import ResourceBudgetExceeded, SolverError
from repro.sat.heap import VarOrderHeap
from repro.sat.luby import luby

_UNDEF = 0
_TRUE = 1
_FALSE = -1


@dataclass
class SolverStats:
    """Counters accumulated over the lifetime of a solver instance."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learnt_clauses: int = 0
    removed_clauses: int = 0
    solve_calls: int = 0
    max_decision_level: int = 0

    # Activation-literal (removable clause) accounting.
    activation_vars_allocated: int = 0
    activation_vars_recycled: int = 0
    activation_vars_retired: int = 0
    guarded_clauses_added: int = 0
    guarded_clauses_freed: int = 0
    learnts_purged: int = 0
    assumption_levels_reused: int = 0

    # Cache/allocation-oriented counters (manifest schema v5).  The
    # traversal counters are maintained by both backends with the same
    # semantics: ``watch_traversals`` counts watcher entries visited by
    # unit propagation, ``blocker_hits`` the subset resolved by the
    # cached blocker literal alone (no clause memory touched).
    watch_traversals: int = 0
    blocker_hits: int = 0
    literal_pool_bytes: int = 0
    arena_compactions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the statistics as a plain dictionary."""
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learnt_clauses": self.learnt_clauses,
            "removed_clauses": self.removed_clauses,
            "solve_calls": self.solve_calls,
            "max_decision_level": self.max_decision_level,
            "activation_vars_allocated": self.activation_vars_allocated,
            "activation_vars_recycled": self.activation_vars_recycled,
            "activation_vars_retired": self.activation_vars_retired,
            "guarded_clauses_added": self.guarded_clauses_added,
            "guarded_clauses_freed": self.guarded_clauses_freed,
            "learnts_purged": self.learnts_purged,
            "assumption_levels_reused": self.assumption_levels_reused,
            "watch_traversals": self.watch_traversals,
            "blocker_hits": self.blocker_hits,
            "literal_pool_bytes": self.literal_pool_bytes,
            "arena_compactions": self.arena_compactions,
        }


class Solver:
    """Incremental CDCL SAT solver over DIMACS integer literals."""

    def __init__(
        self,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        restart_base: int = 100,
        max_learnt_factor: float = 1.0 / 3.0,
        learnt_growth: float = 1.1,
    ):
        if not 0.0 < var_decay <= 1.0:
            raise SolverError(f"var_decay must be in (0, 1], got {var_decay}")
        if not 0.0 < clause_decay <= 1.0:
            raise SolverError(f"clause_decay must be in (0, 1], got {clause_decay}")
        self._var_decay = var_decay
        self._clause_decay = clause_decay
        self._restart_base = restart_base
        self._max_learnt_factor = max_learnt_factor
        self._learnt_growth = learnt_growth

        self._num_vars = 0
        self._assigns: List[int] = [_UNDEF]          # index 0 unused
        self._level: List[int] = [0]
        self._reason: List[Optional[SolverClause]] = [None]
        self._polarity: List[bool] = [False]
        self._branchable: List[bool] = [True]
        self._activity: List[float] = [0.0]
        self._seen: List[int] = [0]
        self._watches: List[List[list]] = [[], []]  # entries: [clause, blocker]

        self._clauses: List[SolverClause] = []
        self._learnts: List[SolverClause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._order = VarOrderHeap(self._activity)
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._max_learnts = 1000.0

        self._ok = True
        self._model: Optional[List[int]] = None
        self._conflict_core: Optional[List[int]] = None
        self._assumptions: List[int] = []
        self._rng = None

        # Activation-literal machinery: each *active* activation variable
        # guards a group of removable clauses (every clause of the group
        # contains ``-act``); releasing the group detaches its clauses,
        # purges the learnt clauses that depend on them, and recycles the
        # variable for the next group.
        self._act_groups: Dict[int, List[SolverClause]] = {}
        self._act_learnts: Dict[int, List[SolverClause]] = {}
        self._act_free: List[int] = []
        self._act_retired: Set[int] = set()
        self._freed_clauses = 0

        self.stats = SolverStats()

    # ------------------------------------------------------------------
    # Variable and clause creation
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of live problem (non-learnt) clauses.

        Removed clauses are compacted out of the store lazily; the count
        excludes the deleted-but-uncompacted ones.
        """
        return len(self._clauses) - self._freed_clauses

    @property
    def num_learnts(self) -> int:
        """Number of learnt clauses currently kept."""
        return len(self._learnts)

    def new_var(self) -> int:
        """Create a fresh variable and return its index."""
        self._num_vars += 1
        var = self._num_vars
        self._assigns.append(_UNDEF)
        self._level.append(0)
        self._reason.append(None)
        self._polarity.append(False)
        self._branchable.append(True)
        self._activity.append(0.0)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        self._order.insert(var)
        return var

    def ensure_var(self, var: int) -> None:
        """Make sure variable ``var`` (and all below it) exists."""
        if var <= 0:
            raise SolverError(f"variable index must be positive, got {var}")
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a problem clause.

        Returns False if the solver becomes (or already was) trivially
        unsatisfiable at decision level 0, True otherwise.
        """
        ok, _ = self._add_clause_internal(literals)
        return ok

    def _add_clause_internal(
        self, literals: Iterable[int]
    ) -> Tuple[bool, Optional[SolverClause]]:
        """Add a problem clause and return (ok, stored clause handle).

        The handle is None when the clause was simplified away (tautology,
        already satisfied, or reduced to a unit enqueued at level 0).
        """
        if self._trail_lim:
            # Mutating the clause database invalidates the reusable
            # assumption trail kept between solve calls; flush it.
            self._cancel_until(0)
        if not self._ok:
            return False, None

        lits = sorted({int(l) for l in literals}, key=abs)
        if any(l == 0 for l in lits):
            raise SolverError("0 is not a valid literal")
        for lit in lits:
            self.ensure_var(abs(lit))

        # Simplify: drop tautologies and literals already false at level 0.
        simplified: List[int] = []
        lit_set = set(lits)
        for lit in lits:
            if -lit in lit_set:
                return True, None  # tautology, trivially satisfied
            value = self._lit_value(lit)
            if value == _TRUE:
                return True, None  # already satisfied at level 0
            if value == _FALSE:
                continue
            simplified.append(lit)

        if not simplified:
            self._ok = False
            return False, None
        if len(simplified) == 1:
            self._unchecked_enqueue(simplified[0], None)
            self._ok = self._propagate() is None
            return self._ok, None

        clause = SolverClause(simplified, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        self.stats.literal_pool_bytes += 8 * (len(simplified) + 2)
        return True, clause

    def add_cube_as_units(self, cube: Cube) -> bool:
        """Add each literal of a cube as a unit clause."""
        for lit in cube:
            if not self.add_clause([lit]):
                return False
        return True

    # ------------------------------------------------------------------
    # Removable clauses guarded by activation literals
    # ------------------------------------------------------------------
    def new_activation(self) -> int:
        """Allocate an activation variable guarding a group of clauses.

        Clauses added with :meth:`add_guarded` are only active while the
        returned variable is assumed true; :meth:`release` removes the
        whole group and recycles the variable.  Recycling is sound because
        (a) activation variables only ever occur negatively in clauses, so
        every learnt clause that depends on a guarded clause contains the
        negated activation literal (conflict-clause minimisation is
        act-aware, see :meth:`_literal_redundant`), and (b) those learnts
        are purged on release.
        """
        if self._act_free:
            act = self._act_free.pop()
            self.stats.activation_vars_recycled += 1
        else:
            act = self.new_var()
            self.stats.activation_vars_allocated += 1
            # Activation variables keep a fixed false default phase: a
            # VSIDS decision on one then *deactivates* its clause group
            # (nearly free) instead of replaying a dormant frame's lemmas.
            self._branchable[act] = False
        if self._assigns[act] != _UNDEF and self._trail_lim:
            # A recycled variable may carry a stale search decision from
            # the reusable trail; flush before handing it out again.
            self._cancel_until(0)
        self._act_groups[act] = []
        self._act_learnts[act] = []
        return act

    def add_guarded(
        self, act: int, literals: Iterable[int]
    ) -> Tuple[bool, Optional[SolverClause]]:
        """Add ``(-act OR literals)`` to the group guarded by ``act``.

        Returns ``(ok, handle)``; the handle identifies the stored clause
        for a later :meth:`remove_guarded` (None when the clause was
        simplified away).
        """
        group = self._act_groups.get(act)
        if group is None:
            raise SolverError(f"{act} is not an active activation variable")
        if self._trail_lim:
            # Try to attach without flushing the reusable trail: exact as
            # long as the clause has two non-false literals to watch.
            attached, clause = self._attach_live([-act] + [int(l) for l in literals])
            if attached:
                if clause is not None:
                    group.append(clause)
                self.stats.guarded_clauses_added += 1
                return True, clause
        ok, clause = self._add_clause_internal([-act] + [int(l) for l in literals])
        if clause is not None:
            group.append(clause)
        self.stats.guarded_clauses_added += 1
        return ok, clause

    def _attach_live(
        self, literals: Iterable[int]
    ) -> Tuple[bool, Optional[SolverClause]]:
        """Attach a clause mid-search without cancelling the trail.

        Only level-0 assignments are used for simplification; the clause
        is stored watching two literals that are currently non-false, so
        every watch invariant holds on the live trail.  Returns
        ``(False, None)`` when the clause is unit or conflicting under
        the current assignment — the caller must then fall back to the
        flushing path.
        """
        lits = sorted({int(l) for l in literals}, key=abs)
        if any(l == 0 for l in lits):
            raise SolverError("0 is not a valid literal")
        for lit in lits:
            self.ensure_var(abs(lit))
        lit_set = set(lits)
        simplified: List[int] = []
        for lit in lits:
            if -lit in lit_set:
                return True, None  # tautology
            var = abs(lit)
            if self._assigns[var] != _UNDEF and self._level[var] == 0:
                value = self._assigns[var] if lit > 0 else -self._assigns[var]
                if value == _TRUE:
                    return True, None  # satisfied at level 0
                continue  # false at level 0: drop
            simplified.append(lit)
        if len(simplified) < 2:
            return False, None
        non_false = [lit for lit in simplified if self._lit_value(lit) != _FALSE]
        if len(non_false) < 2:
            return False, None
        watch_a, watch_b = non_false[0], non_false[1]
        rest = [l for l in simplified if l != watch_a and l != watch_b]
        clause = SolverClause([watch_a, watch_b] + rest, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        self.stats.literal_pool_bytes += 8 * (len(simplified) + 2)
        return True, clause

    def remove_guarded(self, act: int, clause: SolverClause) -> None:
        """Remove one clause from an activation group.

        The caller must guarantee that the clause is *implied* by the
        remaining database (e.g. it is subsumed by another clause, or
        follows from it through frame-implication chains): learnt clauses
        derived from it stay attached and must remain sound.  Removal is
        a pure lazy-deletion mark, so it never flushes the reusable
        trail — propagation drops the stale watchers on its next visit
        (and the implied clause remains a sound reason meanwhile).
        """
        group = self._act_groups.get(act)
        if group is None:
            raise SolverError(f"{act} is not an active activation variable")
        if clause.deleted:
            return
        try:
            group.remove(clause)
        except ValueError:
            raise SolverError("clause does not belong to the given activation group")
        self._free_clause(clause)
        self.stats.guarded_clauses_freed += 1

    def _free_clause(self, clause: SolverClause) -> None:
        """Lazily delete a problem clause (watchers are dropped by propagate)."""
        clause.deleted = True
        self._freed_clauses += 1
        self.stats.literal_pool_bytes -= 8 * (len(clause.lits) + 2)
        if self._freed_clauses >= 64 and self._freed_clauses * 2 >= len(self._clauses):
            self._clauses = [c for c in self._clauses if not c.deleted]
            self._freed_clauses = 0
            self.stats.arena_compactions += 1

    def release(self, act: int) -> None:
        """Remove the clause group of ``act`` and recycle the variable.

        Deletes the guarded clauses, purges every learnt clause whose
        derivation could depend on them (all mention ``-act``), and either
        returns the variable to the free list or — when unit propagation
        fixed it at level 0 — retires it permanently.
        """
        if self._trail_lim:
            # Clauses above level 0 may act as reasons on the reusable
            # trail; flush it before deleting anything.
            self._cancel_until(0)
        group = self._act_groups.pop(act, None)
        if group is None:
            raise SolverError(f"{act} is not an active activation variable")
        for clause in group:
            if not clause.deleted:
                self._free_clause(clause)
                self.stats.guarded_clauses_freed += 1

        dependent = self._act_learnts.pop(act)
        purged = 0
        for clause in dependent:
            if clause.deleted:
                continue
            clause.deleted = True
            self.stats.literal_pool_bytes -= 8 * (len(clause.lits) + 2)
            purged += 1
        if purged:
            self._learnts = [c for c in self._learnts if not c.deleted]
            self.stats.learnts_purged += purged

        if self._assigns[act] != _UNDEF:
            # Propagation fixed the variable at level 0 (always to false);
            # the assignment outlives the group, so never reuse the var.
            self._act_retired.add(act)
            self.stats.activation_vars_retired += 1
        else:
            self._act_free.append(act)

    def is_activation(self, var: int) -> bool:
        """True if ``var`` currently guards a removable clause group."""
        return var in self._act_groups

    @property
    def num_active_activations(self) -> int:
        """Number of live activation groups."""
        return len(self._act_groups)

    @property
    def num_retired_activations(self) -> int:
        """Activation variables permanently lost to level-0 assignments."""
        return len(self._act_retired)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> bool:
        """Solve under assumptions; returns True (SAT) or False (UNSAT).

        Raises :class:`ResourceBudgetExceeded` if ``conflict_budget``
        conflicts were reached before a verdict.
        """
        result = self.solve_limited(assumptions, conflict_budget)
        if result is None:
            raise ResourceBudgetExceeded(
                f"conflict budget of {conflict_budget} exhausted"
            )
        return result

    def solve_limited(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> Optional[bool]:
        """Like :meth:`solve`, but returns None when the budget is exhausted."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_limited(assumptions, conflict_budget)
        with tracer.span(
            "sat.solve", cat="sat", backend="default", assumptions=len(assumptions)
        ) as span:
            conflicts_before = self.stats.conflicts
            propagations_before = self.stats.propagations
            result = self._solve_limited(assumptions, conflict_budget)
            span.add(
                result={True: "sat", False: "unsat"}.get(result, "budget"),
                conflicts=self.stats.conflicts - conflicts_before,
                propagations=self.stats.propagations - propagations_before,
            )
        tracer.sample("sat.conflicts", self.stats.conflicts, cat="sat")
        tracer.sample("sat.propagations", self.stats.propagations, cat="sat")
        return result

    def _solve_limited(
        self,
        assumptions: Sequence[int],
        conflict_budget: Optional[int],
    ) -> Optional[bool]:
        self.stats.solve_calls += 1
        self._model = None
        self._conflict_core = None
        if not self._ok:
            self._cancel_until(0)
            self._conflict_core = []
            return False

        new_assumptions = [int(l) for l in assumptions]
        for lit in new_assumptions:
            if lit == 0:
                raise SolverError("0 is not a valid assumption literal")
            self.ensure_var(abs(lit))

        # Assumption-trail reuse: the trail is kept alive between solve
        # calls (any clause addition or release flushes it), so when the
        # new assumption list shares a prefix with the previous one, the
        # decision levels of that prefix — and all the unit propagation
        # they triggered — are reused instead of being replayed.  Kept
        # levels only ever contain assumption decisions and their
        # propagation consequences: search decisions live above
        # ``len(previous assumptions)`` and the reused prefix is capped
        # below that, so everything kept is implied by the (new)
        # assumption prefix together with the clause database.
        limit = min(
            len(new_assumptions), len(self._assumptions), self._decision_level()
        )
        keep = 0
        while keep < limit and new_assumptions[keep] == self._assumptions[keep]:
            keep += 1
        self._cancel_until(keep)
        self.stats.assumption_levels_reused += keep
        self._assumptions = new_assumptions

        self._max_learnts = max(
            1000.0,
            (len(self._clauses) - self._freed_clauses) * self._max_learnt_factor,
        )
        budget_left = conflict_budget
        restart_round = 0
        status: Optional[bool] = None
        while status is None:
            restart_limit = self._restart_base * luby(restart_round)
            if budget_left is not None:
                if budget_left <= 0:
                    break
                restart_limit = min(restart_limit, budget_left)
            before = self.stats.conflicts
            status = self._search(restart_limit)
            used = self.stats.conflicts - before
            if budget_left is not None:
                budget_left -= used
            restart_round += 1
            self._max_learnts *= self._learnt_growth

        if status is None:
            self._cancel_until(0)
        return status

    def get_model(self) -> Dict[int, bool]:
        """Return the last model as a ``var -> bool`` mapping."""
        if self._model is None:
            raise SolverError("no model available (last call was not SAT)")
        return {
            var: value == _TRUE
            for var, value in enumerate(self._model)
            if var > 0 and value != _UNDEF
        }

    def model_value(self, lit: int) -> Optional[bool]:
        """Value of a literal in the last model (None if unassigned)."""
        if self._model is None:
            raise SolverError("no model available (last call was not SAT)")
        var = abs(lit)
        if var >= len(self._model) or self._model[var] == _UNDEF:
            return None
        return (self._model[var] == _TRUE) == (lit > 0)

    def model_cube(self, variables: Iterable[int]) -> Cube:
        """Project the last model onto a cube over the given variables."""
        literals = []
        for var in variables:
            value = self.model_value(var)
            if value is None:
                # Unconstrained variable: pick the saved phase arbitrarily.
                value = False
            literals.append(var if value else -var)
        return Cube(literals)

    def unsat_core(self) -> List[int]:
        """Subset of the assumptions responsible for the last UNSAT answer."""
        if self._conflict_core is None:
            raise SolverError("no unsat core available (last call was not UNSAT)")
        return list(self._conflict_core)

    def is_consistent(self) -> bool:
        """False once the clause set is unsatisfiable at level 0."""
        return self._ok

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _lit_index(lit: int) -> int:
        return (abs(lit) << 1) | (lit < 0)

    def _lit_value(self, lit: int) -> int:
        value = self._assigns[abs(lit)]
        if value == _UNDEF:
            return _UNDEF
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _attach(self, clause: SolverClause) -> None:
        # Watcher entries are [clause, blocker]: the blocker caches the
        # other watched literal so propagation can skip satisfied clauses
        # with a single value check (MiniSat 2.2's blocking literal).
        lits = clause.lits
        self._watches[self._lit_index(lits[0])].append([clause, lits[1]])
        self._watches[self._lit_index(lits[1])].append([clause, lits[0]])

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))
        depth = len(self._trail_lim)
        if depth > self.stats.max_decision_level:
            self.stats.max_decision_level = depth

    def _unchecked_enqueue(self, lit: int, reason: Optional[SolverClause]) -> None:
        var = abs(lit)
        self._assigns[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        branchable = self._branchable
        assigns = self._assigns
        reason = self._reason
        order_insert = self._order.insert
        for i in range(len(self._trail) - 1, boundary - 1, -1):
            lit = self._trail[i]
            var = lit if lit > 0 else -lit
            if branchable[var]:
                # Activation variables keep their fixed false phase and
                # never (re-)enter the decision heap: deciding one could
                # only deactivate its clause group, and excluding them
                # keeps the heap from churning on assumption variables.
                self._polarity[var] = lit > 0
                order_insert(var)
            assigns[var] = _UNDEF
            reason[var] = None
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _propagate(self) -> Optional[SolverClause]:
        """Unit propagation; returns a conflicting clause or None.

        The hot loop avoids method-call overhead by working on local
        aliases and computing literal values inline.  Replacement watches
        are searched from the *end* of the clause: activation literals
        sort last, so a dormant guarded clause parks its watch on its
        activation literal after a single visit instead of hopping
        between problem literals on every query.
        """
        trail = self._trail
        watches = self._watches
        assigns = self._assigns
        stats = self.stats
        traversed = 0
        blocker_hits = 0
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            stats.propagations += 1
            neg_p = -p
            if neg_p > 0:
                watch_index = neg_p << 1
            else:
                watch_index = (-neg_p << 1) | 1
            watch_list = watches[watch_index]
            conflict: Optional[SolverClause] = None
            write = 0
            read = 0
            size = len(watch_list)
            traversed += size
            while read < size:
                entry = watch_list[read]
                read += 1
                if conflict is not None:
                    watch_list[write] = entry
                    write += 1
                    continue
                blocker = entry[1]
                if (assigns[blocker] if blocker > 0 else -assigns[-blocker]) == _TRUE:
                    watch_list[write] = entry
                    write += 1
                    blocker_hits += 1
                    continue
                clause = entry[0]
                if clause.deleted:
                    # Lazily removed clause: drop the stale watcher.
                    continue
                lits = clause.lits
                if lits[0] == neg_p:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                entry[1] = first
                value = assigns[first] if first > 0 else -assigns[-first]
                if value == _TRUE:
                    watch_list[write] = entry
                    write += 1
                    continue
                moved = False
                for k in range(len(lits) - 1, 1, -1):
                    lit = lits[k]
                    if (assigns[lit] if lit > 0 else -assigns[-lit]) != _FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        if lit > 0:
                            watches[lit << 1].append([clause, first])
                        else:
                            watches[(-lit << 1) | 1].append([clause, first])
                        moved = True
                        break
                if moved:
                    continue
                watch_list[write] = entry
                write += 1
                if value == _FALSE:
                    conflict = clause
                else:
                    self._unchecked_enqueue(first, clause)
            if write != size:
                del watch_list[write:]
            if conflict is not None:
                self._qhead = len(trail)
                stats.watch_traversals += traversed
                stats.blocker_hits += blocker_hits
                return conflict
        stats.watch_traversals += traversed
        stats.blocker_hits += blocker_hits
        return None

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        if self._branchable[var]:
            self._order.update(var)

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, clause: SolverClause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._clause_decay

    def _analyze(self, conflict: SolverClause) -> Tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backtrack level)."""
        learnt: List[int] = [0]  # position 0 reserved for the asserting literal
        seen = self._seen
        path_count = 0
        p: Optional[int] = None
        index = len(self._trail) - 1
        current_level = self._decision_level()
        to_clear: List[int] = []

        clause: Optional[SolverClause] = conflict
        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            start = 0 if p is None else 1
            for lit in clause.lits[start:]:
                var = abs(lit)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(lit)
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            index -= 1
            clause = self._reason[abs(p)]
            seen[abs(p)] = 0
            path_count -= 1
            if path_count == 0:
                break
        learnt[0] = -p

        # Clause minimisation: drop literals implied by the rest of the clause.
        minimized = [learnt[0]]
        for lit in learnt[1:]:
            if not self._literal_redundant(lit):
                minimized.append(lit)
        learnt = minimized

        for var in to_clear:
            seen[var] = 0

        if len(learnt) == 1:
            backtrack_level = 0
        else:
            max_index = 1
            for i in range(2, len(learnt)):
                if self._level[abs(learnt[i])] > self._level[abs(learnt[max_index])]:
                    max_index = i
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backtrack_level = self._level[abs(learnt[1])]
        return learnt, backtrack_level

    def _literal_redundant(self, lit: int) -> bool:
        """Local minimisation: is ``lit`` implied by the other learnt literals?"""
        if abs(lit) in self._act_groups:
            # Never drop an activation literal: it records that the learnt
            # clause depends on a removable clause group, which is what
            # makes releasing and recycling the group sound.
            return False
        reason = self._reason[abs(lit)]
        if reason is None:
            return False
        for other in reason.lits:
            if abs(other) == abs(lit):
                continue
            var = abs(other)
            if not self._seen[var] and self._level[var] > 0:
                return False
        return True

    def _analyze_final(self, failed_lit: int) -> List[int]:
        """Express the falsification of ``failed_lit`` in terms of assumptions.

        Returns the subset of the current assumptions responsible.
        """
        responsible = {-failed_lit}
        if self._decision_level() == 0:
            return self._core_from_negations(responsible)
        seen = self._seen
        marked: List[int] = [abs(failed_lit)]
        seen[abs(failed_lit)] = 1
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[i]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                responsible.add(-lit)
            else:
                for other in reason.lits[1:]:
                    other_var = abs(other)
                    if self._level[other_var] > 0 and not seen[other_var]:
                        seen[other_var] = 1
                        marked.append(other_var)
            seen[var] = 0
        for var in marked:
            seen[var] = 0
        return self._core_from_negations(responsible)

    def _core_from_negations(self, negations: Iterable[int]) -> List[int]:
        assumption_set = set(self._assumptions)
        return [-lit for lit in negations if -lit in assumption_set]

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._unchecked_enqueue(learnt[0], None)
            return
        clause = SolverClause(list(learnt), learnt=True)
        self._learnts.append(clause)
        self._attach(clause)
        self._bump_clause(clause)
        self.stats.learnt_clauses += 1
        self.stats.literal_pool_bytes += 8 * (len(learnt) + 2)
        if self._act_groups:
            # Index the learnt under every activation group it depends on
            # so that releasing a group can purge it in O(dependents).
            for lit in learnt:
                dependents = self._act_learnts.get(abs(lit))
                if dependents is not None:
                    dependents.append(clause)
        self._unchecked_enqueue(learnt[0], clause)

    def _reduce_db(self) -> None:
        """Remove roughly half of the least active, non-locked learnt clauses."""
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "sat.reduce_db", cat="sat", backend="default", learnts=len(self._learnts)
            ):
                self._reduce_db_inner()
        else:
            self._reduce_db_inner()

    def _reduce_db_inner(self) -> None:
        self._learnts.sort(key=lambda c: (len(c.lits) <= 2, c.activity))
        keep: List[SolverClause] = []
        limit = len(self._learnts) // 2
        for i, clause in enumerate(self._learnts):
            locked = self._reason[abs(clause.lits[0])] is clause
            if i < limit and len(clause.lits) > 2 and not locked:
                clause.deleted = True
                self.stats.removed_clauses += 1
                self.stats.literal_pool_bytes -= 8 * (len(clause.lits) + 2)
            else:
                keep.append(clause)
        self._learnts = keep
        # Keep the per-activation learnt indexes from accumulating stale
        # entries for deleted clauses.
        for act, dependents in self._act_learnts.items():
            if len(dependents) > 32:
                self._act_learnts[act] = [c for c in dependents if not c.deleted]

    def set_seed(self, seed: int) -> None:
        """Enable seeded random branching (MiniSat-style diversification).

        A small fraction of decisions picks a uniformly random unassigned
        variable instead of the top-activity one, steering otherwise
        identical solvers into different parts of the search space —
        the per-member jitter of the cooperative portfolio.  Seed 0 (the
        default) disables the randomization entirely, keeping the kernel
        byte-for-byte deterministic against its unseeded behaviour; any
        other seed is itself fully deterministic.
        """
        self._rng = random.Random(seed) if seed else None

    def _pick_branch_literal(self) -> Optional[int]:
        rng = self._rng
        if rng is not None and self._num_vars and rng.random() < 0.02:
            var = rng.randint(1, self._num_vars)
            if self._assigns[var] == _UNDEF and self._branchable[var]:
                # The variable stays in the order heap; assigned entries
                # are skipped on pop and insert() is idempotent.
                return var if self._polarity[var] else -var
        while not self._order.is_empty():
            var = self._order.pop_max()
            if self._assigns[var] == _UNDEF and self._branchable[var]:
                return var if self._polarity[var] else -var
        return None

    def _search(self, conflict_limit: int) -> Optional[bool]:
        """Run CDCL search until SAT, UNSAT or ``conflict_limit`` conflicts."""
        local_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                local_conflicts += 1
                if self._decision_level() == 0:
                    self._ok = False
                    self._conflict_core = []
                    return False
                learnt, backtrack_level = self._analyze(conflict)
                self._cancel_until(backtrack_level)
                self._record_learnt(learnt)
                self._decay_var_activity()
                self._decay_clause_activity()
                continue

            if local_conflicts >= conflict_limit:
                self.stats.restarts += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.instant(
                        "sat.restart",
                        cat="sat",
                        backend="default",
                        restarts=self.stats.restarts,
                        conflicts=self.stats.conflicts,
                    )
                self._cancel_until(0)
                return None

            if len(self._learnts) - len(self._trail) >= self._max_learnts:
                self._reduce_db()

            next_lit: Optional[int] = None
            while self._decision_level() < len(self._assumptions):
                assumption = self._assumptions[self._decision_level()]
                value = self._lit_value(assumption)
                if value == _TRUE:
                    self._new_decision_level()
                elif value == _FALSE:
                    self._conflict_core = self._analyze_final(assumption)
                    return False
                else:
                    next_lit = assumption
                    break

            if next_lit is None:
                next_lit = self._pick_branch_literal()
                if next_lit is None:
                    self._save_model()
                    return True
                self.stats.decisions += 1

            self._new_decision_level()
            self._unchecked_enqueue(next_lit, None)

    def _save_model(self) -> None:
        self._model = list(self._assigns)
