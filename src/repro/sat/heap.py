"""Indexed max-heap over variable activities (the VSIDS order heap).

The solver needs three operations to be fast: pop the unassigned variable
with the highest activity, re-insert a variable when it is unassigned on
backtracking, and sift a variable up when its activity is bumped.  A binary
heap with an index map (variable -> heap position) provides all three in
O(log n).
"""

from __future__ import annotations

from typing import Callable, Dict, List


class VarOrderHeap:
    """Max-heap of variables keyed by an external activity function.

    ``activity`` may be a callable or an indexable sequence; passing the
    activity list directly lets the hot sift loops use the C-level
    ``__getitem__`` instead of a Python lambda frame per comparison.
    """

    def __init__(self, activity: Callable[[int], float]):
        self._activity = activity if callable(activity) else activity.__getitem__
        self._heap: List[int] = []
        self._index: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, var: int) -> bool:
        return var in self._index

    def is_empty(self) -> bool:
        """True if no variable is queued."""
        return not self._heap

    def insert(self, var: int) -> None:
        """Insert a variable (no-op if already present)."""
        if var in self._index:
            return
        self._heap.append(var)
        self._index[var] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop_max(self) -> int:
        """Remove and return the variable with maximal activity."""
        if not self._heap:
            raise IndexError("pop from an empty heap")
        top = self._heap[0]
        last = self._heap.pop()
        del self._index[top]
        if self._heap:
            self._heap[0] = last
            self._index[last] = 0
            self._sift_down(0)
        return top

    def update(self, var: int) -> None:
        """Restore heap order after ``var``'s activity increased."""
        pos = self._index.get(var)
        if pos is not None:
            self._sift_up(pos)

    def rebuild(self, variables: List[int]) -> None:
        """Rebuild the heap from scratch over the given variables."""
        self._heap = list(variables)
        self._index = {v: i for i, v in enumerate(self._heap)}
        for pos in range(len(self._heap) // 2 - 1, -1, -1):
            self._sift_down(pos)

    # -- internal sifting -----------------------------------------------------
    def _sift_up(self, pos: int) -> None:
        heap = self._heap
        act = self._activity
        var = heap[pos]
        key = act(var)
        while pos > 0:
            parent = (pos - 1) >> 1
            if act(heap[parent]) >= key:
                break
            heap[pos] = heap[parent]
            self._index[heap[pos]] = pos
            pos = parent
        heap[pos] = var
        self._index[var] = pos

    def _sift_down(self, pos: int) -> None:
        heap = self._heap
        act = self._activity
        size = len(heap)
        var = heap[pos]
        key = act(var)
        while True:
            left = 2 * pos + 1
            if left >= size:
                break
            right = left + 1
            child = left
            if right < size and act(heap[right]) > act(heap[left]):
                child = right
            if act(heap[child]) <= key:
                break
            heap[pos] = heap[child]
            self._index[heap[pos]] = pos
            pos = child
        heap[pos] = var
        self._index[var] = pos
