"""Flat-arena CDCL solver: the cache-conscious ``"arena"`` SAT backend.

:class:`ArenaSolver` implements the same external interface as
:class:`repro.sat.solver.Solver` — DIMACS-literal clauses, assumptions,
models, assumption cores, and the full activation-literal layer
(``new_activation`` / ``add_guarded`` / ``remove_guarded`` / ``release``
with learnt purging and assumption-trail reuse) — but stores the clause
database in flat integer arenas instead of per-clause Python objects:

* **Literal pool** — one flat integer sequence holding every clause
  back to back.  A clause is addressed by an integer *clause ref* (its
  offset in the pool) and occupies ``size + 2`` words: a packed header
  word ``(size << 3) | (learnt << 1) | deleted``, an activity-slot
  index (``-1`` for problem clauses), then the literals.  The pool is a
  plain list by default — CPython indexes lists measurably faster than
  ``array('i')`` (which re-boxes every read) — flip ``_TYPED_POOL`` to
  trade ~20% propagation speed for a 4-byte-per-word C-int arena.
* **Encoded literals** — literal ``l`` is stored as
  ``(|l| << 1) | (l < 0)``, so the negation is ``enc ^ 1`` and a
  literal's truth value is a single indexed load from ``_values``
  (``1`` true, ``-1`` false, ``0`` unassigned) with no sign branch.
* **Watch lists** — two parallel flat integer lists per literal:
  ``_watch_crefs[enc]`` (clause refs) and ``_watch_blockers[enc]``
  (blocking literals), replacing the list-of-``[clause, blocker]``
  pairs of the object solver.
* **Assignment state** — values, levels, reasons (clause refs, ``-1``
  for decisions), saved phases and seen marks live in preallocated
  flat arrays indexed by variable or encoded literal.

Deleted clauses only flip the header bit; their watchers are dropped
lazily by propagation, and the pool is compacted (with every clause ref
remapped — watch lists, reasons, learnt lists, activation indexes and
the :class:`ArenaClauseRef` handles held by callers) once enough dead
words accumulate, but only at decision level 0 so no trail state can
point into freed storage.

The object-based ``Solver`` stays registered as the ``default``
reference oracle; ``benchmarks/backend_compare.py`` runs both backends
over the canonical suite and asserts zero verdict drift.
"""

from __future__ import annotations

import random
from array import array
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic.cube import Cube
from repro.obs.tracer import get_tracer
from repro.sat.exceptions import ResourceBudgetExceeded, SolverError
from repro.sat.luby import luby
from repro.sat.solver import SolverStats

# Header layout: bit 0 = deleted, bit 1 = learnt, bits 3.. = size.
_DELETED = 1
_LEARNT = 2
_SIZE_SHIFT = 3

_NO_REASON = -1


# When True the pool is an ``array('i')`` of C ints (4 bytes/word, reads
# re-box); when False a flat Python list (8-byte slots, faster indexing).
_TYPED_POOL = False


def _new_pool():
    """A fresh literal pool (flat signed-int arena)."""
    return array("i") if _TYPED_POOL else []


class ArenaClauseRef:
    """Stable handle for a guarded clause stored in the arena.

    The underlying clause ref changes when the pool is compacted; the
    solver remaps every live handle in place, so callers can hold on to
    the object across compactions exactly like a ``SolverClause``.
    """

    __slots__ = ("cref",)

    def __init__(self, cref: int):
        self.cref = cref

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaClauseRef({self.cref})"


def _encode(lit: int) -> int:
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


def _decode(enc: int) -> int:
    return -(enc >> 1) if enc & 1 else (enc >> 1)


class ArenaSolver:
    """Incremental CDCL SAT solver over flat integer arenas."""

    def __init__(
        self,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        restart_base: int = 100,
        max_learnt_factor: float = 1.0 / 3.0,
        learnt_growth: float = 1.1,
    ):
        if not 0.0 < var_decay <= 1.0:
            raise SolverError(f"var_decay must be in (0, 1], got {var_decay}")
        if not 0.0 < clause_decay <= 1.0:
            raise SolverError(f"clause_decay must be in (0, 1], got {clause_decay}")
        self._var_decay = var_decay
        self._clause_decay = clause_decay
        self._restart_base = restart_base
        self._max_learnt_factor = max_learnt_factor
        self._learnt_growth = learnt_growth

        self._num_vars = 0
        # Indexed by encoded literal (slots 0/1 unused).
        self._values: List[int] = [0, 0]
        self._watch_crefs: List[List[int]] = [[], []]
        self._watch_blockers: List[List[int]] = [[], []]
        # Indexed by variable (slot 0 unused).
        self._level: List[int] = [0]
        self._reason: List[int] = [_NO_REASON]
        self._phase = bytearray(1)       # 1 = saved phase is negative
        self._branchable = bytearray(1)
        self._activity: List[float] = [0.0]
        self._seen = bytearray(1)

        # Clause arena.
        self._pool = _new_pool()
        self._pool_item_bytes = getattr(self._pool, "itemsize", 8)
        self._dead_words = 0
        self._num_problem = 0
        self._learnts: List[int] = []
        self._cla_act: List[float] = []
        self._cla_free: List[int] = []

        self._trail: List[int] = []      # encoded literals
        self._trail_lim: List[int] = []
        self._qhead = 0

        # VSIDS decision order as a *lazy* C-implemented binary heap of
        # ``(-activity, var)`` entries: bumping an in-heap variable
        # pushes a fresh entry instead of sifting, and pops skip entries
        # whose key no longer matches ``_heap_key[var]`` (the key of the
        # variable's single live entry, or None when it left the heap).
        self._heap: List[Tuple[float, int]] = []
        self._heap_key: List[Optional[float]] = [None]
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._max_learnts = 1000.0

        self._ok = True
        self._model: Optional[List[int]] = None
        self._conflict_core: Optional[List[int]] = None
        self._assumptions: List[int] = []  # encoded
        self._rng = None

        # Activation-literal machinery (see Solver.new_activation).
        self._act_groups: Dict[int, List[ArenaClauseRef]] = {}
        self._act_learnts: Dict[int, List[int]] = {}
        self._act_free: List[int] = []
        self._act_retired: Set[int] = set()

        self.stats = SolverStats()

    # ------------------------------------------------------------------
    # Variable and clause creation
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of live problem (non-learnt) clauses."""
        return self._num_problem

    @property
    def num_learnts(self) -> int:
        """Number of learnt clauses currently kept."""
        return len(self._learnts)

    def new_var(self) -> int:
        """Create a fresh variable and return its index."""
        self._num_vars += 1
        var = self._num_vars
        self._values.extend((0, 0))
        self._watch_crefs.extend(([], []))
        self._watch_blockers.extend(([], []))
        self._level.append(0)
        self._reason.append(_NO_REASON)
        self._phase.append(1)
        self._branchable.append(1)
        self._activity.append(0.0)
        self._seen.append(0)
        self._heap_key.append(-0.0)
        heappush(self._heap, (-0.0, var))
        return var

    def ensure_var(self, var: int) -> None:
        """Make sure variable ``var`` (and all below it) exists."""
        if var <= 0:
            raise SolverError(f"variable index must be positive, got {var}")
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a problem clause.

        Returns False if the solver becomes (or already was) trivially
        unsatisfiable at decision level 0, True otherwise.
        """
        ok, _ = self._add_clause_internal(literals)
        return ok

    def _add_clause_internal(
        self, literals: Iterable[int]
    ) -> Tuple[bool, Optional[int]]:
        """Add a problem clause and return (ok, clause ref or None).

        The ref is None when the clause was simplified away (tautology,
        already satisfied, or reduced to a unit enqueued at level 0).
        """
        if self._trail_lim:
            # Mutating the clause database invalidates the reusable
            # assumption trail kept between solve calls; flush it.
            self._cancel_until(0)
        self._maybe_compact()
        if not self._ok:
            return False, None

        lits = sorted({int(l) for l in literals}, key=abs)
        if any(l == 0 for l in lits):
            raise SolverError("0 is not a valid literal")
        for lit in lits:
            self.ensure_var(abs(lit))

        # Simplify: drop tautologies and literals already false at level 0.
        values = self._values
        lit_set = set(lits)
        simplified: List[int] = []
        for lit in lits:
            if -lit in lit_set:
                return True, None  # tautology, trivially satisfied
            enc = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            value = values[enc]
            if value > 0:
                return True, None  # already satisfied at level 0
            if value < 0:
                continue
            simplified.append(enc)

        if not simplified:
            self._ok = False
            return False, None
        if len(simplified) == 1:
            self._unchecked_enqueue(simplified[0], _NO_REASON)
            self._ok = self._propagate() < 0
            return self._ok, None

        cref = self._alloc_clause(simplified, learnt=False)
        self._attach(cref)
        return True, cref

    def add_cube_as_units(self, cube: Cube) -> bool:
        """Add each literal of a cube as a unit clause."""
        for lit in cube:
            if not self.add_clause([lit]):
                return False
        return True

    # ------------------------------------------------------------------
    # Removable clauses guarded by activation literals
    # ------------------------------------------------------------------
    def new_activation(self) -> int:
        """Allocate an activation variable guarding a group of clauses.

        Same contract as :meth:`Solver.new_activation`: recycling is
        sound because activation literals are never dropped by clause
        minimisation and dependent learnts are purged on release.
        """
        if self._act_free:
            act = self._act_free.pop()
            self.stats.activation_vars_recycled += 1
        else:
            act = self.new_var()
            self.stats.activation_vars_allocated += 1
            # Fixed false default phase, never branched on (see Solver).
            self._branchable[act] = 0
        if self._values[act << 1] != 0 and self._trail_lim:
            # A recycled variable may carry a stale search decision from
            # the reusable trail; flush before handing it out again.
            self._cancel_until(0)
        self._act_groups[act] = []
        self._act_learnts[act] = []
        return act

    def add_guarded(
        self, act: int, literals: Iterable[int]
    ) -> Tuple[bool, Optional[ArenaClauseRef]]:
        """Add ``(-act OR literals)`` to the group guarded by ``act``.

        Returns ``(ok, handle)``; the handle identifies the stored clause
        for a later :meth:`remove_guarded` (None when the clause was
        simplified away).
        """
        group = self._act_groups.get(act)
        if group is None:
            raise SolverError(f"{act} is not an active activation variable")
        if self._trail_lim:
            # Try to attach without flushing the reusable trail: exact as
            # long as the clause has two non-false literals to watch.
            attached, cref = self._attach_live([-act] + [int(l) for l in literals])
            if attached:
                handle = None
                if cref is not None:
                    handle = ArenaClauseRef(cref)
                    group.append(handle)
                self.stats.guarded_clauses_added += 1
                return True, handle
        ok, cref = self._add_clause_internal([-act] + [int(l) for l in literals])
        handle = None
        if cref is not None:
            handle = ArenaClauseRef(cref)
            group.append(handle)
        self.stats.guarded_clauses_added += 1
        return ok, handle

    def _attach_live(
        self, literals: Iterable[int]
    ) -> Tuple[bool, Optional[int]]:
        """Attach a clause mid-search without cancelling the trail.

        Only level-0 assignments are used for simplification; the clause
        is stored watching two literals that are currently non-false, so
        every watch invariant holds on the live trail.  Returns
        ``(False, None)`` when the clause is unit or conflicting under
        the current assignment — the caller then falls back to the
        flushing path.
        """
        lits = sorted({int(l) for l in literals}, key=abs)
        if any(l == 0 for l in lits):
            raise SolverError("0 is not a valid literal")
        for lit in lits:
            self.ensure_var(abs(lit))
        values = self._values
        level = self._level
        lit_set = set(lits)
        simplified: List[int] = []
        for lit in lits:
            if -lit in lit_set:
                return True, None  # tautology
            enc = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            value = values[enc]
            if value != 0 and level[enc >> 1] == 0:
                if value > 0:
                    return True, None  # satisfied at level 0
                continue  # false at level 0: drop
            simplified.append(enc)
        if len(simplified) < 2:
            return False, None
        non_false = [enc for enc in simplified if values[enc] >= 0]
        if len(non_false) < 2:
            return False, None
        watch_a, watch_b = non_false[0], non_false[1]
        rest = [e for e in simplified if e != watch_a and e != watch_b]
        cref = self._alloc_clause([watch_a, watch_b] + rest, learnt=False)
        self._attach(cref)
        return True, cref

    def remove_guarded(self, act: int, clause: ArenaClauseRef) -> None:
        """Remove one clause from an activation group.

        Same contract as :meth:`Solver.remove_guarded`: the caller must
        guarantee the clause is implied by the remaining database.  The
        removal is a lazy-deletion mark; propagation drops the stale
        watchers on its next visit.
        """
        group = self._act_groups.get(act)
        if group is None:
            raise SolverError(f"{act} is not an active activation variable")
        if not isinstance(clause, ArenaClauseRef):
            raise SolverError("clause does not belong to the given activation group")
        if self._pool[clause.cref] & _DELETED:
            return
        try:
            group.remove(clause)
        except ValueError:
            raise SolverError("clause does not belong to the given activation group")
        self._delete_clause(clause.cref)
        self.stats.guarded_clauses_freed += 1

    def release(self, act: int) -> None:
        """Remove the clause group of ``act`` and recycle the variable.

        Deletes the guarded clauses, purges every learnt clause whose
        derivation could depend on them (all mention ``-act``), and
        either returns the variable to the free list or — when unit
        propagation fixed it at level 0 — retires it permanently.
        """
        if self._trail_lim:
            # Clauses above level 0 may act as reasons on the reusable
            # trail; flush it before deleting anything.
            self._cancel_until(0)
        group = self._act_groups.pop(act, None)
        if group is None:
            raise SolverError(f"{act} is not an active activation variable")
        for handle in group:
            if self._delete_clause(handle.cref):
                self.stats.guarded_clauses_freed += 1

        dependent = self._act_learnts.pop(act)
        purged = 0
        for cref in dependent:
            if self._delete_clause(cref):
                purged += 1
        if purged:
            pool = self._pool
            self._learnts = [c for c in self._learnts if not pool[c] & _DELETED]
            self.stats.learnts_purged += purged

        if self._values[act << 1] != 0:
            # Propagation fixed the variable at level 0 (always to false);
            # the assignment outlives the group, so never reuse the var.
            self._act_retired.add(act)
            self.stats.activation_vars_retired += 1
        else:
            self._act_free.append(act)
        self._maybe_compact()

    def is_activation(self, var: int) -> bool:
        """True if ``var`` currently guards a removable clause group."""
        return var in self._act_groups

    @property
    def num_active_activations(self) -> int:
        """Number of live activation groups."""
        return len(self._act_groups)

    @property
    def num_retired_activations(self) -> int:
        """Activation variables permanently lost to level-0 assignments."""
        return len(self._act_retired)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> bool:
        """Solve under assumptions; returns True (SAT) or False (UNSAT).

        Raises :class:`ResourceBudgetExceeded` if ``conflict_budget``
        conflicts were reached before a verdict.
        """
        result = self.solve_limited(assumptions, conflict_budget)
        if result is None:
            raise ResourceBudgetExceeded(
                f"conflict budget of {conflict_budget} exhausted"
            )
        return result

    def solve_limited(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> Optional[bool]:
        """Like :meth:`solve`, but returns None when the budget is exhausted."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_limited(assumptions, conflict_budget)
        with tracer.span(
            "sat.solve", cat="sat", backend="arena", assumptions=len(assumptions)
        ) as span:
            conflicts_before = self.stats.conflicts
            propagations_before = self.stats.propagations
            result = self._solve_limited(assumptions, conflict_budget)
            span.add(
                result={True: "sat", False: "unsat"}.get(result, "budget"),
                conflicts=self.stats.conflicts - conflicts_before,
                propagations=self.stats.propagations - propagations_before,
            )
        tracer.sample("sat.conflicts", self.stats.conflicts, cat="sat")
        tracer.sample("sat.propagations", self.stats.propagations, cat="sat")
        return result

    def _solve_limited(
        self,
        assumptions: Sequence[int],
        conflict_budget: Optional[int],
    ) -> Optional[bool]:
        self.stats.solve_calls += 1
        self._model = None
        self._conflict_core = None
        if not self._ok:
            self._cancel_until(0)
            self._conflict_core = []
            return False

        new_assumptions: List[int] = []
        for lit in assumptions:
            lit = int(lit)
            if lit == 0:
                raise SolverError("0 is not a valid assumption literal")
            self.ensure_var(abs(lit))
            new_assumptions.append(
                (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            )

        # Assumption-trail reuse (see Solver.solve_limited): keep the
        # decision levels of the shared assumption prefix alive.
        limit = min(
            len(new_assumptions), len(self._assumptions), len(self._trail_lim)
        )
        keep = 0
        while keep < limit and new_assumptions[keep] == self._assumptions[keep]:
            keep += 1
        self._cancel_until(keep)
        self.stats.assumption_levels_reused += keep
        self._assumptions = new_assumptions

        self._max_learnts = max(
            1000.0, self._num_problem * self._max_learnt_factor
        )
        if len(self._heap) > 3 * self._num_vars + 64:
            # Shed stale lazy-heap entries left behind by activity bumps.
            heap_key = self._heap_key
            kept = set()
            heap = [
                (key, var)
                for key, var in self._heap
                if heap_key[var] == key and not (var in kept or kept.add(var))
            ]
            heapify(heap)
            self._heap = heap
        budget_left = conflict_budget
        restart_round = 0
        status: Optional[bool] = None
        while status is None:
            restart_limit = self._restart_base * luby(restart_round)
            if budget_left is not None:
                if budget_left <= 0:
                    break
                restart_limit = min(restart_limit, budget_left)
            before = self.stats.conflicts
            status = self._search(restart_limit)
            used = self.stats.conflicts - before
            if budget_left is not None:
                budget_left -= used
            restart_round += 1
            self._max_learnts *= self._learnt_growth

        if status is None:
            self._cancel_until(0)
        return status

    def get_model(self) -> Dict[int, bool]:
        """Return the last model as a ``var -> bool`` mapping."""
        if self._model is None:
            raise SolverError("no model available (last call was not SAT)")
        model = {}
        values = self._model
        for var in range(1, len(values) >> 1):
            value = values[var << 1]
            if value != 0:
                model[var] = value > 0
        return model

    def model_value(self, lit: int) -> Optional[bool]:
        """Value of a literal in the last model (None if unassigned)."""
        if self._model is None:
            raise SolverError("no model available (last call was not SAT)")
        var = abs(lit)
        if (var << 1) >= len(self._model):
            return None
        value = self._model[var << 1]
        if value == 0:
            return None
        return (value > 0) == (lit > 0)

    def model_cube(self, variables: Iterable[int]) -> Cube:
        """Project the last model onto a cube over the given variables."""
        literals = []
        for var in variables:
            value = self.model_value(var)
            if value is None:
                # Unconstrained variable: pick the saved phase arbitrarily.
                value = False
            literals.append(var if value else -var)
        return Cube(literals)

    def unsat_core(self) -> List[int]:
        """Subset of the assumptions responsible for the last UNSAT answer."""
        if self._conflict_core is None:
            raise SolverError("no unsat core available (last call was not UNSAT)")
        return list(self._conflict_core)

    def is_consistent(self) -> bool:
        """False once the clause set is unsatisfiable at level 0."""
        return self._ok

    # ------------------------------------------------------------------
    # Arena management
    # ------------------------------------------------------------------
    def _alloc_clause(self, enc_lits: List[int], learnt: bool) -> int:
        pool = self._pool
        cref = len(pool)
        if learnt:
            if self._cla_free:
                slot = self._cla_free.pop()
                self._cla_act[slot] = 0.0
            else:
                slot = len(self._cla_act)
                self._cla_act.append(0.0)
            pool.append((len(enc_lits) << _SIZE_SHIFT) | _LEARNT)
        else:
            slot = -1
            pool.append(len(enc_lits) << _SIZE_SHIFT)
            self._num_problem += 1
        pool.append(slot)
        pool.extend(enc_lits)
        self.stats.literal_pool_bytes = len(pool) * self._pool_item_bytes
        return cref

    def _delete_clause(self, cref: int) -> bool:
        """Mark a clause deleted; returns False if it already was."""
        pool = self._pool
        header = pool[cref]
        if header & _DELETED:
            return False
        pool[cref] = header | _DELETED
        self._dead_words += (header >> _SIZE_SHIFT) + 2
        if header & _LEARNT:
            self._cla_free.append(pool[cref + 1])
        else:
            self._num_problem -= 1
        return True

    def _attach(self, cref: int) -> None:
        pool = self._pool
        a = pool[cref + 2]
        b = pool[cref + 3]
        # Binary clauses are watched as ``-(cref + 1)``: propagation can
        # then resolve the whole clause from the blocker value alone,
        # without ever touching the pool.
        tag = -1 - cref if pool[cref] >> _SIZE_SHIFT == 2 else cref
        self._watch_crefs[a].append(tag)
        self._watch_blockers[a].append(b)
        self._watch_crefs[b].append(tag)
        self._watch_blockers[b].append(a)

    def _maybe_compact(self) -> None:
        if self._trail_lim:
            return
        if self._dead_words < 2048 or self._dead_words * 2 < len(self._pool):
            return
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "sat.compact",
                cat="sat",
                backend="arena",
                pool_words=len(self._pool),
                dead_words=self._dead_words,
            ):
                self._compact()
        else:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the pool without dead clauses, remapping every ref.

        Only called at decision level 0: reasons for level-0 assignments
        may be remapped (or dropped when their clause is dead — analysis
        never dereferences level-0 reasons), and watch lists are rebuilt
        from watched positions 0/1, which preserves the watch invariant
        because every kept clause keeps its watched literals.
        """
        old = self._pool
        new = _new_pool()
        remap: Dict[int, int] = {}
        i = 0
        n = len(old)
        while i < n:
            header = old[i]
            nxt = i + 2 + (header >> _SIZE_SHIFT)
            if not header & _DELETED:
                remap[i] = len(new)
                new.extend(old[i:nxt])
            i = nxt
        self._pool = new
        self._dead_words = 0

        watch_crefs = self._watch_crefs
        watch_blockers = self._watch_blockers
        for enc in range(2, len(watch_crefs)):
            wc = watch_crefs[enc]
            if not wc:
                continue
            wb = watch_blockers[enc]
            write = 0
            for read in range(len(wc)):
                tag = wc[read]
                if tag < 0:
                    mapped = remap.get(-1 - tag, -1)
                    if mapped >= 0:
                        wc[write] = -1 - mapped
                        wb[write] = wb[read]
                        write += 1
                else:
                    mapped = remap.get(tag, -1)
                    if mapped >= 0:
                        wc[write] = mapped
                        wb[write] = wb[read]
                        write += 1
            del wc[write:]
            del wb[write:]

        reason = self._reason
        for var in range(1, self._num_vars + 1):
            cref = reason[var]
            if cref >= 0:
                reason[var] = remap.get(cref, _NO_REASON)

        self._learnts = [remap[c] for c in self._learnts if c in remap]
        for group in self._act_groups.values():
            for handle in group:
                handle.cref = remap[handle.cref]
        for act, dependents in self._act_learnts.items():
            self._act_learnts[act] = [remap[c] for c in dependents if c in remap]

        self.stats.arena_compactions += 1
        self.stats.literal_pool_bytes = len(new) * self._pool_item_bytes

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))
        depth = len(self._trail_lim)
        if depth > self.stats.max_decision_level:
            self.stats.max_decision_level = depth

    def _unchecked_enqueue(self, enc_lit: int, reason_cref: int) -> None:
        values = self._values
        values[enc_lit] = 1
        values[enc_lit ^ 1] = -1
        var = enc_lit >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason_cref
        self._trail.append(enc_lit)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        boundary = self._trail_lim[level]
        trail = self._trail
        values = self._values
        reason = self._reason
        phase = self._phase
        branchable = self._branchable
        activity = self._activity
        heap = self._heap
        heap_key = self._heap_key
        push = heappush
        for i in range(len(trail) - 1, boundary - 1, -1):
            enc = trail[i]
            var = enc >> 1
            if branchable[var]:
                # Activation variables keep their fixed false phase and
                # never (re-)enter the decision heap (see Solver).
                phase[var] = enc & 1
                if heap_key[var] is None:
                    key = -activity[var]
                    heap_key[var] = key
                    push(heap, (key, var))
            values[enc] = 0
            values[enc ^ 1] = 0
            reason[var] = _NO_REASON
        del trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    def _propagate(self) -> int:
        """Unit propagation; returns the conflicting clause ref or -1.

        The inner loop reads only flat arrays: a blocker check is one
        ``_values`` load, and the clause body is touched only when the
        blocker fails.  Replacement watches are searched from the *end*
        of the clause so dormant guarded clauses park their watch on
        the activation literal (which sorts last).
        """
        trail = self._trail
        values = self._values
        pool = self._pool
        watch_crefs = self._watch_crefs
        watch_blockers = self._watch_blockers
        level = self._level
        reason = self._reason
        trail_append = trail.append
        stats = self.stats
        current_level = len(self._trail_lim)
        qhead = self._qhead
        props = 0
        traversed = 0
        blocker_hits = 0
        conflict = -1
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            props += 1
            false_lit = p ^ 1
            wc = watch_crefs[false_lit]
            wb = watch_blockers[false_lit]
            size = len(wc)
            traversed += size
            write = 0
            read = 0
            while read < size:
                blocker = wb[read]
                cref = wc[read]
                read += 1
                value = values[blocker]
                if value > 0:
                    wc[write] = cref
                    wb[write] = blocker
                    write += 1
                    blocker_hits += 1
                    continue
                if cref < 0:
                    # Binary clause: the blocker is its only other
                    # literal, so the value check above already did all
                    # the work — no pool access unless we must act.
                    real = -1 - cref
                    if pool[real] & 1:
                        continue  # lazily removed: drop the watcher
                    wc[write] = cref
                    wb[write] = blocker
                    write += 1
                    if value < 0:
                        conflict = real
                        while read < size:
                            wc[write] = wc[read]
                            wb[write] = wb[read]
                            read += 1
                            write += 1
                    else:
                        values[blocker] = 1
                        values[blocker ^ 1] = -1
                        var = blocker >> 1
                        level[var] = current_level
                        reason[var] = real
                        trail_append(blocker)
                    continue
                header = pool[cref]
                if header & 1:
                    # Lazily removed clause: drop the stale watcher.
                    continue
                base = cref + 2
                if pool[base] == false_lit:
                    pool[base] = pool[base + 1]
                    pool[base + 1] = false_lit
                first = pool[base]
                value = values[first]
                if value > 0:
                    wc[write] = cref
                    wb[write] = first
                    write += 1
                    continue
                moved = False
                for k in range(base + (header >> 3) - 1, base + 1, -1):
                    lit = pool[k]
                    if values[lit] >= 0:
                        pool[base + 1] = lit
                        pool[k] = false_lit
                        watch_crefs[lit].append(cref)
                        watch_blockers[lit].append(first)
                        moved = True
                        break
                if moved:
                    continue
                wc[write] = cref
                wb[write] = first
                write += 1
                if value < 0:
                    conflict = cref
                    while read < size:
                        wc[write] = wc[read]
                        wb[write] = wb[read]
                        read += 1
                        write += 1
                else:
                    values[first] = 1
                    values[first ^ 1] = -1
                    var = first >> 1
                    level[var] = current_level
                    reason[var] = cref
                    trail_append(first)
            if write != size:
                del wc[write:]
                del wb[write:]
            if conflict >= 0:
                qhead = len(trail)
                break
        self._qhead = qhead
        stats.propagations += props
        stats.watch_traversals += traversed
        stats.blocker_hits += blocker_hits
        return conflict

    def _bump_var(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            self._rescale_var_activity()
        heap_key = self._heap_key
        if heap_key[var] is not None and self._branchable[var]:
            key = -activity[var]
            heap_key[var] = key
            heappush(self._heap, (key, var))

    def _rescale_var_activity(self) -> None:
        activity = self._activity
        for v in range(1, self._num_vars + 1):
            activity[v] *= 1e-100
        self._var_inc *= 1e-100
        # Every heap key is now stale; rebuild the live entries.
        heap_key = self._heap_key
        heap: List[Tuple[float, int]] = []
        for v in range(1, self._num_vars + 1):
            if heap_key[v] is not None:
                key = -activity[v]
                heap_key[v] = key
                heap.append((key, v))
        heapify(heap)
        self._heap = heap

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, cref: int) -> None:
        slot = self._pool[cref + 1]
        cla_act = self._cla_act
        cla_act[slot] += self._cla_inc
        if cla_act[slot] > 1e20:
            pool = self._pool
            for learnt in self._learnts:
                cla_act[pool[learnt + 1]] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._clause_decay

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backtrack level).

        The learnt clause is in encoded-literal form.
        """
        learnt: List[int] = [0]  # position 0 reserved for the asserting literal
        pool = self._pool
        seen = self._seen
        level = self._level
        reason = self._reason
        trail = self._trail
        path_count = 0
        p = -1
        index = len(trail) - 1
        current_level = len(self._trail_lim)
        to_clear: List[int] = []

        cref = conflict
        while True:
            header = pool[cref]
            if header & _LEARNT:
                self._bump_clause(cref)
            base = cref + 2
            # Reason clauses contain ``p`` itself; skip it by value (the
            # binary fast path does not keep the implied literal at
            # position 0, so positional skipping is not available).
            for pos in range(base, base + (header >> _SIZE_SHIFT)):
                enc = pool[pos]
                if enc == p:
                    continue
                var = enc >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._bump_var(var)
                    if level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(enc)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            cref = reason[p >> 1]
            seen[p >> 1] = 0
            path_count -= 1
            if path_count == 0:
                break
        learnt[0] = p ^ 1

        # Clause minimisation: drop literals implied by the rest of the clause.
        minimized = [learnt[0]]
        for enc in learnt[1:]:
            if not self._literal_redundant(enc):
                minimized.append(enc)
        learnt = minimized

        for var in to_clear:
            seen[var] = 0

        if len(learnt) == 1:
            backtrack_level = 0
        else:
            max_index = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_index] >> 1]:
                    max_index = i
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backtrack_level = level[learnt[1] >> 1]
        return learnt, backtrack_level

    def _literal_redundant(self, enc: int) -> bool:
        """Local minimisation: is ``enc`` implied by the other learnt literals?"""
        var = enc >> 1
        if var in self._act_groups:
            # Never drop an activation literal (see Solver._literal_redundant).
            return False
        cref = self._reason[var]
        if cref < 0:
            return False
        pool = self._pool
        seen = self._seen
        level = self._level
        base = cref + 2
        for pos in range(base, base + (pool[cref] >> _SIZE_SHIFT)):
            other_var = pool[pos] >> 1
            if other_var == var:
                continue
            if not seen[other_var] and level[other_var] > 0:
                return False
        return True

    def _analyze_final(self, failed_enc: int) -> List[int]:
        """Express the falsification of ``failed_enc`` via the assumptions."""
        responsible = {failed_enc ^ 1}
        if not self._trail_lim:
            return self._core_from_negations(responsible)
        pool = self._pool
        seen = self._seen
        level = self._level
        reason = self._reason
        trail = self._trail
        marked: List[int] = [failed_enc >> 1]
        seen[failed_enc >> 1] = 1
        for i in range(len(trail) - 1, self._trail_lim[0] - 1, -1):
            enc = trail[i]
            var = enc >> 1
            if not seen[var]:
                continue
            cref = reason[var]
            if cref < 0:
                responsible.add(enc ^ 1)
            else:
                base = cref + 2
                for pos in range(base, base + (pool[cref] >> _SIZE_SHIFT)):
                    other_var = pool[pos] >> 1
                    if other_var == var:
                        continue
                    if level[other_var] > 0 and not seen[other_var]:
                        seen[other_var] = 1
                        marked.append(other_var)
            seen[var] = 0
        for var in marked:
            seen[var] = 0
        return self._core_from_negations(responsible)

    def _core_from_negations(self, negations: Iterable[int]) -> List[int]:
        assumption_set = set(self._assumptions)
        core = []
        for neg in negations:
            pos = neg ^ 1
            if pos in assumption_set:
                core.append(_decode(pos))
        return core

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._unchecked_enqueue(learnt[0], _NO_REASON)
            return
        cref = self._alloc_clause(list(learnt), learnt=True)
        self._attach(cref)
        self._bump_clause(cref)
        self._learnts.append(cref)
        self.stats.learnt_clauses += 1
        if self._act_groups:
            # Index the learnt under every activation group it depends on
            # so that releasing a group can purge it in O(dependents).
            act_learnts = self._act_learnts
            for enc in learnt:
                dependents = act_learnts.get(enc >> 1)
                if dependents is not None:
                    dependents.append(cref)
        self._unchecked_enqueue(learnt[0], cref)

    def _reduce_db(self) -> None:
        """Remove roughly half of the least active, non-locked learnt clauses."""
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "sat.reduce_db", cat="sat", backend="arena", learnts=len(self._learnts)
            ):
                self._reduce_db_inner()
        else:
            self._reduce_db_inner()

    def _reduce_db_inner(self) -> None:
        pool = self._pool
        cla_act = self._cla_act
        reason = self._reason
        self._learnts.sort(
            key=lambda c: (pool[c] >> _SIZE_SHIFT <= 2, cla_act[pool[c + 1]])
        )
        keep: List[int] = []
        limit = len(self._learnts) // 2
        for i, cref in enumerate(self._learnts):
            size = pool[cref] >> _SIZE_SHIFT
            locked = reason[pool[cref + 2] >> 1] == cref
            if i < limit and size > 2 and not locked:
                self._delete_clause(cref)
                self.stats.removed_clauses += 1
            else:
                keep.append(cref)
        self._learnts = keep
        # Keep the per-activation learnt indexes from accumulating stale
        # entries for deleted clauses.
        for act, dependents in self._act_learnts.items():
            if len(dependents) > 32:
                self._act_learnts[act] = [
                    c for c in dependents if not pool[c] & _DELETED
                ]

    def set_seed(self, seed: int) -> None:
        """Enable seeded random branching (MiniSat-style diversification).

        Mirrors :meth:`repro.sat.solver.Solver.set_seed`: a ~2% fraction
        of decisions picks a uniformly random unassigned variable.  Seed
        0 (the default) disables the randomization, keeping the kernel
        identical to its unseeded behaviour.
        """
        self._rng = random.Random(seed) if seed else None

    def _pick_branch_literal(self) -> int:
        heap = self._heap
        heap_key = self._heap_key
        values = self._values
        branchable = self._branchable
        rng = self._rng
        if rng is not None and self._num_vars and rng.random() < 0.02:
            var = rng.randint(1, self._num_vars)
            if values[var << 1] == 0 and branchable[var]:
                # The variable's heap entry (if any) stays live; pops
                # skip assigned variables and ``_cancel_until`` only
                # reinserts variables whose key slot is empty.
                return (var << 1) | self._phase[var]
        while heap:
            key, var = heappop(heap)
            if heap_key[var] != key:
                continue  # stale entry superseded by a later bump
            heap_key[var] = None
            if values[var << 1] == 0 and branchable[var]:
                return (var << 1) | self._phase[var]
        return -1

    def _search(self, conflict_limit: int) -> Optional[bool]:
        """Run CDCL search until SAT, UNSAT or ``conflict_limit`` conflicts."""
        local_conflicts = 0
        values = self._values
        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.stats.conflicts += 1
                local_conflicts += 1
                if not self._trail_lim:
                    self._ok = False
                    self._conflict_core = []
                    return False
                learnt, backtrack_level = self._analyze(conflict)
                self._cancel_until(backtrack_level)
                self._record_learnt(learnt)
                self._decay_var_activity()
                self._decay_clause_activity()
                continue

            if local_conflicts >= conflict_limit:
                self.stats.restarts += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.instant(
                        "sat.restart",
                        cat="sat",
                        backend="arena",
                        restarts=self.stats.restarts,
                        conflicts=self.stats.conflicts,
                    )
                self._cancel_until(0)
                return None

            if len(self._learnts) - len(self._trail) >= self._max_learnts:
                self._reduce_db()

            next_lit = -1
            assumptions = self._assumptions
            while len(self._trail_lim) < len(assumptions):
                assumption = assumptions[len(self._trail_lim)]
                value = values[assumption]
                if value > 0:
                    self._new_decision_level()
                elif value < 0:
                    self._conflict_core = self._analyze_final(assumption)
                    return False
                else:
                    next_lit = assumption
                    break

            if next_lit < 0:
                next_lit = self._pick_branch_literal()
                if next_lit < 0:
                    self._save_model()
                    return True
                self.stats.decisions += 1

            self._new_decision_level()
            self._unchecked_enqueue(next_lit, _NO_REASON)

    def _save_model(self) -> None:
        self._model = list(self._values)
