"""Exceptions raised by the SAT layer."""

from __future__ import annotations


class SolverError(Exception):
    """Malformed input or misuse of the solver API."""


class ResourceBudgetExceeded(SolverError):
    """Raised when a per-call conflict or propagation budget is exhausted.

    IC3 uses budgets to keep single SAT queries from starving the overall
    time limit; the engine treats the exception as "unknown" and falls back
    to a safe default for the current step.
    """
