"""Internal clause representation used by the CDCL solver.

Clauses are mutable lists of DIMACS literals; positions 0 and 1 hold the
two watched literals.  Learnt clauses additionally carry an activity score
used by the clause-database reduction heuristic.
"""

from __future__ import annotations

from typing import List


class SolverClause:
    """A clause as stored inside the solver (two-watched-literal layout)."""

    __slots__ = ("lits", "learnt", "activity", "deleted")

    def __init__(self, lits: List[int], learnt: bool = False):
        self.lits: List[int] = lits
        self.learnt: bool = learnt
        self.activity: float = 0.0
        self.deleted: bool = False

    def __len__(self) -> int:
        return len(self.lits)

    def __iter__(self):
        return iter(self.lits)

    def __repr__(self) -> str:
        kind = "learnt" if self.learnt else "problem"
        return f"SolverClause({self.lits}, {kind})"
