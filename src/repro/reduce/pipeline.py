"""The reduction pass manager.

A :class:`ReductionPipeline` is an ordered list of named passes (names
may repeat — the default pipeline runs ``coi`` both first and last).
Running it yields a :class:`ReductionResult`: the reduced AIG, the
per-pass :class:`~repro.reduce.base.ReductionInfo` shrinkage records and
a composed :class:`~repro.reduce.recon.ReconstructionMap` for witness
lift-back.  New passes plug in with :func:`register_pass`, mirroring the
engine registry::

    from repro.reduce import register_pass, ReductionPass

    @register_pass("retime")
    class RetimingPass(ReductionPass):
        ...

Engines apply :data:`DEFAULT_PASSES` unless constructed with
``reduce=False`` or an explicit ``passes=[...]`` list; the CLI exposes
the same knobs as ``--no-reduce`` and ``--passes``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type, Union

from repro.aiger.aig import AIG
from repro.core.result import Certificate, CheckOutcome, CounterexampleTrace
from repro.obs.tracer import get_tracer
from repro.reduce.base import PassResult, ReductionError, ReductionInfo, ReductionPass
from repro.reduce.coi import ConeOfInfluencePass
from repro.reduce.latchmerge import EquivalentLatchPass
from repro.reduce.recon import ReconstructionMap
from repro.reduce.strash import StructuralHashPass
from repro.reduce.ternary import TernaryConstantPass

_PASS_REGISTRY: Dict[str, Type[ReductionPass]] = {}

DEFAULT_PASSES = ("coi", "ternary", "merge", "coi")
"""The pipeline engines apply by default.

COI first cuts the model down before the more expensive analyses run;
ternary sweeping and latch merging then substitute constants and
representatives; the final COI collects the logic those substitutions
orphaned.  A separate ``strash`` entry would be a no-op here: every
pass rebuilds through the hashing builder (structural sharing, constant
folding, dead-gate removal included), so the model is fully hashed from
the first COI on.  The pass stays registered for explicit pipelines
over hand-built or freshly parsed circuits.
"""


def register_pass(name: str, pass_class: Optional[Type[ReductionPass]] = None):
    """Register a reduction pass under ``name`` (usable as a decorator)."""

    def _register(cls: Type[ReductionPass]) -> Type[ReductionPass]:
        if name in _PASS_REGISTRY:
            raise ReductionError(f"reduction pass {name!r} is already registered")
        _PASS_REGISTRY[name] = cls
        return cls

    if pass_class is not None:
        return _register(pass_class)
    return _register


def available_passes() -> List[str]:
    """Sorted names of all registered reduction passes."""
    return sorted(_PASS_REGISTRY)


def resolve_pass(name: str) -> ReductionPass:
    """Instantiate a registered pass by name; raises ``KeyError`` if unknown."""
    try:
        return _PASS_REGISTRY[name]()
    except KeyError:
        known = ", ".join(available_passes())
        raise KeyError(f"unknown reduction pass {name!r} (available: {known})") from None


register_pass("coi", ConeOfInfluencePass)
register_pass("strash", StructuralHashPass)
register_pass("ternary", TernaryConstantPass)
register_pass("merge", EquivalentLatchPass)


@dataclass
class ReductionResult:
    """Everything one pipeline run produced."""

    original: AIG
    aig: AIG
    property_index: int
    """Index of the checked property in the *reduced* model's bad list."""

    recon: ReconstructionMap
    infos: List[ReductionInfo] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def reduced(self) -> bool:
        """True if any pass removed anything."""
        return any(info.reduced for info in self.infos)

    # Witness lift-back, delegated to the reconstruction map -----------
    def lift_trace(self, trace: CounterexampleTrace) -> CounterexampleTrace:
        """Lift a reduced-model counterexample back to the original AIG."""
        return self.recon.lift_trace(trace)

    def lift_certificate(self, certificate: Certificate) -> Certificate:
        """Lift a reduced-model invariant back to the original AIG."""
        return self.recon.lift_certificate(certificate)

    def lift_outcome(self, outcome: CheckOutcome) -> CheckOutcome:
        """Lift whatever witness an outcome carries back to the original."""
        return self.recon.lift_outcome(outcome)

    def summary(self) -> Dict[str, object]:
        """JSON-serializable description for manifests and reports."""
        return {
            "passes": [info.pass_name for info in self.infos],
            "original": {
                "inputs": self.original.num_inputs,
                "latches": self.original.num_latches,
                "ands": self.original.num_ands,
            },
            "reduced": {
                "inputs": self.aig.num_inputs,
                "latches": self.aig.num_latches,
                "ands": self.aig.num_ands,
            },
            "per_pass": [info.as_dict() for info in self.infos],
            "elapsed": round(self.elapsed, 6),
        }


class ReductionPipeline:
    """An ordered, composable sequence of reduction passes."""

    def __init__(self, passes: Union[Sequence[str], Sequence[ReductionPass], None] = None):
        names = DEFAULT_PASSES if passes is None else passes
        self.passes: List[ReductionPass] = [
            item if isinstance(item, ReductionPass) else resolve_pass(item)
            for item in names
        ]
        if not self.passes:
            raise ReductionError("a reduction pipeline needs at least one pass")

    @property
    def pass_names(self) -> List[str]:
        """Names of the passes, in application order."""
        return [p.name for p in self.passes]

    def run(self, aig: AIG, property_index: int = 0) -> ReductionResult:
        """Apply every pass in order and compose the reconstruction map."""
        start = time.perf_counter()
        results: List[PassResult] = []
        current = aig
        current_property = property_index
        tracer = get_tracer()
        for reduction_pass in self.passes:
            if tracer.enabled:
                with tracer.span(
                    "reduce." + reduction_pass.name,
                    cat="reduce",
                    latches=current.num_latches,
                    ands=current.num_ands,
                ) as span:
                    result = reduction_pass.run(current, current_property)
                    span.add(
                        latches_after=result.aig.num_latches,
                        ands_after=result.aig.num_ands,
                    )
            else:
                result = reduction_pass.run(current, current_property)
            results.append(result)
            current = result.aig
            current_property = result.property_index
        recon = ReconstructionMap.from_pass_results(aig, results, property_index)
        return ReductionResult(
            original=aig,
            aig=current,
            property_index=current_property,
            recon=recon,
            infos=[result.info for result in results],
            elapsed=time.perf_counter() - start,
        )


def reduce_aig(
    aig: AIG,
    property_index: int = 0,
    passes: Union[Sequence[str], None] = None,
) -> ReductionResult:
    """Run a reduction pipeline (the default one unless ``passes`` is given)."""
    return ReductionPipeline(passes).run(aig, property_index=property_index)
