"""Pass-managed circuit reduction with witness lift-back.

Every SAT query a model-checking engine issues pays for circuit size, so
the engines in :mod:`repro.engines` shrink their input model through a
:class:`ReductionPipeline` before solving (opt out with ``reduce=False``
or pick passes with ``passes=[...]``).  The registered passes:

=========== ==========================================================
``coi``       cone of influence: drop logic the property can't observe
``strash``    structural hashing, constant folding, dead-gate removal
              (implied by every pass's rebuild; explicit-use only)
``ternary``   sweep latches proven constant by ternary simulation
``merge``     merge sequentially equivalent (or anti-equivalent) latches
=========== ==========================================================

Reduction is witness-preserving: the pipeline's
:class:`~repro.reduce.recon.ReconstructionMap` lifts counterexample
traces and inductive-invariant certificates produced on the reduced
model back to the original AIG, where they pass the stock
:func:`~repro.core.invariant.check_counterexample` /
:func:`~repro.core.invariant.check_certificate` validators unchanged.

Typical use::

    from repro.reduce import reduce_aig

    result = reduce_aig(aig)            # default pipeline
    outcome = IC3(result.aig).check()   # solve the reduced model
    trace = result.lift_trace(outcome.trace)   # speak the original's language
"""

from repro.reduce.base import (
    LatchFate,
    PassResult,
    ReductionError,
    ReductionInfo,
    ReductionPass,
    rebuild_aig,
)
from repro.reduce.coi import ConeOfInfluencePass, coi_variables
from repro.reduce.latchmerge import EquivalentLatchPass, equivalent_latch_classes
from repro.reduce.recon import ReconstructionMap
from repro.reduce.strash import StructuralHashPass
from repro.reduce.ternary import TernaryConstantPass, ternary_constants
from repro.reduce.pipeline import (
    DEFAULT_PASSES,
    ReductionPipeline,
    ReductionResult,
    available_passes,
    reduce_aig,
    register_pass,
    resolve_pass,
)

__all__ = [
    "ReductionError",
    "ReductionInfo",
    "ReductionPass",
    "PassResult",
    "LatchFate",
    "rebuild_aig",
    "ConeOfInfluencePass",
    "coi_variables",
    "StructuralHashPass",
    "TernaryConstantPass",
    "ternary_constants",
    "EquivalentLatchPass",
    "equivalent_latch_classes",
    "ReconstructionMap",
    "ReductionPipeline",
    "ReductionResult",
    "DEFAULT_PASSES",
    "available_passes",
    "register_pass",
    "resolve_pass",
    "reduce_aig",
]
