"""Constant-latch sweeping via ternary (three-valued) simulation.

The pass computes the least fixpoint of the ternary reachability
iteration ``S0 = init``, ``S_{k+1} = S_k ⊔ eval(S_k)`` with every input
at X (unknown) and joins toward X.  Ternary evaluation is sound: if a
signal evaluates to 0/1 under a partial state, it has that value for
*every* completion.  A latch still binary at the fixpoint therefore
holds that constant in every reachable state of the real circuit, so it
can be replaced by the constant and swept — which in turn lets fan-out
logic fold away on the rebuild.

The constancy facts are *inductive* (mutually, over all swept latches):
given every swept latch at its constant, each next-state function
ternary-evaluates back to the constant.  Certificate lift-back relies on
this by emitting one unit clause per swept latch (see
:mod:`repro.reduce.recon`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.reduce.base import (
    CONST,
    KEPT,
    LatchFate,
    PassResult,
    ReductionPass,
    make_info,
    rebuild_aig,
)

# Ternary domain: True / False / None (= X, unknown).
_X = None


def ternary_constants(aig: AIG) -> Dict[int, bool]:
    """Latch literal -> proven constant value, from the ternary fixpoint.

    Latches without a defined reset start at X and are never reported.
    """
    state: Dict[int, Optional[bool]] = {
        latch.lit: (bool(latch.init) if latch.init is not None else _X)
        for latch in aig.latches
    }
    while True:
        values = _evaluate_ternary(aig, state)
        changed = False
        for latch in aig.latches:
            current = state[latch.lit]
            if current is _X:
                continue
            if values[latch.next] != current:
                state[latch.lit] = _X  # join toward X (monotone widening)
                changed = True
        if not changed:
            break
    return {lit: value for lit, value in state.items() if value is not _X}


def _evaluate_ternary(
    aig: AIG, latch_state: Dict[int, Optional[bool]]
) -> Dict[int, Optional[bool]]:
    """Three-valued evaluation of every literal for one time step."""
    values: Dict[int, Optional[bool]] = {FALSE_LIT: False, TRUE_LIT: True}

    def set_both(lit: int, value: Optional[bool]) -> None:
        values[lit] = value
        values[lit ^ 1] = (not value) if value is not _X else _X

    for lit in aig.inputs:
        set_both(lit, _X)
    for latch in aig.latches:
        set_both(latch.lit, latch_state[latch.lit])
    for gate in aig.ands:
        a, b = values[gate.rhs0], values[gate.rhs1]
        if a is False or b is False:
            result: Optional[bool] = False
        elif a is _X or b is _X:
            result = _X
        else:
            result = True
        set_both(gate.lhs, result)
    return values


class TernaryConstantPass(ReductionPass):
    """Sweep latches that ternary simulation proves stuck at a constant."""

    name = "ternary"

    def run(self, aig: AIG, property_index: int = 0) -> PassResult:
        constants = ternary_constants(aig)
        replace = {
            lit: (TRUE_LIT if value else FALSE_LIT)
            for lit, value in constants.items()
        }
        rebuilt = rebuild_aig(aig, replace=replace, property_index=property_index)
        fates = []
        for index, latch in enumerate(aig.latches):
            if latch.lit in constants:
                fates.append(LatchFate(kind=CONST, value=constants[latch.lit]))
            else:
                fates.append(LatchFate(kind=KEPT, new_index=rebuilt.latch_map[index]))
        info = make_info(
            self.name,
            aig,
            rebuilt.aig,
            constant_latches=len(constants),
        )
        return PassResult(
            aig=rebuilt.aig,
            info=info,
            latch_fates=fates,
            input_map=rebuilt.input_map,
            property_index=rebuilt.property_index,
        )
