"""Cone-of-influence reduction pass.

Industrial AIGER models routinely contain logic that cannot affect the
property being checked; restricting the circuit to the *cone of
influence* — the inputs, latches and gates the bad signal transitively
depends on, where latch dependencies follow the next-state functions —
is sound and complete (the reduced circuit is unsafe iff the original
is) and can shrink the IC3 state space dramatically.  Invariant
constraints are always kept because they restrict every behaviour.

The cone computation lived in :mod:`repro.ts.coi` historically; that
module now delegates here and only keeps its original one-shot API.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.aiger.aig import AIG, AndGate, Latch
from repro.reduce.base import (
    FREE,
    KEPT,
    LatchFate,
    PassResult,
    ReductionPass,
    make_info,
    no_properties_message,
    rebuild_aig,
    selected_bads,
)


def coi_variables(aig: AIG, property_index: int = 0) -> Set[int]:
    """Variables (AIG variable indices) in the property's cone of influence.

    The cone is closed under combinational fan-in and under latch
    next-state functions; invariant constraints are always included because
    they restrict every behaviour of the circuit.
    """
    aig.validate()
    bads = selected_bads(aig)
    if not bads:
        raise ValueError(no_properties_message(aig))
    if not 0 <= property_index < len(bads):
        raise ValueError(f"property index {property_index} out of range")

    gate_by_var: Dict[int, AndGate] = {gate.lhs >> 1: gate for gate in aig.ands}
    latch_by_var: Dict[int, Latch] = {latch.lit >> 1: latch for latch in aig.latches}

    roots = [bads[property_index]] + list(aig.constraints)
    pending: List[int] = [lit >> 1 for lit in roots if lit > 1]
    reached: Set[int] = set()
    while pending:
        var = pending.pop()
        if var in reached or var == 0:
            continue
        reached.add(var)
        gate = gate_by_var.get(var)
        if gate is not None:
            pending.append(gate.rhs0 >> 1)
            pending.append(gate.rhs1 >> 1)
            continue
        latch = latch_by_var.get(var)
        if latch is not None:
            pending.append(latch.next >> 1)
    return reached


class ConeOfInfluencePass(ReductionPass):
    """Keep only the inputs, latches and gates in the property's cone.

    The output model declares exactly one bad literal (the selected
    property, at index 0); everything outside its cone is dropped and
    recorded as *free* so trace lift-back can pick arbitrary values.
    """

    name = "coi"

    def run(self, aig: AIG, property_index: int = 0) -> PassResult:
        cone = coi_variables(aig, property_index)
        keep_inputs = {
            index for index, lit in enumerate(aig.inputs) if (lit >> 1) in cone
        }
        keep_latches = {
            index
            for index, latch in enumerate(aig.latches)
            if (latch.lit >> 1) in cone
        }
        rebuilt = rebuild_aig(
            aig,
            keep_inputs=keep_inputs,
            keep_latches=keep_latches,
            property_index=property_index,
            only_property=True,
        )
        fates = [
            LatchFate(kind=KEPT, new_index=rebuilt.latch_map[index])
            if rebuilt.latch_map[index] is not None
            else LatchFate(kind=FREE)
            for index in range(aig.num_latches)
        ]
        info = make_info(
            self.name,
            aig,
            rebuilt.aig,
            removed_latches=aig.num_latches - len(keep_latches),
            removed_inputs=aig.num_inputs - len(keep_inputs),
        )
        return PassResult(
            aig=rebuilt.aig,
            info=info,
            latch_fates=fates,
            input_map=rebuilt.input_map,
            property_index=rebuilt.property_index,
        )
