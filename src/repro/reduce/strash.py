"""Structural hashing and constant folding pass.

The AIG builder already folds constants and shares structurally identical
AND gates at construction time, so a freshly generated circuit gains
little from this pass on its own.  Its value is *inside a pipeline*:
after constant-latch sweeping or latch merging substitute literals, whole
subtrees collapse to constants or become duplicates of existing gates,
and re-running the circuit through the builder (plus the dead-gate sweep
every rebuild performs) reclaims that logic.  All inputs and latches are
preserved bit for bit, so the reconstruction map is the identity on
state.
"""

from __future__ import annotations

from repro.aiger.aig import AIG
from repro.reduce.base import (
    KEPT,
    LatchFate,
    PassResult,
    ReductionPass,
    make_info,
    rebuild_aig,
)


class StructuralHashPass(ReductionPass):
    """Rebuild the circuit through the hashing builder; drop dead gates."""

    name = "strash"

    def run(self, aig: AIG, property_index: int = 0) -> PassResult:
        rebuilt = rebuild_aig(aig, property_index=property_index)
        fates = [
            LatchFate(kind=KEPT, new_index=rebuilt.latch_map[index])
            for index in range(aig.num_latches)
        ]
        info = make_info(
            self.name,
            aig,
            rebuilt.aig,
            folded_ands=aig.num_ands - rebuilt.aig.num_ands,
        )
        return PassResult(
            aig=rebuilt.aig,
            info=info,
            latch_fates=fates,
            input_map=rebuilt.input_map,
            property_index=rebuilt.property_index,
        )
