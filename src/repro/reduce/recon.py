"""Composition of pass maps and witness lift-back.

Engines run on the reduced model, so their witnesses speak the reduced
model's language: counterexample traces carry cubes over the reduced
transition system's latch variables and input assignments over the
reduced AIG's input literals; certificates carry clauses over reduced
latch variables.  :class:`ReconstructionMap` composes the per-pass latch
and input maps into one original-model view and translates both witness
kinds back so they validate against the *original* AIG with the stock
:func:`~repro.core.invariant.check_counterexample` /
:func:`~repro.core.invariant.check_certificate` oracles:

* **Traces** are lifted by mapping every step's input assignment back to
  original input literals (dropped inputs are free — any value works, 0
  is used) and re-simulating the original circuit, which yields full,
  simulation-consistent state cubes by construction.
* **Certificates** are lifted by renaming kept latch variables, then
  re-asserting what the passes assumed away: one unit clause per
  constant-swept latch and two binary clauses (an equality) per merged
  latch.  The extended clause set is inductive on the original system
  because every substitution a pass performed is justified by exactly one
  of the added clauses.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.aiger.aig import AIG
from repro.core.result import (
    Certificate,
    CheckOutcome,
    CounterexampleTrace,
    TraceStep,
)
from repro.logic.cube import Clause, Cube
from repro.reduce.base import (
    CONST,
    FREE,
    KEPT,
    MERGED,
    LatchFate,
    PassResult,
    ReductionError,
)


@dataclass(frozen=True)
class _FinalFate:
    """Fate of one original latch after the whole pipeline.

    ``kind`` is one of the :mod:`repro.reduce.base` fate kinds; indices
    refer to the *reduced* model for ``kept`` and to the *original* model
    for a merge representative.
    """

    kind: str
    reduced_index: Optional[int] = None
    value: Optional[bool] = None
    rep_original_index: Optional[int] = None
    negated: bool = False


class ReconstructionMap:
    """Maps witnesses on the reduced model back to the original model."""

    def __init__(
        self,
        original: AIG,
        reduced: AIG,
        property_index: int,
        reduced_property_index: int,
        latch_fates: Sequence[_FinalFate],
        input_origin: Sequence[int],
        latch_origin: Sequence[int],
    ):
        self.original = original
        self.reduced = reduced
        self.property_index = property_index
        self.reduced_property_index = reduced_property_index
        self.latch_fates = list(latch_fates)
        self.input_origin = list(input_origin)
        """Reduced input index -> original input index."""
        self.latch_origin = list(latch_origin)
        """Reduced latch index -> original latch index."""
        self._original_ts = None
        self._reduced_ts = None

    # ------------------------------------------------------------------
    # Construction from a pass chain
    # ------------------------------------------------------------------
    @classmethod
    def from_pass_results(
        cls,
        original: AIG,
        results: Sequence[PassResult],
        property_index: int,
    ) -> "ReconstructionMap":
        """Compose the per-pass maps of a pipeline run."""
        if not results:
            raise ReductionError("cannot build a reconstruction map from no passes")
        reduced = results[-1].aig
        reduced_property_index = results[-1].property_index

        # back[s][i] = original latch index behind latch i of pass s's
        # *input* model; back[len(results)] covers the reduced model.
        back: List[List[int]] = [list(range(original.num_latches))]
        for result in results:
            stage_origin = [-1] * result.aig.num_latches
            for index, fate in enumerate(result.latch_fates):
                if fate.kind == KEPT:
                    stage_origin[fate.new_index] = back[-1][index]
            if any(origin < 0 for origin in stage_origin):
                raise ReductionError("a reduced latch has no original counterpart")
            back.append(stage_origin)
        latch_origin = back[-1]

        memo: Dict[object, _FinalFate] = {}

        def resolve(stage: int, index: int) -> _FinalFate:
            """Final fate of latch ``index`` of stage ``stage``'s input model."""
            if stage == len(results):
                return _FinalFate(kind=KEPT, reduced_index=index)
            key = (stage, index)
            cached = memo.get(key)
            if cached is not None:
                return cached
            fate: LatchFate = results[stage].latch_fates[index]
            if fate.kind == FREE:
                final = _FinalFate(kind=FREE)
            elif fate.kind == CONST:
                final = _FinalFate(kind=CONST, value=fate.value)
            elif fate.kind == KEPT:
                final = resolve(stage + 1, fate.new_index)
            elif fate.kind == MERGED:
                rep_fate = results[stage].latch_fates[fate.rep_index]
                if rep_fate.kind != KEPT:
                    raise ReductionError("merge representative was not kept by its pass")
                downstream = resolve(stage + 1, rep_fate.new_index)
                if downstream.kind == CONST:
                    final = _FinalFate(
                        kind=CONST, value=downstream.value != fate.negated
                    )
                elif downstream.kind == MERGED:
                    final = _FinalFate(
                        kind=MERGED,
                        rep_original_index=downstream.rep_original_index,
                        negated=fate.negated != downstream.negated,
                    )
                else:
                    # The representative survives (KEPT) or later leaves the
                    # cone (FREE).  Either way the equality was substituted
                    # into the model, so certificate lift-back must restate
                    # it — keep the merge, named by the original latch.
                    final = _FinalFate(
                        kind=MERGED,
                        rep_original_index=back[stage][fate.rep_index],
                        negated=fate.negated,
                    )
            else:  # pragma: no cover - defensive
                raise ReductionError(f"unknown latch fate {fate.kind!r}")
            memo[key] = final
            return final

        resolved_fates = [resolve(0, index) for index in range(original.num_latches)]

        input_origin = []
        for reduced_input_index in range(reduced.num_inputs):
            index = reduced_input_index
            for result in reversed(results):
                index = result.input_map.index(index)
            input_origin.append(index)

        return cls(
            original=original,
            reduced=reduced,
            property_index=property_index,
            reduced_property_index=reduced_property_index,
            latch_fates=resolved_fates,
            input_origin=input_origin,
            latch_origin=latch_origin,
        )

    # ------------------------------------------------------------------
    # Transition-system views (lazy; witnesses are var-numbered by them)
    # ------------------------------------------------------------------
    def _ts(self, original: bool):
        # Imported lazily: repro.ts re-exports the COI shim, which imports
        # this package back.
        from repro.ts.system import TransitionSystem

        if original:
            if self._original_ts is None:
                self._original_ts = TransitionSystem(
                    self.original,
                    property_index=self.property_index,
                    warn_on_ambiguity=False,
                )
            return self._original_ts
        if self._reduced_ts is None:
            self._reduced_ts = TransitionSystem(
                self.reduced,
                property_index=self.reduced_property_index,
                warn_on_ambiguity=False,
            )
        return self._reduced_ts

    # ------------------------------------------------------------------
    # Lifting
    # ------------------------------------------------------------------
    def lift_trace(self, trace: CounterexampleTrace) -> CounterexampleTrace:
        """Translate a reduced-model counterexample to the original model."""
        if not trace.steps:
            raise ReductionError("cannot lift an empty counterexample trace")
        original, reduced = self.original, self.reduced

        # 1. Initial latch values: kept latches take the first cube's
        # values (needed for latches without a defined reset); everything
        # else starts from its reset value (False when undefined — sound,
        # because such latches are outside the cone or derived).
        reduced_ts = self._ts(original=False)
        latch_index_of_var = {
            var: index for index, var in enumerate(reduced_ts.latch_vars)
        }
        first_cube_value: Dict[int, bool] = {}
        for lit in trace.steps[0].state:
            index = latch_index_of_var.get(abs(lit))
            if index is not None:
                first_cube_value[index] = lit > 0

        initial: Dict[int, bool] = {}
        for index, latch in enumerate(original.latches):
            fate = self.latch_fates[index]
            value = bool(latch.init) if latch.init is not None else False
            if fate.kind == KEPT and fate.reduced_index in first_cube_value:
                value = first_cube_value[fate.reduced_index]
            initial[latch.lit] = value

        # 2. Input assignments, renamed to original input literals.
        input_index_of_lit = {
            lit: index for index, lit in enumerate(reduced.inputs)
        }
        input_sequence: List[Dict[int, bool]] = []
        for step in trace.steps:
            assignment = {lit: False for lit in original.inputs}
            for reduced_lit, value in step.inputs.items():
                reduced_index = input_index_of_lit.get(reduced_lit & ~1)
                if reduced_index is None:
                    continue
                original_lit = original.inputs[self.input_origin[reduced_index]]
                assignment[original_lit] = bool(value) != bool(reduced_lit & 1)
            input_sequence.append(assignment)

        # 3. Re-simulate the original circuit; the records are full,
        # consistent-by-construction states.
        records = original.simulate(input_sequence, initial_latches=initial)
        original_ts = self._ts(original=True)
        steps = []
        for record, assignment in zip(records, input_sequence):
            literals = []
            for index, latch in enumerate(original.latches):
                var = original_ts.latch_vars[index]
                literals.append(var if record["latches"][latch.lit] else -var)
            steps.append(TraceStep(state=Cube(literals), inputs=assignment))
        return CounterexampleTrace(steps=steps)

    def lift_certificate(self, certificate: Certificate) -> Certificate:
        """Translate a reduced-model invariant to the original model.

        Adds the constancy / equivalence facts the passes relied on, so
        the result is inductive on the original transition system.
        """
        original_ts = self._ts(original=True)
        reduced_ts = self._ts(original=False)
        original_var = original_ts.latch_vars
        latch_index_of_var = {
            var: index for index, var in enumerate(reduced_ts.latch_vars)
        }

        clauses: List[Clause] = []
        for index, fate in enumerate(self.latch_fates):
            var = original_var[index]
            if fate.kind == CONST:
                clauses.append(Clause([var if fate.value else -var]))
            elif fate.kind == MERGED:
                rep = original_var[fate.rep_original_index]
                rep_lit = -rep if fate.negated else rep
                clauses.append(Clause([-var, rep_lit]))
                clauses.append(Clause([var, -rep_lit]))

        for clause in certificate.clauses:
            lifted = []
            for lit in clause:
                index = latch_index_of_var.get(abs(lit))
                if index is None:
                    raise ReductionError(
                        f"certificate literal {lit} is not a reduced latch variable"
                    )
                var = original_var[self.latch_origin[index]]
                lifted.append(var if lit > 0 else -var)
            clauses.append(Clause(lifted))
        return Certificate(clauses=clauses, level=certificate.level)

    # ------------------------------------------------------------------
    # Forward mapping (original -> reduced), used for shared lemmas
    # ------------------------------------------------------------------
    def map_latch_index_clauses(self, clauses) -> List[List[int]]:
        """Translate invariant clauses from original to reduced latch space.

        Clauses are in latch-index literal form (``±(index + 1)``).  A
        literal over a constant-swept latch evaluates against the proven
        constant: a satisfied literal makes the whole clause redundant on
        the reduced model (dropped), a falsified one is removed.  Merged
        latches are rewritten to their surviving representative.  Clauses
        mentioning a latch outside the reduced model (``free``, or a
        representative that did not survive) cannot be translated and are
        dropped — always sound, since dropping only loses a hint.
        """
        mapped: List[List[int]] = []
        for clause in clauses:
            result: List[int] = []
            keep = True
            satisfied = False
            for lit in clause:
                index = abs(lit) - 1
                positive = lit > 0
                if not 0 <= index < len(self.latch_fates):
                    keep = False
                    break
                fate = self.latch_fates[index]
                if fate.kind == MERGED:
                    positive = positive != fate.negated
                    index = fate.rep_original_index
                    fate = self.latch_fates[index]
                if fate.kind == KEPT:
                    reduced = fate.reduced_index + 1
                    result.append(reduced if positive else -reduced)
                elif fate.kind == CONST:
                    if positive == fate.value:
                        satisfied = True
                        break
                    # falsified literal: drop it from the clause
                else:
                    keep = False
                    break
            if keep and not satisfied and result:
                mapped.append(result)
        return mapped

    def lift_latch_index_clauses(self, clauses) -> List[List[int]]:
        """Translate invariant clauses from reduced to original latch space.

        The reverse of :meth:`map_latch_index_clauses`, used when a
        portfolio member that reduced its model further exports lemmas
        back onto the shared bus.  Every reduced latch has an original
        counterpart (``latch_origin``), so the translation never drops a
        clause; signs are preserved.
        """
        lifted: List[List[int]] = []
        for clause in clauses:
            result: List[int] = []
            valid = True
            for lit in clause:
                index = abs(lit) - 1
                if not 0 <= index < len(self.latch_origin):
                    valid = False
                    break
                original = self.latch_origin[index] + 1
                result.append(original if lit > 0 else -original)
            if valid and result:
                lifted.append(result)
        return lifted

    def lift_outcome(self, outcome: CheckOutcome) -> CheckOutcome:
        """Lift whatever witness an outcome carries; verdict is unchanged."""
        lifted = copy.copy(outcome)
        if outcome.trace is not None:
            lifted.trace = self.lift_trace(outcome.trace)
        if outcome.certificate is not None:
            lifted.certificate = self.lift_certificate(outcome.certificate)
        return lifted
