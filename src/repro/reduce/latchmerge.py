"""Equivalent-latch merging (structural latch correspondence).

Two latches are sequentially equivalent when they hold the same value (or
complementary values) in every reachable state.  The pass finds such
pairs with the classic greatest-fixpoint partition refinement:

1. Normalize each latch ``L`` to ``n(L) = L xor init(L)`` so every
   initialized latch starts at 0, and optimistically place all of them in
   one equivalence class (latches without a defined reset stay singleton).
2. Refine: rebuild every latch's next-state function in a scratch AIG,
   substituting each latch with a per-class placeholder variable
   (phase-corrected).  The structurally hashed result literal, XOR'd with
   the latch's init phase, is the latch's *signature*; latches with
   different signatures cannot stay in one class.
3. Iterate until the partition is stable.

At the fixpoint every class is self-consistent — all members have
identical normalized next functions once members are replaced by their
representative — so equality of members follows by mutual induction from
the equal initial values.  Non-representative members are then replaced
by their (phase-corrected) representative and swept.  Certificate
lift-back re-asserts the merged equalities as two binary clauses per
swept latch (see :mod:`repro.reduce.recon`).

Structural refinement is conservative: it only merges what hashing can
see, never more, so soundness does not depend on any SAT reasoning.
"""

from __future__ import annotations

from typing import Dict, List

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.reduce.base import (
    KEPT,
    MERGED,
    LatchFate,
    PassResult,
    ReductionPass,
    make_info,
    rebuild_aig,
)


def equivalent_latch_classes(aig: AIG) -> List[List[int]]:
    """Partition latch indices into proven-equivalent classes.

    Only classes with at least two members are returned; each class lists
    latch indices, smallest (the representative) first.  Members may be
    *anti*-equivalent to the representative — phase is recovered from the
    init values (``init(L) != init(rep)`` means ``L == !rep``).
    """
    latches = aig.latches
    # class id per latch; -1 marks latches that can never merge (no reset).
    class_of: List[int] = []
    for latch in latches:
        class_of.append(0 if latch.init is not None else -1)

    while True:
        signatures = _signatures(aig, class_of)
        # Split every class by signature.
        next_class_of = list(class_of)
        key_to_class: Dict[object, int] = {}
        next_id = 0
        for index, latch in enumerate(latches):
            if class_of[index] < 0:
                continue
            key = (class_of[index], signatures[index])
            if key not in key_to_class:
                key_to_class[key] = next_id
                next_id += 1
            next_class_of[index] = key_to_class[key]
        if next_class_of == class_of:
            break
        class_of = next_class_of

    members: Dict[int, List[int]] = {}
    for index, cls in enumerate(class_of):
        if cls >= 0:
            members.setdefault(cls, []).append(index)
    return [sorted(group) for cls, group in sorted(members.items()) if len(group) > 1]


def _signatures(aig: AIG, class_of: List[int]) -> List[int]:
    """Normalized structural signature of every latch's next function.

    Signatures are literals of a scratch AIG in which each equivalence
    class (and each unmergeable latch) is one placeholder input; equal
    signature literals mean structurally identical normalized next
    functions under the current partition.
    """
    scratch = AIG()
    placeholder: Dict[int, int] = {}  # class id (or ~latch index) -> scratch input lit

    def class_var(key: int) -> int:
        lit = placeholder.get(key)
        if lit is None:
            lit = scratch.add_input()
            placeholder[key] = lit
        return lit

    # Source base literal -> scratch literal, built lazily in topological
    # order (aig.ands is topologically sorted by construction).
    mapping: Dict[int, int] = {FALSE_LIT: FALSE_LIT, TRUE_LIT: TRUE_LIT}
    for lit in aig.inputs:
        mapping[lit] = scratch.add_input()
    for index, latch in enumerate(aig.latches):
        cls = class_of[index]
        if cls < 0:
            mapping[latch.lit] = class_var(~index)
        else:
            # Normalized: latch == class placeholder xor init.
            mapping[latch.lit] = class_var(cls) ^ int(latch.init)

    def map_lit(lit: int) -> int:
        return mapping[lit & ~1] ^ (lit & 1)

    for gate in aig.ands:
        mapping[gate.lhs] = scratch.add_and(map_lit(gate.rhs0), map_lit(gate.rhs1))

    signatures = []
    for latch in aig.latches:
        init = int(latch.init) if latch.init is not None else 0
        signatures.append(map_lit(latch.next) ^ init)
    return signatures


class EquivalentLatchPass(ReductionPass):
    """Merge sequentially equivalent latches onto one representative."""

    name = "merge"

    def run(self, aig: AIG, property_index: int = 0) -> PassResult:
        classes = equivalent_latch_classes(aig)
        replace: Dict[int, int] = {}
        merged_with: Dict[int, LatchFate] = {}
        for group in classes:
            rep_index = group[0]
            rep = aig.latches[rep_index]
            for index in group[1:]:
                latch = aig.latches[index]
                negated = latch.init != rep.init
                replace[latch.lit] = rep.lit ^ int(negated)
                merged_with[index] = LatchFate(
                    kind=MERGED, rep_index=rep_index, negated=negated
                )

        rebuilt = rebuild_aig(aig, replace=replace, property_index=property_index)
        fates = []
        for index in range(aig.num_latches):
            fate = merged_with.get(index)
            if fate is None:
                fate = LatchFate(kind=KEPT, new_index=rebuilt.latch_map[index])
            fates.append(fate)
        info = make_info(
            self.name,
            aig,
            rebuilt.aig,
            merged_latches=len(replace),
            equivalence_classes=len(classes),
        )
        return PassResult(
            aig=rebuilt.aig,
            info=info,
            latch_fates=fates,
            input_map=rebuilt.input_map,
            property_index=rebuilt.property_index,
        )
