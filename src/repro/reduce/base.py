"""Foundations of the circuit-reduction subsystem.

A *reduction pass* transforms one AIG into a smaller, property-equivalent
AIG and reports two things alongside the rebuilt circuit:

* a :class:`ReductionInfo` — how many inputs/latches/AND gates the pass
  kept and removed, for shrinkage reports and run manifests;
* per-element *fates* (:class:`LatchFate`) — what happened to every latch
  and input of the pass's input model, so that
  :class:`~repro.reduce.recon.ReconstructionMap` can compose the passes
  and lift counterexample traces and invariant certificates produced on
  the reduced model back to the original one.

All passes funnel their circuit surgery through :func:`rebuild_aig`,
which re-creates the AIG through the structural-hashing builder (so every
pass gets constant folding and common-subexpression sharing for free),
drops gates that no longer feed any latch, constraint or selected
property, and applies latch substitutions (constants from ternary
simulation, representatives from equivalent-latch merging).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT, liveness_hint


class ReductionError(Exception):
    """Raised for malformed pipelines or unliftable witnesses."""


@dataclass
class ReductionInfo:
    """Shrinkage achieved by one pass application."""

    pass_name: str
    inputs_before: int = 0
    inputs_after: int = 0
    latches_before: int = 0
    latches_after: int = 0
    ands_before: int = 0
    ands_after: int = 0
    details: Dict[str, int] = field(default_factory=dict)
    """Pass-specific counters (e.g. ``constant_latches``, ``merged_latches``)."""

    @property
    def reduced(self) -> bool:
        """True if the pass removed anything."""
        return (
            self.inputs_after < self.inputs_before
            or self.latches_after < self.latches_before
            or self.ands_after < self.ands_before
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form used by manifests and the CLI."""
        return {
            "pass": self.pass_name,
            "inputs": [self.inputs_before, self.inputs_after],
            "latches": [self.latches_before, self.latches_after],
            "ands": [self.ands_before, self.ands_after],
            "details": dict(self.details),
        }


# Fate kinds: what a pass did to one latch of its input model.
KEPT = "kept"
CONST = "const"
MERGED = "merged"
FREE = "free"


@dataclass(frozen=True)
class LatchFate:
    """What one pass did with one latch (indexed in the pass's input model).

    * ``kept`` — survives as latch ``new_index`` of the output model;
    * ``const`` — proven stuck at ``value`` and swept away;
    * ``merged`` — equal to latch ``rep_index`` of the *input* model
      (negated when ``negated``) and replaced by it;
    * ``free`` — outside the property's cone; its value never matters.
    """

    kind: str
    new_index: Optional[int] = None
    value: Optional[bool] = None
    rep_index: Optional[int] = None
    negated: bool = False


@dataclass
class PassResult:
    """Everything one pass application produced."""

    aig: AIG
    info: ReductionInfo
    latch_fates: List[LatchFate]
    """Fate of every latch of the pass's input model, by latch index."""

    input_map: List[Optional[int]]
    """Input index of the pass's input model -> output index (None = dropped)."""

    property_index: int
    """Index of the checked property in the output model's bad list."""


class ReductionPass(ABC):
    """One named, composable AIG-level reduction."""

    name: str = "pass"

    @abstractmethod
    def run(self, aig: AIG, property_index: int = 0) -> PassResult:
        """Apply the pass; must be sound and complete for the property."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def selected_bads(aig: AIG) -> List[int]:
    """The property literals of a model (bads, or outputs as fallback)."""
    return list(aig.bads) if aig.bads else list(aig.outputs)


def no_properties_message(aig: AIG) -> str:
    """Error text for models without safety properties (justice-aware)."""
    return "the AIG declares neither bad states nor outputs" + liveness_hint(aig)


@dataclass
class RebuildResult:
    """Output of :func:`rebuild_aig`."""

    aig: AIG
    input_map: List[Optional[int]]
    latch_map: List[Optional[int]]
    property_index: int


def rebuild_aig(
    source: AIG,
    *,
    keep_inputs: Optional[Set[int]] = None,
    keep_latches: Optional[Set[int]] = None,
    replace: Optional[Dict[int, int]] = None,
    property_index: int = 0,
    only_property: bool = False,
) -> RebuildResult:
    """Rebuild ``source`` through the structural-hashing builder.

    ``keep_inputs``/``keep_latches`` are index sets (None keeps all);
    ``replace`` maps a latch's positive literal to the source-domain
    literal it is replaced with — a constant (``FALSE_LIT``/``TRUE_LIT``)
    or a (possibly negated) literal of a kept latch.  Replaced latches are
    dropped.  Gates are materialized only if they transitively feed a kept
    latch's next-state function, an invariant constraint or an emitted bad
    literal, so dead logic disappears on every rebuild.  With
    ``only_property`` the output declares a single bad literal (the
    selected property, at index 0); otherwise all properties are kept.
    """
    replace = dict(replace or {})
    bads = selected_bads(source)
    if not bads:
        raise ReductionError(no_properties_message(source))
    if not 0 <= property_index < len(bads):
        raise ReductionError(f"property index {property_index} out of range")
    emitted_bads = [bads[property_index]] if only_property else bads
    new_property_index = 0 if only_property else property_index

    new = AIG(comment=source.comment)
    new_lit_of: Dict[int, int] = {FALSE_LIT: FALSE_LIT, TRUE_LIT: TRUE_LIT}

    input_map: List[Optional[int]] = [None] * source.num_inputs
    for index, lit in enumerate(source.inputs):
        if keep_inputs is not None and index not in keep_inputs:
            continue
        input_map[index] = new.num_inputs
        new_lit_of[lit] = new.add_input(source.input_name(lit))

    latch_map: List[Optional[int]] = [None] * source.num_latches
    kept_latches = []
    for index, latch in enumerate(source.latches):
        if keep_latches is not None and index not in keep_latches:
            continue
        if latch.lit in replace:
            continue
        latch_map[index] = new.num_latches
        new_lit_of[latch.lit] = new.add_latch(init=latch.init, name=latch.name)
        kept_latches.append(latch)

    # Only gates in the fan-in cone of something we emit are materialized.
    needed = _needed_gates(source, kept_latches, emitted_bads, replace)

    def map_lit(lit: int) -> int:
        base = lit & ~1
        target = replace.get(base)
        if target is not None:
            return map_lit(target ^ (lit & 1))
        mapped = new_lit_of.get(base)
        if mapped is None:
            # A dropped element can only be referenced from logic that
            # cannot influence the property; any constant is sound.
            return FALSE_LIT ^ (lit & 1)
        return mapped ^ (lit & 1)

    for gate in source.ands:
        if gate.lhs in needed:
            new_lit_of[gate.lhs] = new.add_and(map_lit(gate.rhs0), map_lit(gate.rhs1))

    for latch in kept_latches:
        new.set_latch_next(new_lit_of[latch.lit], map_lit(latch.next))
    for constraint in source.constraints:
        new.add_constraint(map_lit(constraint))
    for bad in emitted_bads:
        new.add_bad(map_lit(bad))
    new.validate()
    return RebuildResult(
        aig=new,
        input_map=input_map,
        latch_map=latch_map,
        property_index=new_property_index,
    )


def _needed_gates(
    source: AIG,
    kept_latches: Sequence,
    emitted_bads: Sequence[int],
    replace: Dict[int, int],
) -> Set[int]:
    """Positive literals of AND gates feeding anything the rebuild emits."""
    gate_by_lhs = {gate.lhs: gate for gate in source.ands}
    roots = [latch.next for latch in kept_latches]
    roots += list(source.constraints) + list(emitted_bads)
    roots += [target for target in replace.values()]
    needed: Set[int] = set()
    pending = [lit & ~1 for lit in roots]
    while pending:
        base = pending.pop()
        if base in needed:
            continue
        gate = gate_by_lhs.get(base)
        if gate is None:
            continue
        needed.add(base)
        pending.append(gate.rhs0 & ~1)
        pending.append(gate.rhs1 & ~1)
    return needed


def make_info(pass_name: str, before: AIG, after: AIG, **details: int) -> ReductionInfo:
    """Standard before/after size bookkeeping for a pass."""
    return ReductionInfo(
        pass_name=pass_name,
        inputs_before=before.num_inputs,
        inputs_after=after.num_inputs,
        latches_before=before.num_latches,
        latches_after=after.num_latches,
        ands_before=before.num_ands,
        ands_after=after.num_ands,
        details=dict(details),
    )
