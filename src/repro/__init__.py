"""Reproduction of "Predicting Lemmas in Generalization of IC3" (DAC 2024).

The package provides, from the bottom up:

* :mod:`repro.logic` — literals, cubes, clauses, CNF;
* :mod:`repro.sat` — a CDCL SAT solver with assumptions and cores;
* :mod:`repro.aiger` — AIG construction, simulation and AIGER file I/O;
* :mod:`repro.ts` — transition-system encoding and time-frame unrolling;
* :mod:`repro.reduce` — pass-managed circuit reduction (COI, structural
  hashing, ternary constant sweeping, latch merging) with witness
  lift-back;
* :mod:`repro.core` — IC3/PDR with CTP-based lemma prediction, plus BMC,
  k-induction and certificate/trace validation;
* :mod:`repro.props` — multi-property & liveness verification: AIGER 1.9
  justice/fairness obligations, liveness-to-safety and k-liveness
  compilers with lasso lift-back, and the shared-substrate
  PropertyScheduler;
* :mod:`repro.benchgen` — the synthetic hardware benchmark suite;
* :mod:`repro.harness` — the evaluation harness reproducing the paper's
  tables and figures.

Quick start::

    from repro import IC3, IC3Options
    from repro.benchgen import token_ring

    outcome = IC3(token_ring(6).aig, IC3Options().with_prediction()).check()
    print(outcome.summary())
"""

from repro.core.ic3 import IC3
from repro.core.bmc import BMC
from repro.core.kinduction import KInduction
from repro.core.options import IC3Options
from repro.core.result import CheckOutcome, CheckResult

__version__ = "1.0.0"

__all__ = [
    "IC3",
    "BMC",
    "KInduction",
    "IC3Options",
    "CheckOutcome",
    "CheckResult",
    "__version__",
]
