"""Liveness-to-safety transformation (Biere–Artho–Schuppan).

A justice property is violated exactly when the system has a *lasso*: a
finite stem into a loop on which every justice literal (and every
fairness constraint) holds at least once.  For finite-state systems the
search for such a lasso reduces to a safety check on an augmented
circuit:

* a fresh oracle input ``save`` guesses the loop-start step;
* a ``saved`` flag latch remembers that the guess happened;
* one *shadow* latch per original latch snapshots the state at the
  guessed step;
* one ``seen`` latch per justice/fairness literal records that the
  literal held at some step since the snapshot;
* the single bad state is ``saved ∧ (state = shadow) ∧ ⋀ seen`` — the
  loop closed and every tracked literal occurred inside it.

The compiled circuit is an ordinary safety problem that every engine in
this package (and every reduction pass) can process; a counterexample
trace on it is lifted back to a :class:`~repro.core.result.LassoTrace`
on the original AIG, and a safety certificate on it *is* the liveness
proof (validated by recompiling — the transformation is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.aiger.aig import AIG
from repro.core.result import CounterexampleTrace, LassoTrace, TraceStep
from repro.props.transform import (
    CircuitCopy,
    TransformError,
    clone_circuit,
    justice_literals,
)


@dataclass
class L2SResult:
    """The compiled safety circuit plus everything lift-back needs."""

    original: AIG
    aig: AIG
    """Transformed model; its single bad literal (index 0) is the lasso."""

    justice_index: int
    save_lit: int
    """The loop-start oracle input of the transformed model."""

    num_tracked: int
    """Justice literals tracked, fairness constraints included."""

    aux_latches: int
    """Monitor latches added (saved + shadows + seen flags)."""

    input_origin: List[int] = field(default_factory=list)
    """Transformed input index -> original input index (-1 for ``save``)."""

    def summary(self) -> Dict[str, object]:
        """JSON-serializable description for manifests and reports."""
        return {
            "kind": "l2s",
            "justice_index": self.justice_index,
            "tracked_literals": self.num_tracked,
            "aux_latches": self.aux_latches,
            "original": {
                "inputs": self.original.num_inputs,
                "latches": self.original.num_latches,
                "ands": self.original.num_ands,
            },
            "transformed": {
                "inputs": self.aig.num_inputs,
                "latches": self.aig.num_latches,
                "ands": self.aig.num_ands,
            },
        }

    # ------------------------------------------------------------------
    # Witness lift-back
    # ------------------------------------------------------------------
    def lift_trace(self, trace: CounterexampleTrace) -> LassoTrace:
        """Translate a safety counterexample on the compiled circuit into a
        lasso on the original AIG.

        The loop starts at the step where the ``save`` oracle first fires;
        the final (bad) step closes the loop — its state equals the
        snapshot — so it is dropped and replaced by the ``loop_start``
        marker.  The original circuit is re-simulated with the projected
        inputs, which yields full, consistent-by-construction states over
        *latch indices* (literal ``±(index + 1)`` refers to latch
        ``index`` — the convention validated by
        :func:`repro.props.witness.check_lasso`).
        """
        if len(trace.steps) < 2:
            raise TransformError("an l2s counterexample needs at least two steps")

        # 1. Loop start: the first step whose inputs assert the oracle.
        loop_start = None
        for index, step in enumerate(trace.steps):
            if step.inputs.get(self.save_lit, False):
                loop_start = index
                break
        if loop_start is None or loop_start >= len(trace.steps) - 1:
            raise TransformError(
                "l2s counterexample never triggers the save oracle before the bad step"
            )

        # 2. Project the inputs onto the original input literals.
        input_sequence: List[Dict[int, bool]] = []
        for step in trace.steps[:-1]:
            assignment = {lit: False for lit in self.original.inputs}
            for new_index, new_lit in enumerate(self.aig.inputs):
                origin = self.input_origin[new_index]
                if origin < 0:
                    continue
                assignment[self.original.inputs[origin]] = bool(
                    step.inputs.get(new_lit, False)
                )
            input_sequence.append(assignment)

        # 3. Initial latch values: reset values, overridden by the first
        # state cube for latches without a defined reset.  The transformed
        # model's latch variables 1..L of the first cube correspond to the
        # original latches because the clone preserves latch order and the
        # TransitionSystem numbers latch variables in that order.
        from repro.ts.system import TransitionSystem

        transformed_ts = TransitionSystem(self.aig, property_index=0)
        original_index_of_var = {
            var: index
            for index, var in enumerate(transformed_ts.latch_vars)
            if index < self.original.num_latches
        }
        initial: Dict[int, bool] = {}
        for latch in self.original.latches:
            initial[latch.lit] = bool(latch.init) if latch.init is not None else False
        for lit in trace.steps[0].state:
            index = original_index_of_var.get(abs(lit))
            if index is not None:
                initial[self.original.latches[index].lit] = lit > 0

        # 4. Re-simulate the original circuit and emit index-space cubes.
        records = self.original.simulate(input_sequence, initial_latches=initial)
        from repro.logic.cube import Cube

        steps = []
        for record, assignment in zip(records, input_sequence):
            literals = []
            for index, latch in enumerate(self.original.latches):
                var = index + 1
                literals.append(var if record["latches"][latch.lit] else -var)
            steps.append(TraceStep(state=Cube(literals), inputs=assignment))
        return LassoTrace(
            steps=steps, loop_start=loop_start, justice_index=self.justice_index
        )


def liveness_to_safety(aig: AIG, justice_index: int = 0) -> L2SResult:
    """Compile one justice property of ``aig`` into a safety circuit."""
    tracked = justice_literals(aig, justice_index)
    copy: CircuitCopy = clone_circuit(
        aig,
        comment=f"l2s of justice property {justice_index}",
    )
    new = copy.aig
    aux_before = new.num_latches

    save = new.add_input("l2s_save")
    saved = new.add_latch(init=0, name="l2s_saved")
    recording = new.or_gate(saved, save)  # true from the snapshot step on
    trigger = new.add_and(save, new.negate(saved))
    new.set_latch_next(saved, recording)

    shadows = []
    for index, latch in enumerate(aig.latches):
        shadow = new.add_latch(init=0, name=f"l2s_shadow{index}")
        new.set_latch_next(
            shadow, new.mux(trigger, copy.map_lit(latch.lit), shadow)
        )
        shadows.append(shadow)

    seen = []
    for index, lit in enumerate(tracked):
        flag = new.add_latch(init=0, name=f"l2s_seen{index}")
        new.set_latch_next(
            flag, new.add_and(recording, new.or_gate(flag, copy.map_lit(lit)))
        )
        seen.append(flag)

    loop_closed = new.and_many(
        [
            new.xnor_gate(copy.map_lit(latch.lit), shadow)
            for latch, shadow in zip(aig.latches, shadows)
        ]
    )
    new.add_bad(new.and_many([saved, loop_closed] + seen))
    new.validate()

    input_origin = list(range(aig.num_inputs)) + [-1]  # save is last
    return L2SResult(
        original=aig,
        aig=new,
        justice_index=justice_index,
        save_lit=save,
        num_tracked=len(tracked),
        aux_latches=new.num_latches - aux_before,
        input_origin=input_origin,
    )
