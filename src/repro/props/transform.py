"""Foundations shared by the liveness-to-safety and k-liveness compilers.

Both transformations are circuit-to-circuit compilers in the spirit of
the :mod:`repro.reduce` passes: they rebuild the source AIG through the
structural-hashing builder (so monitor logic is folded and shared like
any other logic) and then graft monitor state on top.  The
:class:`CircuitCopy` returned by :func:`clone_circuit` keeps the
original-to-new literal map so the compilers can refer to any original
signal — latch outputs, justice literals, fairness constraints — in the
new circuit's namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT


class TransformError(Exception):
    """Raised for malformed liveness transformations or unliftable witnesses."""


@dataclass
class CircuitCopy:
    """A rebuilt AIG plus the literal translation from the source model."""

    aig: AIG
    lit_of: Dict[int, int]
    """Source positive literal -> new literal (constants map to themselves)."""

    def map_lit(self, lit: int) -> int:
        """Translate any source literal (possibly negated) to the copy."""
        mapped = self.lit_of.get(lit & ~1)
        if mapped is None:
            raise TransformError(f"source literal {lit} has no counterpart in the copy")
        return mapped ^ (lit & 1)


def clone_circuit(
    source: AIG,
    *,
    copy_outputs: bool = False,
    copy_bads: bool = False,
    copy_constraints: bool = True,
    comment: str = "",
) -> CircuitCopy:
    """Rebuild ``source`` through the builder, preserving element order.

    Inputs, latches and AND gates are recreated one-to-one (modulo
    constant folding / structural sharing of the builder), so latch
    ``i`` of the copy corresponds to latch ``i`` of the source.  Justice
    and fairness sections are never copied — the compilers exist to
    translate them away — and bads/outputs are copied only on request.
    """
    source.validate()
    new = AIG(comment=comment or source.comment)
    lit_of: Dict[int, int] = {FALSE_LIT: FALSE_LIT, TRUE_LIT: TRUE_LIT}

    for lit in source.inputs:
        lit_of[lit] = new.add_input(source.input_name(lit))
    for latch in source.latches:
        lit_of[latch.lit] = new.add_latch(init=latch.init, name=latch.name)

    def map_lit(lit: int) -> int:
        return lit_of[lit & ~1] ^ (lit & 1)

    for gate in source.ands:
        lit_of[gate.lhs] = new.add_and(map_lit(gate.rhs0), map_lit(gate.rhs1))
    for latch in source.latches:
        new.set_latch_next(lit_of[latch.lit], map_lit(latch.next))

    if copy_constraints:
        for constraint in source.constraints:
            new.add_constraint(map_lit(constraint))
    if copy_outputs:
        for lit in source.outputs:
            new.add_output(map_lit(lit))
    if copy_bads:
        for lit in source.bads:
            new.add_bad(map_lit(lit))
    return CircuitCopy(aig=new, lit_of=lit_of)


def justice_literals(aig: AIG, justice_index: int) -> List[int]:
    """The literal set of one justice property, extended with fairness.

    AIGER 1.9 fairness constraints must hold infinitely often in *any*
    justice counterexample, so for a single property they are equivalent
    to additional justice literals and both compilers track them the same
    way.
    """
    if not aig.justice:
        raise TransformError(
            "the AIG declares no justice properties (nothing to compile)"
        )
    if not 0 <= justice_index < len(aig.justice):
        raise TransformError(
            f"justice index {justice_index} out of range: the AIG declares "
            f"{len(aig.justice)} justice propert"
            f"{'y' if len(aig.justice) == 1 else 'ies'}, valid indices are "
            f"0..{len(aig.justice) - 1}"
        )
    return list(aig.justice[justice_index]) + list(aig.fairness)
