"""The multi-property scheduler: one AIG, one verdict per property.

A HWMCC-style AIGER 1.9 model carries a whole batch of obligations —
several bad outputs, justice properties, fairness — and solving them one
process at a time wastes exactly the substrate PR 3 made persistent.
:class:`PropertyScheduler` turns the batch into a schedule that shares
work where that is sound:

* **Shared-unrolling BMC sweep** — all safety obligations are probed on
  ONE incremental unrolling (one solver, one set of frame clauses, one
  learnt-clause database); each depth asks one assumption query per
  unresolved property, so shallow counterexamples for the whole batch
  cost one BMC run instead of N.
* **Shared-lemma propagation** — an invariant certificate proved for one
  safety property is (after independent validation) a set of clauses
  that hold on *every* reachable state, so the scheduler seeds them as
  free lemmas into the IC3 runs of sibling properties on overlapping
  cones (:meth:`repro.core.ic3.IC3` ``seed_clauses``); small cones are
  solved first so their certificates are available to the larger ones.
* **Liveness strategy** — justice obligations run the configured engine
  ladder (k-liveness for proofs first, liveness-to-safety for
  refutations and as the complete fallback), each compiled circuit going
  through the ordinary reduction pipeline.

Every witness is validated against the *original* AIG (traces by
simulation, lassos by :func:`repro.props.witness.check_lasso`, liveness
certificates by recompilation) before a verdict is reported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.aiger.aig import AIG
from repro.core.invariant import (
    CertificateError,
    check_certificate,
    check_counterexample,
)
from repro.core.result import (
    CheckOutcome,
    CheckResult,
    CounterexampleTrace,
    TraceStep,
)
from repro.core.stats import IC3Stats
from repro.engines.registry import create_engine
from repro.props.obligations import PropertyObligation, enumerate_obligations
from repro.props.witness import check_lasso, check_liveness_certificate
from repro.reduce.coi import coi_variables
from repro.ts.unroll import Unroller


class SchedulerError(Exception):
    """Raised for empty batches or invalid property selections."""


@dataclass
class PropertyVerdict:
    """The scheduler's answer for one obligation."""

    obligation: PropertyObligation
    outcome: CheckOutcome
    engine: str
    runtime: float
    validated: Optional[bool] = None
    shared_lemmas_applied: int = 0

    @property
    def result(self) -> CheckResult:
        """The verdict of this property."""
        return self.outcome.result

    def detail(self) -> str:
        """Short human-readable witness description."""
        outcome = self.outcome
        if outcome.result == CheckResult.SAFE and outcome.certificate is not None:
            text = f"invariant with {len(outcome.certificate)} clauses"
            if self.shared_lemmas_applied:
                text += f" ({self.shared_lemmas_applied} shared)"
            return text
        if outcome.result == CheckResult.UNSAFE and outcome.lasso is not None:
            return (
                f"lasso with stem {outcome.lasso.stem_length} + "
                f"loop {outcome.lasso.loop_length}"
            )
        if outcome.result == CheckResult.UNSAFE and outcome.trace is not None:
            return f"counterexample of depth {outcome.trace.depth}"
        return outcome.reason or ""

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable record for manifests and CLI output."""
        return {
            "number": self.obligation.number,
            "label": self.obligation.label,
            "kind": self.obligation.kind,
            "index": self.obligation.index,
            "result": self.result.value,
            "engine": self.engine,
            "runtime": round(self.runtime, 6),
            "validated": self.validated,
            "shared_lemmas_applied": self.shared_lemmas_applied,
            "detail": self.detail(),
            "transformation": self.outcome.transformation,
        }


@dataclass
class ScheduleResult:
    """Everything one scheduler run produced."""

    verdicts: List[PropertyVerdict] = field(default_factory=list)
    runtime: float = 0.0
    shared_bmc_queries: int = 0
    shared_lemmas_pooled: int = 0

    @property
    def aggregate(self) -> CheckResult:
        """UNSAFE if any property fails, SAFE only when every one is proved."""
        results = [v.result for v in self.verdicts]
        if CheckResult.UNSAFE in results:
            return CheckResult.UNSAFE
        if CheckResult.UNKNOWN in results:
            return CheckResult.UNKNOWN
        return CheckResult.SAFE

    @property
    def all_validated(self) -> bool:
        """True when no witness failed validation (skipped counts as good)."""
        return all(v.validated is not False for v in self.verdicts)

    def to_outcome(self) -> CheckOutcome:
        """Flatten the schedule into one Engine-protocol outcome."""
        stats = IC3Stats()
        frames = 0
        for verdict in self.verdicts:
            stats = stats.merge(verdict.outcome.stats)
            frames = max(frames, verdict.outcome.frames)
        stats.shared_unrolling_queries += self.shared_bmc_queries
        solved = sum(1 for v in self.verdicts if v.result.solved)
        return CheckOutcome(
            result=self.aggregate,
            runtime=self.runtime,
            frames=frames,
            stats=stats,
            engine="scheduler",
            reason=f"{solved}/{len(self.verdicts)} properties solved",
            properties=[v.as_dict() for v in self.verdicts],
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable record of the whole run."""
        return {
            "aggregate": self.aggregate.value,
            "runtime": round(self.runtime, 6),
            "shared_bmc_queries": self.shared_bmc_queries,
            "shared_lemmas_pooled": self.shared_lemmas_pooled,
            "properties": [v.as_dict() for v in self.verdicts],
        }

    def format_table(self) -> str:
        """Fixed-width per-property table for the CLI."""
        header = (
            f"{'#':>3s} {'prop':<6s} {'kind':<8s} {'verdict':<8s} "
            f"{'engine':<10s} {'time':>8s}  detail"
        )
        lines = [header, "-" * len(header)]
        for verdict in self.verdicts:
            lines.append(
                f"{verdict.obligation.number:>3d} "
                f"{verdict.obligation.label:<6s} "
                f"{verdict.obligation.kind:<8s} "
                f"{verdict.result.value:<8s} "
                f"{verdict.engine:<10s} "
                f"{verdict.runtime:>7.2f}s  "
                f"{verdict.detail()}"
            )
        lines.append("-" * len(header))
        lines.append(f"aggregate: {self.aggregate.value} ({self.runtime:.2f}s)")
        return "\n".join(lines)


@dataclass
class _PooledLemma:
    """One invariant clause available for sibling seeding."""

    index_clause: Tuple[int, ...]
    latch_indices: Set[int]
    source: str


class PropertyScheduler:
    """Runs every obligation of one AIG on a shared solving substrate."""

    def __init__(
        self,
        aig: AIG,
        *,
        engine: str = "ic3-pl",
        justice_engines: Sequence[str] = ("klive", "l2s"),
        options=None,
        reduce: bool = True,
        passes: Optional[Sequence[str]] = None,
        property_timeout: Optional[float] = None,
        share_lemmas: bool = True,
        share_unrollings: bool = True,
        shared_bmc_depth: int = 15,
        shared_bmc_fraction: float = 0.3,
        use_outputs_as_bad: bool = True,
        properties: Optional[Sequence[int]] = None,
        max_k: int = 16,
        max_depth: int = 50,
        validate: bool = True,
        frame_backend: Optional[str] = None,
        sat_backend: Optional[str] = None,
        **_ignored,
    ):
        # The default engine kinds (ic3*/bmc/kind/l2s/klive) register on
        # import of repro.engines; make sure that happened even when the
        # scheduler is used straight from repro.props.
        import repro.engines  # noqa: F401

        self.aig = aig
        self.engine = engine
        self.justice_engines = tuple(justice_engines)
        self.options = options
        self.reduce = reduce
        self.passes = passes
        self.property_timeout = property_timeout
        self.share_lemmas = share_lemmas
        self.share_unrollings = share_unrollings
        self.shared_bmc_depth = shared_bmc_depth
        self.shared_bmc_fraction = shared_bmc_fraction
        self.max_k = max_k
        self.max_depth = max_depth
        self.validate = validate
        self.frame_backend = frame_backend
        self.sat_backend = sat_backend

        all_obligations = enumerate_obligations(aig, use_outputs_as_bad)
        if not all_obligations:
            raise SchedulerError(
                "the AIG declares no properties (no bads, outputs or justice)"
            )
        if properties is None:
            self.obligations = all_obligations
        else:
            by_number = {ob.number: ob for ob in all_obligations}
            missing = [n for n in properties if n not in by_number]
            if missing:
                available = ", ".join(
                    f"{ob.number}={ob.label}" for ob in all_obligations
                )
                raise SchedulerError(
                    f"unknown property number(s) {missing}; available: {available}"
                )
            self.obligations = [by_number[n] for n in properties]

        self._pool: List[_PooledLemma] = []
        self._original_ts = None

    # ------------------------------------------------------------------
    def run(self, time_limit: Optional[float] = None) -> ScheduleResult:
        """Verify every scheduled obligation; returns one verdict each."""
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None
        result = ScheduleResult()
        verdicts: Dict[int, PropertyVerdict] = {}

        safety = [ob for ob in self.obligations if ob.is_safety]
        justice = [ob for ob in self.obligations if ob.is_justice]

        # Phase 1: one shared unrolling probes every safety property for
        # shallow counterexamples.
        if self.share_unrollings and len(safety) > 1:
            budget = None
            if time_limit is not None:
                budget = start + time_limit * self.shared_bmc_fraction
            resolved, queries = self._shared_bmc(safety, budget)
            result.shared_bmc_queries = queries
            verdicts.update(resolved)

        # Phase 2: remaining safety obligations, smallest cone first so
        # proved invariants seed the bigger siblings.
        remaining = [ob for ob in safety if ob.number not in verdicts]
        remaining.sort(key=lambda ob: (len(self._cone(ob)), ob.number))
        for position, obligation in enumerate(remaining):
            budget = self._budget(deadline, len(remaining) - position + len(justice))
            verdicts[obligation.number] = self._run_safety(obligation, budget)

        # Phase 3: justice obligations through the liveness engine ladder.
        for position, obligation in enumerate(justice):
            budget = self._budget(deadline, len(justice) - position)
            verdicts[obligation.number] = self._run_justice(obligation, budget)

        result.verdicts = [verdicts[ob.number] for ob in self.obligations]
        result.shared_lemmas_pooled = len(self._pool)
        result.runtime = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    # Phase 1: shared-unrolling BMC
    # ------------------------------------------------------------------
    def _shared_bmc(
        self, safety: List[PropertyObligation], deadline: Optional[float]
    ) -> Tuple[Dict[int, PropertyVerdict], int]:
        """Probe all safety obligations on one incremental unrolling."""
        unroller = Unroller(
            self.aig, init_as_assumption=True, backend=self.sat_backend or "default"
        )
        unresolved = list(safety)
        resolved: Dict[int, PropertyVerdict] = {}
        queries = 0
        spent_on: Dict[int, float] = {ob.number: 0.0 for ob in safety}
        for depth in range(self.shared_bmc_depth + 1):
            if deadline is not None and time.perf_counter() > deadline:
                break
            still = []
            for obligation in unresolved:
                if deadline is not None and time.perf_counter() > deadline:
                    still.append(obligation)
                    continue
                query_start = time.perf_counter()
                bad = unroller.bad_lit_at(depth, obligation.index)
                satisfiable = unroller.solver.solve(
                    unroller.init_assumptions() + [bad]
                )
                queries += 1
                spent_on[obligation.number] += time.perf_counter() - query_start
                if not satisfiable:
                    still.append(obligation)
                    continue
                model = unroller.solver.get_model()
                trace = CounterexampleTrace(
                    steps=[
                        TraceStep(
                            state=unroller.latch_cube_at(model, frame),
                            inputs=unroller.input_values_at(model, frame),
                        )
                        for frame in range(depth + 1)
                    ]
                )
                outcome = CheckOutcome(
                    result=CheckResult.UNSAFE,
                    runtime=spent_on[obligation.number],
                    frames=depth,
                    trace=trace,
                    engine="bmc",
                )
                validated = self._validate_safety(obligation, outcome)
                resolved[obligation.number] = PropertyVerdict(
                    obligation=obligation,
                    outcome=outcome,
                    engine="bmc(shared)",
                    runtime=spent_on[obligation.number],
                    validated=validated,
                )
            unresolved = still
            if not unresolved:
                break
        return resolved, queries

    # ------------------------------------------------------------------
    # Phase 2: per-property safety engines with lemma sharing
    # ------------------------------------------------------------------
    def _run_safety(
        self, obligation: PropertyObligation, budget: Optional[float]
    ) -> PropertyVerdict:
        start = time.perf_counter()
        shared = self._lemmas_for(obligation) if self.share_lemmas else []
        engine = create_engine(
            self.engine,
            self.aig,
            options=self.options,
            property_index=obligation.index,
            reduce=self.reduce,
            passes=self.passes,
            shared_lemmas=shared,
            frame_backend=self.frame_backend,
            sat_backend=self.sat_backend,
            max_depth=self.max_depth,
        )
        outcome = engine.check(time_limit=budget)
        runtime = time.perf_counter() - start
        validated = self._validate_safety(obligation, outcome)
        if (
            outcome.result == CheckResult.SAFE
            and outcome.certificate is not None
            and validated
        ):
            self._harvest(obligation, outcome)
        return PropertyVerdict(
            obligation=obligation,
            outcome=outcome,
            engine=outcome.winner or outcome.engine,
            runtime=runtime,
            validated=validated,
            shared_lemmas_applied=outcome.stats.shared_lemmas_applied,
        )

    def _validate_safety(
        self, obligation: PropertyObligation, outcome: CheckOutcome
    ) -> Optional[bool]:
        """Validate a safety witness against the original AIG.

        SAFE certificates are always checked (they gate the shared-lemma
        pool); traces only when ``validate`` is on.
        """
        try:
            if outcome.result == CheckResult.SAFE and outcome.certificate is not None:
                return check_certificate(
                    self.aig, outcome.certificate, property_index=obligation.index
                )
            if (
                self.validate
                and outcome.result == CheckResult.UNSAFE
                and outcome.trace is not None
            ):
                return check_counterexample(
                    self.aig, outcome.trace, property_index=obligation.index
                )
        except CertificateError:
            return False
        return None

    # ------------------------------------------------------------------
    # Phase 3: justice obligations
    # ------------------------------------------------------------------
    def _run_justice(
        self, obligation: PropertyObligation, budget: Optional[float]
    ) -> PropertyVerdict:
        start = time.perf_counter()
        last_outcome: Optional[CheckOutcome] = None
        last_engine = self.justice_engines[0] if self.justice_engines else "none"
        for position, kind in enumerate(self.justice_engines):
            slice_budget = None
            if budget is not None:
                elapsed = time.perf_counter() - start
                remaining = max(0.0, budget - elapsed)
                slice_budget = remaining / (len(self.justice_engines) - position)
            engine = create_engine(
                kind,
                self.aig,
                options=self.options,
                justice_index=obligation.index,
                reduce=self.reduce,
                passes=self.passes,
                max_k=self.max_k,
                max_depth=self.max_depth,
                frame_backend=self.frame_backend,
                sat_backend=self.sat_backend,
            )
            outcome = engine.check(time_limit=slice_budget)
            last_outcome, last_engine = outcome, kind
            if outcome.solved:
                break
        if last_outcome is None:
            last_outcome = CheckOutcome(
                result=CheckResult.UNKNOWN,
                engine=last_engine,
                reason="no justice engines configured (justice_engines is empty)",
            )
        runtime = time.perf_counter() - start
        validated = self._validate_justice(obligation, last_outcome)
        return PropertyVerdict(
            obligation=obligation,
            outcome=last_outcome,
            engine=last_engine,
            runtime=runtime,
            validated=validated,
        )

    def _validate_justice(
        self, obligation: PropertyObligation, outcome: Optional[CheckOutcome]
    ) -> Optional[bool]:
        if outcome is None:
            return None
        try:
            if outcome.result == CheckResult.UNSAFE and outcome.lasso is not None:
                return check_lasso(self.aig, outcome.lasso, obligation.index)
            if (
                self.validate
                and outcome.result == CheckResult.SAFE
                and outcome.certificate is not None
                and outcome.transformation is not None
            ):
                transformation = outcome.transformation
                return check_liveness_certificate(
                    self.aig,
                    outcome.certificate,
                    justice_index=obligation.index,
                    method=str(transformation.get("kind", "l2s")),
                    max_k=int(transformation.get("max_k", self.max_k)),
                    k=int(transformation.get("k", 0)),
                )
        except CertificateError:
            return False
        return None

    # ------------------------------------------------------------------
    # Shared-lemma pool
    # ------------------------------------------------------------------
    def _cone(self, obligation: PropertyObligation) -> Set[int]:
        """Latch indices in the obligation's cone of influence."""
        cone_vars = coi_variables(self.aig, property_index=obligation.index)
        return {
            index
            for index, latch in enumerate(self.aig.latches)
            if (latch.lit >> 1) in cone_vars
        }

    def _latch_index_of_var(self) -> Dict[int, int]:
        if self._original_ts is None:
            from repro.ts.system import TransitionSystem

            self._original_ts = TransitionSystem(
                self.aig, property_index=0, warn_on_ambiguity=False
            )
        return {
            var: index
            for index, var in enumerate(self._original_ts.latch_vars)
        }

    def _harvest(self, obligation: PropertyObligation, outcome: CheckOutcome) -> None:
        """Pool a validated certificate's clauses for sibling seeding."""
        if not self.share_lemmas:
            return
        index_of = self._latch_index_of_var()
        for clause in outcome.certificate.clauses:
            index_clause = []
            ok = True
            for lit in clause:
                index = index_of.get(abs(lit))
                if index is None:
                    ok = False
                    break
                index_clause.append((index + 1) if lit > 0 else -(index + 1))
            if ok and index_clause:
                self._pool.append(
                    _PooledLemma(
                        index_clause=tuple(index_clause),
                        latch_indices={abs(lit) - 1 for lit in index_clause},
                        source=obligation.label,
                    )
                )

    def _lemmas_for(self, obligation: PropertyObligation) -> List[Tuple[int, ...]]:
        """Pooled clauses that live entirely inside the obligation's cone."""
        if not self._pool:
            return []
        cone = self._cone(obligation)
        return [
            lemma.index_clause
            for lemma in self._pool
            if lemma.latch_indices <= cone
        ]

    # ------------------------------------------------------------------
    def _budget(
        self, deadline: Optional[float], slots_left: int
    ) -> Optional[float]:
        """Fair share of the remaining wall clock for the next obligation."""
        if deadline is None:
            return self.property_timeout
        remaining = max(0.0, deadline - time.perf_counter())
        share = remaining / max(1, slots_left)
        if self.property_timeout is not None:
            share = min(share, self.property_timeout)
        return share


class SchedulerEngine:
    """The scheduler behind the Engine protocol (one aggregate outcome)."""

    name = "scheduler"

    def __init__(
        self,
        aig: AIG,
        options=None,
        property_index: Optional[int] = None,
        properties: Optional[Sequence[int]] = None,
        **kwargs,
    ):
        if properties is None and property_index is not None:
            properties = [property_index]
        kwargs.pop("shared_lemmas", None)
        self.scheduler = PropertyScheduler(
            aig, options=options, properties=properties, **kwargs
        )
        self.result: Optional[ScheduleResult] = None

    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        self.result = self.scheduler.run(time_limit=time_limit)
        return self.result.to_outcome()


# The "scheduler" engine kind is registered by repro.engines.liveness
# (lazily, to keep repro.props importable on its own without a cycle).
