"""Independent validation of liveness witnesses.

UNSAFE justice verdicts carry a :class:`~repro.core.result.LassoTrace`;
:func:`check_lasso` replays it on the *original* AIG by pure simulation
and checks loop closure, the recurrence of every justice literal and
fairness constraint inside the loop, and the invariant constraints on
every step — so a bug in a liveness engine cannot validate its own
output.

SAFE justice verdicts carry a safety certificate over the *compiled*
circuit (liveness-to-safety or the k-liveness counter).  Both compilers
are deterministic, so :func:`check_liveness_certificate` recompiles the
original AIG and validates the certificate against the rebuilt circuit
with the stock :func:`repro.core.invariant.check_certificate` oracle.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.aiger.aig import AIG
from repro.core.invariant import CertificateError, check_certificate
from repro.core.result import Certificate, LassoTrace
from repro.props.klive import kliveness
from repro.props.l2s import liveness_to_safety


def check_lasso(
    aig: AIG,
    lasso: LassoTrace,
    justice_index: Optional[int] = None,
) -> bool:
    """Replay a lasso counterexample on the AIG by simulation.

    State cubes are over latch *indices* (literal ``±(index + 1)`` refers
    to latch ``index``).  The checks: the first state is an initial
    state, every recorded state agrees with simulation, applying the last
    step's inputs returns the system to the loop-start state, every
    justice literal of the violated property and every fairness
    constraint holds at some step inside the loop, and every invariant
    constraint holds on every step.  Raises :class:`CertificateError` on
    any failure, returns True on success.
    """
    index = lasso.justice_index if justice_index is None else justice_index
    if not lasso.steps:
        raise CertificateError("empty lasso trace")
    if not 0 <= lasso.loop_start < len(lasso.steps):
        raise CertificateError(
            f"lasso loop start {lasso.loop_start} out of range for "
            f"{len(lasso.steps)} steps"
        )
    if not 0 <= index < len(aig.justice):
        raise CertificateError(
            f"justice index {index} out of range (the AIG declares "
            f"{len(aig.justice)} justice properties)"
        )

    # Initial state: reset values overridden by the first cube (needed
    # for latches without a defined reset), and checked against them.
    initial: Dict[int, bool] = {}
    for latch in aig.latches:
        initial[latch.lit] = bool(latch.init) if latch.init is not None else False
    for lit in lasso.steps[0].state:
        latch_index = abs(lit) - 1
        if not 0 <= latch_index < len(aig.latches):
            continue
        latch = aig.latches[latch_index]
        if latch.init is not None and (lit > 0) != bool(latch.init):
            raise CertificateError("the first lasso state is not an initial state")
        initial[latch.lit] = lit > 0

    # One extra simulation step (with the loop-start inputs) exposes the
    # state *after* the final step, which must close the loop.
    input_sequence = lasso.input_sequence() + [
        lasso.steps[lasso.loop_start].inputs
    ]
    records = aig.simulate(input_sequence, initial_latches=initial)

    for step_index, (step, record) in enumerate(zip(lasso.steps, records)):
        for lit in step.state:
            latch_index = abs(lit) - 1
            if not 0 <= latch_index < len(aig.latches):
                continue
            latch = aig.latches[latch_index]
            if record["latches"][latch.lit] != (lit > 0):
                raise CertificateError(
                    f"lasso step {step_index} disagrees with simulation on "
                    f"latch {latch_index}"
                )

    closing = records[len(lasso.steps)]["latches"]
    reopening = records[lasso.loop_start]["latches"]
    for latch in aig.latches:
        if closing[latch.lit] != reopening[latch.lit]:
            raise CertificateError(
                f"the lasso does not close: latch {latch.lit} differs between "
                f"the loop-start state and the state after the final step"
            )

    loop_records = records[lasso.loop_start : len(lasso.steps)]
    for position in range(len(aig.justice[index])):
        if not any(record["justice"][index][position] for record in loop_records):
            raise CertificateError(
                f"justice literal {position} of property {index} never holds "
                f"inside the loop"
            )
    for position in range(len(aig.fairness)):
        if not any(record["fairness"][position] for record in loop_records):
            raise CertificateError(
                f"fairness constraint {position} never holds inside the loop"
            )

    for step_index, record in enumerate(records[: len(lasso.steps)]):
        if not all(record["constraints"]):
            raise CertificateError(
                f"an invariant constraint fails at lasso step {step_index}"
            )
    return True


def check_liveness_certificate(
    aig: AIG,
    certificate: Certificate,
    justice_index: int = 0,
    method: str = "l2s",
    max_k: int = 16,
    k: int = 0,
) -> bool:
    """Validate a liveness proof by recompiling the deterministic circuit.

    ``method`` selects the compiler the proof was produced on: ``"l2s"``
    validates against the liveness-to-safety circuit's single bad,
    ``"klive"`` against bad index ``k`` of the k-liveness counter circuit
    compiled with the same ``max_k``.  Raises :class:`CertificateError`
    (via :func:`check_certificate`) on failure.
    """
    if method == "l2s":
        compiled = liveness_to_safety(aig, justice_index)
        return check_certificate(compiled.aig, certificate, property_index=0)
    if method == "klive":
        compiled = kliveness(aig, justice_index, max_k=max_k)
        return check_certificate(compiled.aig, certificate, property_index=k)
    raise CertificateError(f"unknown liveness certificate method {method!r}")
