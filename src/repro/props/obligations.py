"""Enumeration of the verification obligations an AIG carries.

An AIGER 1.9 file can declare many properties at once: bad-state (safety)
properties, legacy outputs read as bad signals, and justice (liveness)
properties refined by global fairness constraints.  The scheduler works
on a flat, deterministically numbered list of
:class:`PropertyObligation` records — bads (or outputs standing in for
them) first, justice properties after — so ``--property N`` means the
same thing everywhere: CLI, scheduler, manifests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.aiger.aig import AIG

BAD = "bad"
OUTPUT = "output"
JUSTICE = "justice"


@dataclass(frozen=True)
class PropertyObligation:
    """One verification obligation of a multi-property model."""

    number: int
    """Global obligation number (position in the scheduler's batch)."""

    kind: str
    """``bad``, ``output`` (output read as a bad signal) or ``justice``."""

    index: int
    """Property index inside its own section — the ``property_index`` /
    ``justice_index`` engines receive."""

    label: str
    """AIGER-style short name: ``b0``, ``o1``, ``j0``, ..."""

    @property
    def is_safety(self) -> bool:
        """True for bad/output obligations (checked by safety engines)."""
        return self.kind in (BAD, OUTPUT)

    @property
    def is_justice(self) -> bool:
        """True for justice obligations (checked by liveness engines)."""
        return self.kind == JUSTICE

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.label} ({self.kind} property {self.index})"


def enumerate_obligations(
    aig: AIG, use_outputs_as_bad: bool = True
) -> List[PropertyObligation]:
    """The flat obligation list of a model, in canonical order.

    Bads win over outputs (the AIGER 1.9 ``B`` section is authoritative;
    outputs are only read as bad signals when no bads are declared — see
    :func:`repro.ts.system.select_bads` for the precedence warning).
    """
    obligations: List[PropertyObligation] = []
    if aig.bads:
        for index in range(len(aig.bads)):
            obligations.append(
                PropertyObligation(
                    number=len(obligations), kind=BAD, index=index, label=f"b{index}"
                )
            )
    elif use_outputs_as_bad:
        for index in range(len(aig.outputs)):
            obligations.append(
                PropertyObligation(
                    number=len(obligations),
                    kind=OUTPUT,
                    index=index,
                    label=f"o{index}",
                )
            )
    for index in range(len(aig.justice)):
        obligations.append(
            PropertyObligation(
                number=len(obligations), kind=JUSTICE, index=index, label=f"j{index}"
            )
        )
    return obligations
