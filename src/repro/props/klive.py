"""k-liveness transformation (Claessen–Sörensson).

A justice property holds iff, for some bound ``k``, no run makes the
"every tracked literal has been seen again" event happen more than ``k``
times: infinitely many such events are exactly a run in which every
justice literal and every fairness constraint recurs infinitely often.
For finite-state systems such a ``k`` always exists when the property
holds (a run with more events than states contains a violating lasso),
so raising ``k`` until a safety engine proves the bound is a complete
*proof* procedure — refutation is the job of the liveness-to-safety
sibling (:mod:`repro.props.l2s`).

The compiler emits ONE circuit for the whole sweep: a monitor that
pulses ``tick`` whenever all tracked literals have been observed (then
resets), a saturating tick counter, and ``max_k + 1`` bad literals where
``bad_k`` is "the counter reached ``k + 1``".  The per-``k`` runs of
:class:`repro.engines.liveness.KLivenessEngine` are then just different
``property_index`` selections on the same AIG — the incremental-bound
idiom at the circuit level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.aiger.aig import AIG
from repro.props.transform import CircuitCopy, clone_circuit, justice_literals


@dataclass
class KLiveResult:
    """The compiled counter circuit: bad ``k`` asserts "more than k ticks"."""

    original: AIG
    aig: AIG
    justice_index: int
    max_k: int
    num_tracked: int
    counter_bits: int
    aux_latches: int

    def summary(self) -> Dict[str, object]:
        """JSON-serializable description for manifests and reports."""
        return {
            "kind": "klive",
            "justice_index": self.justice_index,
            "max_k": self.max_k,
            "tracked_literals": self.num_tracked,
            "counter_bits": self.counter_bits,
            "aux_latches": self.aux_latches,
            "original": {
                "inputs": self.original.num_inputs,
                "latches": self.original.num_latches,
                "ands": self.original.num_ands,
            },
            "transformed": {
                "inputs": self.aig.num_inputs,
                "latches": self.aig.num_latches,
                "ands": self.aig.num_ands,
            },
        }


def kliveness(aig: AIG, justice_index: int = 0, max_k: int = 16) -> KLiveResult:
    """Compile one justice property into the k-liveness counter circuit."""
    if max_k < 0:
        raise ValueError("max_k must be non-negative")
    tracked = justice_literals(aig, justice_index)
    copy: CircuitCopy = clone_circuit(
        aig,
        comment=f"k-liveness of justice property {justice_index} (max_k={max_k})",
    )
    new = copy.aig
    aux_before = new.num_latches

    # The recurrence monitor: seen_i remembers literal i occurred since
    # the last tick; tick fires when every literal has been seen (or is
    # being seen right now) and resets the flags.
    seen = [
        new.add_latch(init=0, name=f"klive_seen{index}")
        for index in range(len(tracked))
    ]
    pending = [
        new.or_gate(flag, copy.map_lit(lit)) for flag, lit in zip(seen, tracked)
    ]
    tick = new.and_many(pending)
    for flag, pend in zip(seen, pending):
        new.set_latch_next(flag, new.add_and(new.negate(tick), pend))

    # Saturating tick counter; cap = max_k + 1 so every bad_k below is
    # reached by exact increments, never jumped over.
    cap = max_k + 1
    counter_bits = max(1, cap.bit_length())
    count = [
        new.add_latch(init=0, name=f"klive_count{bit}")
        for bit in range(counter_bits)
    ]
    incremented = new.increment(count)
    at_cap = new.equal_const(count, cap)
    advance = new.add_and(tick, new.negate(at_cap))
    for bit, latch in enumerate(count):
        new.set_latch_next(latch, new.mux(advance, incremented[bit], latch))

    for k in range(max_k + 1):
        new.add_bad(new.equal_const(count, k + 1))
    new.validate()

    return KLiveResult(
        original=aig,
        aig=new,
        justice_index=justice_index,
        max_k=max_k,
        num_tracked=len(tracked),
        counter_bits=counter_bits,
        aux_latches=new.num_latches - aux_before,
    )
