"""Multi-property and liveness verification subsystem.

This package turns one AIGER 1.9 model into a scheduled batch of
verification obligations and answers every one of them in a single run:

* :mod:`repro.props.obligations` — flat enumeration of the bad, output
  and justice properties a model declares;
* :mod:`repro.props.l2s` — the liveness-to-safety compiler
  (Biere–Artho–Schuppan): a justice property becomes one safety bad on
  an augmented circuit, and safety counterexamples lift back to lasso
  traces on the original AIG;
* :mod:`repro.props.klive` — the k-liveness compiler
  (Claessen–Sörensson): a recurrence monitor plus a saturating tick
  counter with one bad literal per bound ``k``;
* :mod:`repro.props.witness` — independent validation of lasso
  counterexamples (simulation) and liveness certificates
  (deterministic recompilation);
* :mod:`repro.props.scheduler` — the :class:`PropertyScheduler`, which
  probes all safety properties on one shared BMC unrolling, seeds
  invariants proved for one property into sibling IC3 runs on the same
  cone, and runs justice obligations through the k-liveness/l2s engine
  ladder.

Typical use::

    from repro.aiger import read_aiger
    from repro.props import PropertyScheduler

    result = PropertyScheduler(read_aiger("model.aag")).run(time_limit=60)
    print(result.format_table())
"""

from repro.props.klive import KLiveResult, kliveness
from repro.props.l2s import L2SResult, liveness_to_safety
from repro.props.obligations import PropertyObligation, enumerate_obligations
from repro.props.scheduler import (
    PropertyScheduler,
    PropertyVerdict,
    ScheduleResult,
    SchedulerEngine,
    SchedulerError,
)
from repro.props.transform import CircuitCopy, TransformError, clone_circuit
from repro.props.witness import check_lasso, check_liveness_certificate

__all__ = [
    "CircuitCopy",
    "KLiveResult",
    "L2SResult",
    "PropertyObligation",
    "PropertyScheduler",
    "PropertyVerdict",
    "ScheduleResult",
    "SchedulerEngine",
    "SchedulerError",
    "TransformError",
    "check_lasso",
    "check_liveness_certificate",
    "clone_circuit",
    "enumerate_obligations",
    "kliveness",
    "liveness_to_safety",
]
