"""Trace export, ingestion and stitching.

The on-disk formats:

* **JSONL** — one Chrome trace event per line; what sinks and flight
  recorders write incrementally.  Readers tolerate a truncated final
  line (the signature of a SIGKILLed writer).
* **Chrome trace-event JSON** — ``{"traceEvents": [...]}``, loadable in
  Perfetto / ``chrome://tracing``; what ``--trace-out`` produces and
  ``repro-check trace-report`` consumes (it reads JSONL too).

:func:`stitch` merges event lists from many processes into one timeline:
events already carry ``pid``/``tid`` and share the CLOCK_MONOTONIC time
base, so merging is a sort, and per-process metadata events name the
tracks.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.tracer import FLIGHT_PREFIX

_EVENT_PHASES = {"X", "i", "B", "E", "C", "M"}
_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def to_chrome_document(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Wrap events in the Chrome trace-event JSON object form."""
    return {
        "traceEvents": sorted(events, key=lambda e: (e.get("ts", 0), e.get("dur", 0))),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str, events: Iterable[Dict[str, Any]]) -> None:
    """Write events as a Perfetto-loadable Chrome trace file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_document(events), handle, separators=(",", ":"))
        handle.write("\n")


def read_jsonl_events(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL event file, tolerating a truncated last line."""
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    # A writer killed mid-line leaves one partial record;
                    # everything before it is still usable.
                    continue
                if isinstance(event, dict):
                    events.append(event)
    except OSError:
        return []
    return events


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Read either a Chrome trace JSON document or a JSONL event file.

    Both formats open with ``{``, so detection is by shape: a document
    that parses as one JSON object carrying ``traceEvents`` is Chrome
    JSON; anything else (including a one-line event file) is JSONL.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError:
        return read_jsonl_events(path)
    if isinstance(document, dict) and "traceEvents" in document:
        events = document["traceEvents"]
        return [event for event in events if isinstance(event, dict)]
    return read_jsonl_events(path)


def collect_worker_events(directory: str) -> List[Dict[str, Any]]:
    """Gather every worker-written event file under ``directory``.

    Flight-recorder dumps are only read when the worker's full sink file
    is absent (the two would otherwise duplicate the ring's events).
    """
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    sinks = [n for n in names if n.endswith(".jsonl") and not n.startswith(FLIGHT_PREFIX)]
    sink_pids = {name.rsplit("-", 1)[-1] for name in sinks}
    events: List[Dict[str, Any]] = []
    for name in sinks:
        events.extend(read_jsonl_events(os.path.join(directory, name)))
    for name in names:
        if not name.startswith(FLIGHT_PREFIX) or not name.endswith(".jsonl"):
            continue
        if name[len(FLIGHT_PREFIX):].rsplit("-", 1)[-1] in sink_pids:
            continue
        events.extend(read_jsonl_events(os.path.join(directory, name)))
    return events


def stitch(event_groups: Iterable[List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    """Merge per-process event lists into one timestamp-ordered timeline."""
    merged: List[Dict[str, Any]] = []
    for group in event_groups:
        merged.extend(group)
    merged.sort(key=lambda e: (e.get("ts", 0), e.get("pid", 0), e.get("tid", 0)))
    return merged


def validate_chrome_trace(document: Any) -> List[str]:
    """Validate a Chrome trace-event document; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be a JSON object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document lacks a traceEvents array"]
    for position, event in enumerate(events):
        prefix = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{prefix}: not an object")
            continue
        for key in _REQUIRED_KEYS:
            if key not in event:
                problems.append(f"{prefix}: missing required key {key!r}")
        phase = event.get("ph")
        if phase is not None and phase not in _EVENT_PHASES:
            problems.append(f"{prefix}: unknown phase {phase!r}")
        if not isinstance(event.get("name", ""), str):
            problems.append(f"{prefix}: name must be a string")
        for key in ("ts", "dur"):
            value = event.get(key)
            if value is not None and not isinstance(value, (int, float)):
                problems.append(f"{prefix}: {key} must be a number")
        if phase == "X":
            if "dur" not in event:
                problems.append(f"{prefix}: complete event lacks dur")
            elif isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
                problems.append(f"{prefix}: negative dur")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{prefix}: args must be an object")
        if len(problems) >= 50:
            problems.append("... (further problems suppressed)")
            break
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Validate a trace file on disk (Chrome JSON or JSONL)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read(1)
            while head and head.isspace():
                head = handle.read(1)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if head == "{":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
        return validate_chrome_trace(document)
    return validate_chrome_trace(to_chrome_document(read_jsonl_events(path)))


def wall_span_us(events: List[Dict[str, Any]]) -> Optional[float]:
    """Total wall-clock extent of a timeline in microseconds."""
    stamps = [e["ts"] for e in events if isinstance(e.get("ts"), (int, float))]
    if not stamps:
        return None
    ends = [
        e["ts"] + e.get("dur", 0)
        for e in events
        if isinstance(e.get("ts"), (int, float))
        and isinstance(e.get("dur", 0), (int, float))
    ]
    return max(ends) - min(stamps)
