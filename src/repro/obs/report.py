"""Hotspot aggregation over traces.

Turns a timeline of Chrome complete events into a per-phase table:
inclusive time (span durations as recorded), *self* time (inclusive
minus the time spent in nested spans on the same process/thread — the
number that sums to wall clock without double counting), span counts and
shares.  ``repro-check trace-report`` prints the result; tests and the
CI trace-smoke gate consume the raw rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.obs.export import wall_span_us


@dataclass
class PhaseRow:
    """Aggregated numbers of one phase (event category)."""

    phase: str
    spans: int = 0
    instants: int = 0
    inclusive_us: float = 0.0
    self_us: float = 0.0

    @property
    def inclusive_ms(self) -> float:
        return self.inclusive_us / 1000.0

    @property
    def self_ms(self) -> float:
        return self.self_us / 1000.0


def _self_times(events: List[Dict[str, Any]]) -> Dict[int, float]:
    """Exclusive duration of every complete event, by event index.

    Events are grouped per (pid, tid) and processed in start order with
    a span stack: a span's self time is its duration minus the durations
    of its direct children.  Identical-timestamp nesting resolves by
    longer-span-first, matching how the events were recorded.
    """
    self_us: Dict[int, float] = {}
    by_track: Dict[Any, List[int]] = {}
    for index, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            continue
        by_track.setdefault((event.get("pid"), event.get("tid")), []).append(index)

    for indices in by_track.values():
        indices.sort(key=lambda i: (events[i]["ts"], -events[i].get("dur", 0)))
        stack: List[int] = []  # indices of open enclosing spans
        for index in indices:
            start = events[index]["ts"]
            duration = events[index].get("dur", 0) or 0
            while stack and events[stack[-1]]["ts"] + (
                events[stack[-1]].get("dur", 0) or 0
            ) <= start:
                stack.pop()
            self_us[index] = float(duration)
            if stack:
                self_us[stack[-1]] -= duration
            stack.append(index)
    return self_us


def hotspots(events: List[Dict[str, Any]]) -> List[PhaseRow]:
    """Aggregate a timeline into per-phase rows, largest self time first."""
    self_us = _self_times(events)
    rows: Dict[str, PhaseRow] = {}
    for index, event in enumerate(events):
        phase = str(event.get("cat") or "uncategorized")
        row = rows.setdefault(phase, PhaseRow(phase=phase))
        if event.get("ph") == "X":
            row.spans += 1
            row.inclusive_us += float(event.get("dur", 0) or 0)
            row.self_us += max(0.0, self_us.get(index, 0.0))
        elif event.get("ph") == "i":
            row.instants += 1
    return sorted(rows.values(), key=lambda r: r.self_us, reverse=True)


def format_report(events: List[Dict[str, Any]]) -> str:
    """Render the hotspot table plus wall-clock coverage summary."""
    rows = hotspots(events)
    wall_us = wall_span_us(events) or 0.0
    total_self = sum(row.self_us for row in rows)
    header = (
        f"{'phase':<14s} {'spans':>8s} {'instants':>9s} "
        f"{'total ms':>12s} {'self ms':>12s} {'self %':>8s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        share = 100.0 * row.self_us / total_self if total_self else 0.0
        lines.append(
            f"{row.phase:<14s} {row.spans:>8d} {row.instants:>9d} "
            f"{row.inclusive_ms:>12.2f} {row.self_ms:>12.2f} {share:>7.1f}%"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'wall clock':<14s} {wall_us / 1000.0:>{len(header) - 15}.2f} ms"
        f"  (self-time coverage: "
        f"{100.0 * total_self / wall_us if wall_us else 0.0:.1f}%)"
    )
    return "\n".join(lines)


def phase_totals(events: List[Dict[str, Any]]) -> Dict[str, float]:
    """Per-phase self time in seconds (machine-readable report form)."""
    return {row.phase: row.self_us / 1e6 for row in hotspots(events)}


__all__: Sequence[str] = ("PhaseRow", "hotspots", "format_report", "phase_totals")
