"""Live progress heartbeats from worker processes to their parent.

The tracer (:mod:`repro.obs.tracer`) answers *what happened* after a run;
this module answers *what is happening right now*: engines publish cheap
structured progress (IC3 frame count, lemma/obligation totals, BMC
bound, k-induction ``k``, portfolio member states, lembus sharing
counters) into a per-process :class:`Heartbeat`, and a background
publisher thread writes the current snapshot — plus worker RSS/CPU
sampled from ``/proc`` — to ``hb-<role>-<pid>.json`` in a shared
directory at a fixed interval, via an atomic ``mkstemp`` + ``rename`` so
readers never see a torn file.

The parent side (:class:`HeartbeatMonitor`) lists that directory and
reads the records.  Timestamps are :func:`time.monotonic`, which is
CLOCK_MONOTONIC on Linux and therefore shared across the processes of
one run — ``monitor.age(record)`` is a real cross-process staleness
measure, immune to wall-clock steps.  A record whose age exceeds the
stall limit while its worker is busy means the *publisher thread* went
silent: under CPython's GIL the thread keeps beating through the longest
SAT call (the interpreter preempts every few milliseconds), so silence
indicates a frozen (SIGSTOP), livelocked-in-C, or dead process — exactly
what the serve dispatcher's stall watchdog wants to know *before* the
hard deadline fires.

The same three design constraints as the tracer apply, the first one
verbatim: **disabled heartbeats must cost nothing**.  The module-level
current heartbeat defaults to :data:`NULL_HEARTBEAT`, whose ``update``
is a constant-time no-op, and every instrumentation site guards argument
construction behind ``hb.enabled``.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

HEARTBEAT_DIR_ENV = "REPRO_HEARTBEAT_DIR"
"""Environment variable through which a parent points worker processes
at the shared heartbeat directory."""

HEARTBEAT_PREFIX = "hb-"
"""File-name prefix of per-worker heartbeat records."""

DEFAULT_INTERVAL = 0.25
"""Default publisher period in seconds: fast enough that a 1 s stall
limit has four missed beats behind it, slow enough to be free."""

# ``/proc/self/stat`` field indexes (after the comm field) for utime and
# stime, and the kernel tick length; both gated on /proc existing so the
# module stays importable on non-Linux hosts.
_CLOCK_TICKS = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100


def _proc_sample() -> Dict[str, float]:
    """Worker RSS (kB) and cumulative CPU seconds from ``/proc/self``."""
    sample: Dict[str, float] = {}
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            rss_pages = int(handle.read().split()[1])
        sample["rss_kb"] = rss_pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        pass
    try:
        with open("/proc/self/stat", "r", encoding="ascii") as handle:
            stat = handle.read()
        # comm may contain spaces; fields resume after the closing paren.
        fields = stat[stat.rindex(")") + 2 :].split()
        utime, stime = int(fields[11]), int(fields[12])
        sample["cpu_seconds"] = round((utime + stime) / _CLOCK_TICKS, 3)
    except (OSError, ValueError, IndexError):
        pass
    return sample


class NullHeartbeat:
    """The disabled heartbeat: every operation is a constant-time no-op."""

    __slots__ = ()
    enabled = False

    def update(self, **fields: Any) -> None:
        return None

    def reset(self, **fields: Any) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        return None


NULL_HEARTBEAT = NullHeartbeat()


class Heartbeat:
    """Per-process progress record with an optional file publisher.

    ``update(**fields)`` merges fields under a lock (a few dict writes —
    safe to call from frame-extension loops); ``reset(**fields)``
    replaces them (a serve worker starting its next job).  With ``path``
    set, a daemon thread republishes every ``interval`` seconds whether
    or not anything changed — the *sequence number advancing* is the
    liveness signal, the fields are the progress payload.
    """

    enabled = True

    def __init__(
        self,
        *,
        role: str = "worker",
        path: Optional[str] = None,
        interval: float = DEFAULT_INTERVAL,
        metrics_snapshot: Optional[Callable[[], Dict[str, Any]]] = None,
    ):
        self.role = role
        self.path = path
        self.interval = max(0.01, interval)
        self.pid = os.getpid()
        self._fields: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._metrics_snapshot = metrics_snapshot
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if path is not None:
            self.publish()
            self._thread = threading.Thread(
                target=self._publish_loop, name=f"heartbeat-{role}", daemon=True
            )
            self._thread.start()

    # -- producer side --------------------------------------------------
    def update(self, **fields: Any) -> None:
        with self._lock:
            self._fields.update(fields)

    def reset(self, **fields: Any) -> None:
        with self._lock:
            self._fields = dict(fields)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            fields = dict(self._fields)
            seq = self._seq
        record: Dict[str, Any] = {
            "role": self.role,
            "pid": self.pid,
            "seq": seq,
            "time_mono": time.monotonic(),
            "time_wall": time.time(),
            "progress": fields,
        }
        record.update(_proc_sample())
        if self._metrics_snapshot is not None:
            try:
                record["metrics"] = self._metrics_snapshot()
            except Exception:  # noqa: BLE001 - telemetry must never kill the host
                pass
        return record

    def publish(self) -> None:
        """Write one snapshot now (atomically); no-op without a path."""
        if self.path is None:
            return
        record = self.snapshot()
        directory = os.path.dirname(self.path) or "."
        try:
            fd, tmp = tempfile.mkstemp(prefix=".hb-", dir=directory)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - heartbeats must never kill the host
            return
        with self._lock:
            self._seq += 1

    def _publish_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.publish()

    def close(self) -> None:
        """Stop the publisher and leave one final snapshot behind."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None
        self.publish()


# ----------------------------------------------------------------------
# The per-process current heartbeat
# ----------------------------------------------------------------------
_current: Any = NULL_HEARTBEAT


def get_heartbeat() -> Any:
    """The process's current heartbeat (:data:`NULL_HEARTBEAT` when off)."""
    return _current


def install_heartbeat(heartbeat: Heartbeat) -> Heartbeat:
    """Make ``heartbeat`` the process-wide current heartbeat."""
    global _current
    _current = heartbeat
    return heartbeat


def uninstall_heartbeat() -> Any:
    """Disable heartbeats; returns the heartbeat that was installed."""
    global _current
    previous = _current
    _current = NULL_HEARTBEAT
    return previous


# ----------------------------------------------------------------------
# Worker-process activation
# ----------------------------------------------------------------------
def heartbeat_path(directory: str, role: str, pid: Optional[int] = None) -> str:
    """The canonical record path for one worker."""
    return os.path.join(
        directory, f"{HEARTBEAT_PREFIX}{role}-{pid if pid is not None else os.getpid()}.json"
    )


def maybe_install_worker_heartbeat(
    role: str, *, interval: float = DEFAULT_INTERVAL
) -> Optional[Heartbeat]:
    """Install a publishing heartbeat when the parent requested one.

    Returns None (and installs nothing) when :data:`HEARTBEAT_DIR_ENV`
    is unset — mirrors :func:`repro.obs.tracer.maybe_install_worker_tracer`,
    and is deliberately independent of it: a worker heartbeats fine
    without ever installing a tracer.
    """
    directory = os.environ.get(HEARTBEAT_DIR_ENV)
    if not directory:
        return None
    try:
        os.makedirs(directory, exist_ok=True)
        heartbeat = Heartbeat(
            role=role, path=heartbeat_path(directory, role), interval=interval
        )
    except OSError:  # pragma: no cover - unwritable heartbeat dir
        return None
    return install_heartbeat(heartbeat)


def shutdown_worker_heartbeat() -> None:
    """Close and uninstall the heartbeat installed by this process."""
    heartbeat = uninstall_heartbeat()
    if isinstance(heartbeat, Heartbeat):
        heartbeat.close()


# ----------------------------------------------------------------------
# Parent side: monitor + session
# ----------------------------------------------------------------------
class HeartbeatMonitor:
    """Reads the heartbeat records of a shared directory.

    Tolerant by construction: a missing directory means no records, a
    half-written or non-JSON file is skipped (publishers rename
    atomically, but a reader may race a crashing worker's debris).
    """

    def __init__(self, directory: str):
        self.directory = directory

    def read_all(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return records
        for name in names:
            if not name.startswith(HEARTBEAT_PREFIX) or not name.endswith(".json"):
                continue
            record = self._read(os.path.join(self.directory, name))
            if record is not None:
                records.append(record)
        return records

    def latest_for(self, pid: int) -> Optional[Dict[str, Any]]:
        """The record of one worker process, or None."""
        for record in self.read_all():
            if record.get("pid") == pid:
                return record
        return None

    @staticmethod
    def _read(path: str) -> Optional[Dict[str, Any]]:
        try:
            with io.open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    @staticmethod
    def age(record: Dict[str, Any]) -> float:
        """Seconds since the record was published (CLOCK_MONOTONIC)."""
        stamp = record.get("time_mono")
        if not isinstance(stamp, (int, float)):
            return float("inf")
        return max(0.0, time.monotonic() - stamp)

    def stalled(self, record: Dict[str, Any], limit: float) -> bool:
        return self.age(record) > limit


@contextmanager
def heartbeat_session(directory: Optional[str] = None) -> Iterator[HeartbeatMonitor]:
    """Point child workers at a heartbeat directory for one command.

    Exports :data:`HEARTBEAT_DIR_ENV` (creating a temp directory when
    none is given), yields a monitor over it, then restores the
    environment and removes the temp directory.
    """
    own_dir = directory is None
    workdir = directory or tempfile.mkdtemp(prefix="repro-hb-")
    previous = os.environ.get(HEARTBEAT_DIR_ENV)
    os.environ[HEARTBEAT_DIR_ENV] = workdir
    try:
        yield HeartbeatMonitor(workdir)
    finally:
        os.environ.pop(HEARTBEAT_DIR_ENV, None)
        if previous is not None:
            os.environ[HEARTBEAT_DIR_ENV] = previous
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# Live status line
# ----------------------------------------------------------------------
def format_progress(record: Dict[str, Any]) -> str:
    """One worker's progress fields as a compact ``k=v`` run."""
    progress = record.get("progress", {}) or {}
    parts: List[str] = []
    engine = progress.get("engine")
    if engine:
        parts.append(str(engine))
    for key in ("case", "config", "job", "frame", "bound", "k", "lemmas",
                "obligations", "sat_calls", "published", "imported"):
        value = progress.get(key)
        if value is None:
            continue
        if key in ("case", "config", "job"):
            parts.append(f"{key}={value}")
        else:
            parts.append(f"{key}={value}")
    members = progress.get("members")
    if isinstance(members, dict) and members:
        states = ",".join(f"{name}:{state}" for name, state in sorted(members.items()))
        parts.append(f"members[{states}]")
    rss = record.get("rss_kb")
    if rss:
        parts.append(f"rss={int(rss) // 1024}M")
    return " ".join(parts) if parts else "idle"


class LiveStatus:
    """A single self-erasing ``\\r`` status line fed by a callable.

    ``source()`` returns the current line (or None to leave the last one
    up).  The printer only runs when ``stream.isatty()`` — piping stdout
    to a file suppresses it entirely, keeping command output parseable.
    """

    def __init__(
        self,
        source: Callable[[], Optional[str]],
        *,
        stream: Any = None,
        interval: float = 0.5,
    ):
        import sys

        self.source = source
        self.stream = stream if stream is not None else sys.stdout
        self.interval = max(0.05, interval)
        self.enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_width = 0

    def __enter__(self) -> "LiveStatus":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> bool:
        self.stop()
        return False

    def start(self) -> None:
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="live-status", daemon=True
        )
        self._thread.start()

    def _paint(self, line: str) -> None:
        padded = line.ljust(self._last_width)
        self._last_width = len(line)
        try:
            self.stream.write("\r" + padded)
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            line = self.source()
            if line is not None:
                self._paint(line)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None
        if self.enabled and self._last_width:
            self._paint("")
            try:
                self.stream.write("\r")
                self.stream.flush()
            except (OSError, ValueError):  # pragma: no cover
                pass
