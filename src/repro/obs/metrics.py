"""Unified process/thread-aware metrics registry.

The live-state counterpart of :mod:`repro.obs.tracer`: where the tracer
records *what happened when*, this module keeps *how much of everything
has happened so far* — monotonic counters, point-in-time gauges and
log-bucketed latency histograms, each with an optional label family
(``repro_engine_runs_total{engine="ic3-pl",result="safe"}``).

Design constraints, in order:

1. **Incrementing must be cheap enough for engine code.**  Counters and
   histograms accumulate into *per-thread cells* (plain dicts reached
   through ``threading.local``) so the hot path is a dict update with no
   lock; a snapshot merges the cells.  Under CPython's GIL a dict
   ``__setitem__`` is atomic, so readers can merge concurrently with
   writers and at worst miss the very latest increment.
2. **Snapshots must travel.**  :meth:`MetricsRegistry.snapshot` returns
   a plain JSON-able dict and :func:`merge_snapshots` folds any number
   of them together — worker processes ship their snapshot over the
   heartbeat channel (:mod:`repro.obs.heartbeat`) or a pipe and the
   parent merges them into one view.
3. **Exposition is text, validation is local.**  :func:`render_prometheus`
   emits the Prometheus text format (``# HELP``/``# TYPE``, cumulative
   ``_bucket{le=...}`` histogram series) and :func:`parse_prometheus` is
   a small strict parser of that format so CI can validate the daemon's
   ``GET /metrics`` output without an external ``promtool``.

The module-level :data:`REGISTRY` is the per-process default; the serve
daemon's :class:`repro.serve.metrics.Metrics` wraps its own private
instance so concurrently running services (tests) do not share counters.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "default_latency_buckets",
    "get_registry",
    "merge_snapshots",
    "parse_prometheus",
    "record_engine_outcome",
    "render_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def default_latency_buckets() -> Tuple[float, ...]:
    """Log-spaced (powers of two) latency bounds from 1 ms to ~65 s.

    Seventeen finite buckets cover everything from a cache-served job to
    a portfolio run against a generous timeout; the implicit ``+Inf``
    bucket catches the rest.
    """
    return tuple(0.001 * 2**i for i in range(17))


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats repr'd."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _ThreadCells:
    """A family of per-thread accumulation dicts.

    ``get()`` hands the calling thread its private dict (no lock on the
    hot path); ``merged()`` folds every thread's dict into one.  Cells
    of exited threads are retained — counters are monotonic over the
    life of the process, so their contributions must survive the thread.
    """

    __slots__ = ("_local", "_all", "_lock")

    def __init__(self) -> None:
        self._local = threading.local()
        self._all: List[dict] = []
        self._lock = threading.Lock()

    def get(self) -> dict:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = {}
            self._local.cell = cell
            with self._lock:
                self._all.append(cell)
        return cell

    def cells(self) -> List[dict]:
        with self._lock:
            return list(self._all)


class _Metric:
    """Shared declaration plumbing: name, help text, label family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Metric):
    """Monotonic counter (optionally labelled); per-thread accumulation."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._cells = _ThreadCells()

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a gauge")
        cell = self._cells.get()
        key = self._key(labels)
        cell[key] = cell.get(key, 0) + amount

    def labels(self, **labels: Any):
        """A bound single-series handle: ``c.labels(engine="bmc").inc()``."""
        key = self._key(labels)
        cells = self._cells
        return _BoundCounter(cells, key)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        total = 0
        for cell in self._cells.cells():
            total += cell.get(key, 0)
        return total

    def collect(self) -> Dict[Tuple[str, ...], float]:
        out: Dict[Tuple[str, ...], float] = {}
        for cell in self._cells.cells():
            for key, value in list(cell.items()):
                out[key] = out.get(key, 0) + value
        return out


class _BoundCounter:
    __slots__ = ("_cells", "_key")

    def __init__(self, cells: _ThreadCells, key: Tuple[str, ...]):
        self._cells = cells
        self._key = key

    def inc(self, amount: float = 1) -> None:
        cell = self._cells.get()
        cell[self._key] = cell.get(self._key, 0) + amount


class Gauge(_Metric):
    """Point-in-time value; last write wins (one dict under a lock —
    gauges are set at scrape/publish time, never in hot loops)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def value(self, **labels: Any) -> Optional[float]:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key)

    def collect(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._values)


class Histogram(_Metric):
    """Cumulative histogram with log-spaced bounds; per-thread cells.

    Each thread cell maps a label key to ``[bucket_counts, sum, count]``
    where ``bucket_counts`` has one slot per finite bound plus ``+Inf``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(buckets) if buckets is not None else default_latency_buckets()
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds: Tuple[float, ...] = bounds
        self._cells = _ThreadCells()

    def observe(self, value: float, **labels: Any) -> None:
        cell = self._cells.get()
        key = self._key(labels)
        state = cell.get(key)
        if state is None:
            state = cell[key] = [[0] * (len(self.bounds) + 1), 0.0, 0]
        state[0][bisect_left(self.bounds, value)] += 1
        state[1] += value
        state[2] += 1

    def collect(self) -> Dict[Tuple[str, ...], List[Any]]:
        out: Dict[Tuple[str, ...], List[Any]] = {}
        for cell in self._cells.cells():
            for key, state in list(cell.items()):
                merged = out.get(key)
                if merged is None:
                    merged = out[key] = [[0] * (len(self.bounds) + 1), 0.0, 0]
                for i, n in enumerate(state[0]):
                    merged[0][i] += n
                merged[1] += state[1]
                merged[2] += state[2]
        return out

    def mean(self, **labels: Any) -> Optional[float]:
        """Observed mean for one series; None before any observation."""
        state = self.collect().get(self._key(labels))
        if state is None or state[2] == 0:
            return None
        return state[1] / state[2]


class MetricsRegistry:
    """Declares and snapshots a family of metrics.

    Declaration is idempotent: re-declaring a name with the same kind and
    label family returns the existing metric (call sites in independent
    modules can each declare what they feed); a mismatch raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _declare(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already declared as {existing.kind}"
                        f"{existing.label_names}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labels, buckets=buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Everything declared + accumulated, as one JSON-able document."""
        with self._lock:
            metrics = list(self._metrics.values())
        doc: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in metrics:
            entry: Dict[str, Any] = {
                "help": metric.help,
                "labels": list(metric.label_names),
                "values": [],
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
                for key, state in sorted(metric.collect().items()):
                    entry["values"].append(
                        {
                            "labels": dict(zip(metric.label_names, key)),
                            "buckets": list(state[0]),
                            "sum": state[1],
                            "count": state[2],
                        }
                    )
                doc["histograms"][metric.name] = entry
            elif isinstance(metric, Counter):
                for key, value in sorted(metric.collect().items()):
                    entry["values"].append(
                        {"labels": dict(zip(metric.label_names, key)), "value": value}
                    )
                doc["counters"][metric.name] = entry
            else:
                for key, value in sorted(metric.collect().items()):
                    entry["values"].append(
                        {"labels": dict(zip(metric.label_names, key)), "value": value}
                    )
                doc["gauges"][metric.name] = entry
        return doc


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold registry snapshots from several processes into one.

    Counters and histograms add; for gauges a later snapshot's series
    replaces an earlier one's (point-in-time semantics).
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}

    def _series_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted(labels.items()))

    for snap in snapshots:
        if not snap:
            continue
        for section in ("counters", "gauges", "histograms"):
            for name, entry in snap.get(section, {}).items():
                target = merged[section].setdefault(
                    name,
                    {
                        "help": entry.get("help", ""),
                        "labels": list(entry.get("labels", [])),
                        "values": [],
                        **(
                            {"bounds": list(entry.get("bounds", []))}
                            if section == "histograms"
                            else {}
                        ),
                    },
                )
                index = {
                    _series_key(value["labels"]): value for value in target["values"]
                }
                for value in entry.get("values", []):
                    key = _series_key(value["labels"])
                    existing = index.get(key)
                    if existing is None:
                        copied = dict(value)
                        if "buckets" in copied:
                            copied["buckets"] = list(copied["buckets"])
                        target["values"].append(copied)
                        index[key] = copied
                    elif section == "gauges":
                        existing["value"] = value["value"]
                    elif section == "histograms":
                        for i, n in enumerate(value["buckets"]):
                            existing["buckets"][i] += n
                        existing["sum"] += value["sum"]
                        existing["count"] += value["count"]
                    else:
                        existing["value"] += value["value"]
    for section in merged.values():
        for entry in section.values():
            entry["values"].sort(key=lambda v: _series_key(v["labels"]))
    return merged


def snapshot_totals(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Condense a registry snapshot to per-family totals.

    Counters fold their label families into one total; histograms keep
    ``sum``/``count``; gauges are omitted (point-in-time values have no
    meaningful total).  This is the compact form run manifests embed.
    """
    totals: Dict[str, Any] = {}
    for name, entry in sorted(snapshot.get("counters", {}).items()):
        totals[name] = sum(value["value"] for value in entry.get("values", []))
    for name, entry in sorted(snapshot.get("histograms", {}).items()):
        totals[name] = {
            "sum": round(sum(v["sum"] for v in entry.get("values", [])), 6),
            "count": sum(v["count"] for v in entry.get("values", [])),
        }
    return totals


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(str(value))}"' for name, value in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """A registry snapshot as Prometheus text format (version 0.0.4).

    Families come out name-sorted so the exposition is deterministic;
    histograms emit cumulative ``_bucket`` series, ``_sum`` and
    ``_count`` per the format spec.
    """
    lines: List[str] = []
    flat: List[Tuple[str, str, Dict[str, Any]]] = []
    for section, kind in (
        ("counters", "counter"),
        ("gauges", "gauge"),
        ("histograms", "histogram"),
    ):
        for name, entry in snapshot.get(section, {}).items():
            flat.append((name, kind, entry))
    for name, kind, entry in sorted(flat):
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        values = entry.get("values", [])
        if not values:
            # Declared-but-untouched unlabelled metrics still expose a
            # zero sample so scrapers can tell "zero" from "renamed";
            # labelled families without series stay silent.
            if entry.get("labels"):
                continue
            if kind == "histogram":
                values = [
                    {
                        "labels": {},
                        "buckets": [0] * (len(entry.get("bounds", [])) + 1),
                        "sum": 0.0,
                        "count": 0,
                    }
                ]
            else:
                lines.append(f"{name} 0")
                continue
        for value in values:
            labels = value.get("labels", {})
            if kind == "histogram":
                bounds = list(entry.get("bounds", []))
                cumulative = 0
                for bound, count in zip(bounds + [math.inf], value["buckets"]):
                    cumulative += count
                    le_attr = 'le="' + _format_value(float(bound)) + '"'
                    lines.append(
                        f"{name}_bucket{_render_labels(labels, le_attr)} {cumulative}"
                    )
                lines.append(f"{name}_sum{_render_labels(labels)} {repr(float(value['sum']))}")
                lines.append(f"{name}_count{_render_labels(labels)} {value['count']}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {_format_value(value['value'])}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _base_family(sample_name: str, families: Dict[str, Dict[str, Any]]) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
            return sample_name[: -len(suffix)]
    return None


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse/validate Prometheus text exposition; the in-repo ``promtool``.

    Returns ``{family: {"type", "help", "samples": [(name, labels, value)]}}``
    and raises :class:`ValueError` (with a line number) on any format
    violation: malformed comment/sample lines, unknown TYPE, a sample
    with no preceding TYPE, unparseable values, or a histogram family
    missing its ``+Inf`` bucket / ``_sum`` / ``_count`` series.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            _, keyword, name = parts[0], parts[1], parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            family = families.setdefault(
                name, {"type": None, "help": "", "samples": []}
            )
            if keyword == "HELP":
                family["help"] = parts[3] if len(parts) > 3 else ""
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _TYPES:
                    raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
                if family["samples"]:
                    raise ValueError(
                        f"line {lineno}: TYPE for {name} after its samples"
                    )
                family["type"] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        label_text = match.group("labels") or ""
        labels: Dict[str, str] = {}
        if label_text.strip():
            for pair in _LABEL_PAIR_RE.finditer(label_text):
                labels[pair.group(1)] = pair.group(2)
            # Re-serialize what we parsed and compare modulo separators:
            # anything left over is garbage inside the braces.
            rebuilt = ",".join(f'{k}="{v}"' for k, v in labels.items())
            if re.sub(r"[,\s]", "", rebuilt) != re.sub(r"[,\s]", "", label_text):
                raise ValueError(f"line {lineno}: malformed labels {{{label_text}}}")
        value_text = match.group("value")
        if value_text not in ("+Inf", "-Inf", "NaN"):
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: unparseable value {value_text!r}"
                ) from None
        else:
            value = math.inf if value_text == "+Inf" else (
                -math.inf if value_text == "-Inf" else math.nan
            )
        base = _base_family(name, families)
        if base is None or families[base]["type"] is None:
            raise ValueError(f"line {lineno}: sample {name!r} without a TYPE")
        families[base]["samples"].append((name, labels, value))

    for name, family in families.items():
        if family["type"] != "histogram" or not family["samples"]:
            continue
        sample_names = {sample[0] for sample in family["samples"]}
        if f"{name}_sum" not in sample_names or f"{name}_count" not in sample_names:
            raise ValueError(f"histogram {name} is missing _sum/_count series")
        inf_buckets = [
            sample
            for sample in family["samples"]
            if sample[0] == f"{name}_bucket" and sample[1].get("le") == "+Inf"
        ]
        if not inf_buckets:
            raise ValueError(f"histogram {name} is missing its +Inf bucket")
    return families


# ----------------------------------------------------------------------
# The per-process default registry and the standard families
# ----------------------------------------------------------------------
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (engines and harness feed it)."""
    return REGISTRY


ENGINE_RUNS = REGISTRY.counter(
    "repro_engine_runs_total",
    "Completed engine checks by engine and verdict.",
    labels=("engine", "result"),
)
ENGINE_RUNTIME = REGISTRY.histogram(
    "repro_engine_runtime_seconds",
    "End-to-end engine check runtime.",
    labels=("engine",),
)
SAT_CALLS = REGISTRY.counter(
    "repro_sat_calls_total", "SAT solver invocations across engine runs."
)
SAT_TIME = REGISTRY.counter(
    "repro_sat_time_seconds_total", "Seconds spent inside SAT solve calls."
)
SAT_CONFLICTS = REGISTRY.counter(
    "repro_sat_conflicts_total", "CDCL conflicts across engine runs."
)
SAT_DECISIONS = REGISTRY.counter(
    "repro_sat_decisions_total", "CDCL decisions across engine runs."
)
SAT_PROPAGATIONS = REGISTRY.counter(
    "repro_sat_propagations_total", "Unit propagations across engine runs."
)
LEMMAS_PUBLISHED = REGISTRY.counter(
    "repro_lemmas_published_total", "Lemmas published to the sharing bus."
)
LEMMAS_IMPORTED = REGISTRY.counter(
    "repro_lemmas_imported_total", "Foreign lemmas installed after validation."
)
HARNESS_TASKS = REGISTRY.counter(
    "repro_harness_tasks_total",
    "Pooled harness tasks by completion status.",
    labels=("status",),
)
PORTFOLIO_WINS = REGISTRY.counter(
    "repro_portfolio_wins_total",
    "Portfolio races decided, by winning member.",
    labels=("member",),
)
STALLS = REGISTRY.counter(
    "repro_stalls_total",
    "Workers whose heartbeat went silent past the stall limit.",
    labels=("pool",),
)


def record_engine_outcome(outcome: Any) -> None:
    """Fold one finished :class:`CheckOutcome` into the default registry.

    Called once per engine check (from the adapters and the portfolio),
    never from a hot loop — the cost is a handful of dict updates.
    """
    engine = getattr(outcome, "engine", "") or "unknown"
    result = getattr(getattr(outcome, "result", None), "value", None) or str(
        getattr(outcome, "result", "unknown")
    )
    ENGINE_RUNS.inc(engine=engine, result=result)
    ENGINE_RUNTIME.observe(getattr(outcome, "runtime", 0.0) or 0.0, engine=engine)
    stats = getattr(outcome, "stats", None)
    if stats is None:
        return
    for counter, attr in (
        (SAT_CALLS, "sat_calls"),
        (SAT_TIME, "sat_time"),
        (SAT_CONFLICTS, "solver_conflicts"),
        (SAT_DECISIONS, "solver_decisions"),
        (SAT_PROPAGATIONS, "solver_propagations"),
        (LEMMAS_PUBLISHED, "lemmas_published"),
        (LEMMAS_IMPORTED, "lemmas_imported"),
    ):
        amount = getattr(stats, attr, 0) or 0
        if amount > 0:
            counter.inc(amount)
