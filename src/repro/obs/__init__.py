"""Full-stack tracing and profiling (``repro.obs``).

The observability layer of the checker: a process/thread-aware
:class:`~repro.obs.tracer.Tracer` with span and instant-event APIs that
compile to no-ops when disabled, JSONL sinks and a bounded
flight-recorder ring for post-mortems of hard-killed workers, Chrome
trace-event (Perfetto-loadable) export with cross-process stitching, and
hotspot reports.  Surfaces: ``repro-check check/evaluate --trace-out``,
``repro-check trace-report``, and ``GET /jobs/{id}/trace`` on the serve
daemon.
"""

from repro.obs.export import (
    collect_worker_events,
    read_jsonl_events,
    read_trace,
    stitch,
    to_chrome_document,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.report import format_report, hotspots, phase_totals
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_DIR_ENV,
    JsonlSink,
    NullTracer,
    Tracer,
    get_tracer,
    install,
    maybe_install_worker_tracer,
    shutdown_worker_tracer,
    trace_session,
    uninstall,
)

__all__ = [
    "NULL_TRACER",
    "TRACE_DIR_ENV",
    "JsonlSink",
    "NullTracer",
    "Tracer",
    "collect_worker_events",
    "format_report",
    "get_tracer",
    "hotspots",
    "install",
    "maybe_install_worker_tracer",
    "phase_totals",
    "read_jsonl_events",
    "read_trace",
    "shutdown_worker_tracer",
    "stitch",
    "to_chrome_document",
    "trace_session",
    "uninstall",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
]
