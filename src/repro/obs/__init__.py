"""Full-stack observability (``repro.obs``).

Three layers:

* **Tracing** (:mod:`repro.obs.tracer`) — process/thread-aware spans and
  instants that compile to no-ops when disabled, JSONL sinks and a
  bounded flight-recorder ring for post-mortems of hard-killed workers,
  Chrome trace-event export with cross-process stitching, hotspot
  reports.  Surfaces: ``--trace-out``, ``repro-check trace-report``,
  ``GET /jobs/{id}/trace``.
* **Metrics** (:mod:`repro.obs.metrics`) — a unified registry of
  counters, gauges and log-bucketed histograms with label families,
  per-thread accumulation, cross-process snapshot/merge, Prometheus
  text exposition and an in-repo exposition parser.  Surfaces:
  ``GET /metrics`` (Prometheus) / ``GET /metrics.json`` (JSON) and
  ``repro-check metrics``.
* **Heartbeats** (:mod:`repro.obs.heartbeat`) — live structured
  progress (IC3 frame, BMC bound, k-induction k, portfolio member
  states, RSS/CPU from ``/proc``) published by worker processes and
  read by the parent.  Surfaces: ``GET /jobs/{id}/progress``, the
  ``--live`` status line, and the serve stall watchdog.
"""

from repro.obs.export import (
    collect_worker_events,
    read_jsonl_events,
    read_trace,
    stitch,
    to_chrome_document,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.heartbeat import (
    HEARTBEAT_DIR_ENV,
    NULL_HEARTBEAT,
    Heartbeat,
    HeartbeatMonitor,
    LiveStatus,
    NullHeartbeat,
    format_progress,
    get_heartbeat,
    heartbeat_session,
    install_heartbeat,
    maybe_install_worker_heartbeat,
    shutdown_worker_heartbeat,
    uninstall_heartbeat,
)
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    parse_prometheus,
    record_engine_outcome,
    render_prometheus,
    snapshot_totals,
)
from repro.obs.report import format_report, hotspots, phase_totals
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_DIR_ENV,
    JsonlSink,
    NullTracer,
    Tracer,
    get_tracer,
    install,
    maybe_install_worker_tracer,
    shutdown_worker_tracer,
    trace_session,
    uninstall,
)

__all__ = [
    "HEARTBEAT_DIR_ENV",
    "NULL_HEARTBEAT",
    "NULL_TRACER",
    "REGISTRY",
    "TRACE_DIR_ENV",
    "Heartbeat",
    "HeartbeatMonitor",
    "JsonlSink",
    "LiveStatus",
    "MetricsRegistry",
    "NullHeartbeat",
    "NullTracer",
    "Tracer",
    "collect_worker_events",
    "format_progress",
    "format_report",
    "get_heartbeat",
    "get_registry",
    "get_tracer",
    "heartbeat_session",
    "hotspots",
    "install",
    "install_heartbeat",
    "maybe_install_worker_heartbeat",
    "maybe_install_worker_tracer",
    "merge_snapshots",
    "parse_prometheus",
    "phase_totals",
    "read_jsonl_events",
    "read_trace",
    "record_engine_outcome",
    "render_prometheus",
    "snapshot_totals",
    "shutdown_worker_heartbeat",
    "shutdown_worker_tracer",
    "stitch",
    "to_chrome_document",
    "trace_session",
    "uninstall",
    "uninstall_heartbeat",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
]
