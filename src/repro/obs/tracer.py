"""Process/thread-aware tracing core.

The tracer records *spans* (named intervals with nesting) and *instant
events* on :func:`time.perf_counter_ns`, tagged with the recording
process id and native thread id.  ``perf_counter`` is CLOCK_MONOTONIC on
Linux, so timestamps taken in different processes of one run share a
time base and per-worker traces can be stitched into a single timeline.

Design constraints, in order:

1. **Disabled tracing must cost nothing.**  The module-level current
   tracer defaults to :data:`NULL_TRACER`, whose methods allocate no
   event objects and whose ``span`` returns one shared no-op context
   manager.  Instrumentation sites guard any argument construction with
   ``tracer.enabled`` so a disabled run pays one attribute check per
   site.
2. **A hard-killed worker must leave a post-mortem.**  Two mechanisms:
   a :class:`JsonlSink` appends events incrementally (flushing every
   ``flush_every`` events, so at most that many are lost to SIGKILL),
   and an optional bounded *flight recorder* ring keeps the last
   ``ring_capacity`` events and rewrites them to ``flight_path``
   (atomically, via rename) every ``flight_every`` events — after a
   kill the last snapshot survives.
3. **Worker processes activate themselves.**  When the environment
   variable :data:`TRACE_DIR_ENV` names a directory, worker entry
   points call :func:`maybe_install_worker_tracer` and write
   ``<role>-<pid>.jsonl`` (plus ``flight-<role>-<pid>.jsonl``) into it;
   the parent's :func:`trace_session` sets the variable, runs the
   workload, then stitches every per-worker file into one Chrome trace.

Events use the Chrome trace-event dictionary shape directly (``ph: X``
complete events with microsecond ``ts``/``dur``, ``ph: i`` instants), so
export is concatenation, not translation.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

TRACE_DIR_ENV = "REPRO_TRACE_DIR"
"""Environment variable through which a tracing parent points worker
processes at the shared per-run trace directory."""

FLIGHT_PREFIX = "flight-"
"""File-name prefix of flight-recorder dumps (excluded from stitching
when the worker's full JSONL sink is present)."""

DEFAULT_SAMPLE_EVERY = 4096
"""Default sampling period for high-frequency counter events (SAT
conflicts/propagations): one instant per this many counts."""


class _NullSpan:
    """Shared no-op context manager returned by the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = "task", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "task", **args: Any) -> None:
        return None

    def sample(self, name: str, count: int, cat: str = "task", **args: Any) -> None:
        return None

    def events(self) -> List[Dict[str, Any]]:
        return []

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


class _Span:
    """One live span; records a Chrome ``X`` (complete) event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, *_exc: object) -> bool:
        end = time.perf_counter_ns()
        if exc_type is not None:
            self._args["aborted"] = True
        self._tracer._emit(
            {
                "name": self._name,
                "cat": self._cat,
                "ph": "X",
                "ts": self._start // 1000,
                "dur": max(0, (end - self._start) // 1000),
                "pid": self._tracer.pid,
                "tid": threading.get_native_id(),
                "args": self._args,
            }
        )
        return False

    def add(self, **args: Any) -> None:
        """Attach result arguments to the span before it closes."""
        self._args.update(args)


class JsonlSink:
    """Append-only JSONL event sink with bounded-loss flushing."""

    def __init__(self, path: str, flush_every: int = 32):
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._flush_every = max(1, flush_every)
        self._pending = 0

    def write(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._pending += 1
        if self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        try:
            self._fh.flush()
            self._fh.close()
        except OSError:  # pragma: no cover - defensive
            pass


class Tracer:
    """Span/instant event recorder for one process.

    Thread-safe: spans may open and close concurrently on any thread;
    each event carries the native thread id of its recording thread.
    ``ring_capacity`` bounds the in-memory buffer (oldest events are
    evicted first); without it every event is retained.
    """

    enabled = True

    def __init__(
        self,
        *,
        ring_capacity: Optional[int] = None,
        sink: Optional[JsonlSink] = None,
        flight_path: Optional[str] = None,
        flight_every: int = 128,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ):
        self.pid = os.getpid()
        self.sample_every = max(1, sample_every)
        self._lock = threading.Lock()
        self._ring_capacity = ring_capacity
        self._events: List[Dict[str, Any]] = []
        self._sink = sink
        self._flight_path = flight_path
        self._flight_every = max(1, flight_every)
        self._since_flight = 0
        self._sample_marks: Dict[Any, int] = {}

    # -- recording ------------------------------------------------------
    def span(self, name: str, cat: str = "task", **args: Any) -> _Span:
        """Open a span; use as ``with tracer.span("ic3.propagate"): ...``."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "task", **args: Any) -> None:
        """Record a zero-duration instant event."""
        self._emit(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": time.perf_counter_ns() // 1000,
                "s": "t",
                "pid": self.pid,
                "tid": threading.get_native_id(),
                "args": args,
            }
        )

    def sample(self, name: str, count: int, cat: str = "task", **args: Any) -> None:
        """Emit an instant only when ``count`` crosses a sampling bucket.

        For monotonically growing counters (conflicts, propagations):
        one event per ``sample_every`` counts per thread, so hot loops
        stay hot while the trace still shows progress rates.
        """
        bucket = count // self.sample_every
        key = (threading.get_native_id(), name)
        if self._sample_marks.get(key) == bucket:
            return
        self._sample_marks[key] = bucket
        self.instant(name, cat=cat, count=count, **args)

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)
            if self._ring_capacity is not None and len(self._events) > self._ring_capacity:
                del self._events[: len(self._events) - self._ring_capacity]
            if self._sink is not None:
                self._sink.write(event)
            if self._flight_path is not None:
                self._since_flight += 1
                if self._since_flight >= self._flight_every:
                    self._dump_flight_locked()

    # -- flight recorder ------------------------------------------------
    def _dump_flight_locked(self) -> None:
        self._since_flight = 0
        directory = os.path.dirname(self._flight_path) or "."
        try:
            fd, tmp = tempfile.mkstemp(prefix=".flight-", dir=directory)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for event in self._events:
                    handle.write(json.dumps(event, separators=(",", ":")) + "\n")
            os.replace(tmp, self._flight_path)
        except OSError:  # pragma: no cover - tracing must never kill the host
            pass

    def dump_flight(self) -> None:
        """Force a flight-recorder snapshot (no-op without a flight path)."""
        if self._flight_path is None:
            return
        with self._lock:
            self._dump_flight_locked()

    # -- access / lifecycle ---------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """A snapshot of the buffered events (oldest first)."""
        with self._lock:
            return list(self._events)

    def close(self) -> None:
        """Flush the sink and take a final flight snapshot."""
        if self._flight_path is not None:
            self.dump_flight()
        if self._sink is not None:
            self._sink.close()


# ----------------------------------------------------------------------
# The per-process current tracer
# ----------------------------------------------------------------------
_current: Any = NULL_TRACER


def get_tracer() -> Any:
    """The process's current tracer (:data:`NULL_TRACER` when disabled)."""
    return _current


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide current tracer."""
    global _current
    _current = tracer
    return tracer


def uninstall() -> Any:
    """Disable tracing; returns the tracer that was installed."""
    global _current
    previous = _current
    _current = NULL_TRACER
    return previous


# ----------------------------------------------------------------------
# Worker-process activation
# ----------------------------------------------------------------------
def maybe_install_worker_tracer(
    role: str,
    *,
    ring_capacity: int = 512,
    flush_every: int = 32,
    flight_every: int = 32,
) -> Optional[Tracer]:
    """Install a tracer when the parent requested tracing via the env.

    Returns None (and installs nothing) when :data:`TRACE_DIR_ENV` is
    unset.  Otherwise the tracer appends every event to
    ``<dir>/<role>-<pid>.jsonl`` and keeps a flight ring of the last
    ``ring_capacity`` events in ``<dir>/flight-<role>-<pid>.jsonl`` so a
    SIGKILLed worker leaves both a (possibly truncated) event log and a
    recent-history snapshot.
    """
    directory = os.environ.get(TRACE_DIR_ENV)
    if not directory:
        return None
    try:
        os.makedirs(directory, exist_ok=True)
        pid = os.getpid()
        sink = JsonlSink(
            os.path.join(directory, f"{role}-{pid}.jsonl"), flush_every=flush_every
        )
        tracer = Tracer(
            sink=sink,
            ring_capacity=ring_capacity,
            flight_path=os.path.join(directory, f"{FLIGHT_PREFIX}{role}-{pid}.jsonl"),
            flight_every=flight_every,
        )
    except OSError:  # pragma: no cover - unwritable trace dir
        return None
    return install(tracer)


def shutdown_worker_tracer() -> None:
    """Close and uninstall the worker tracer installed by this process."""
    tracer = uninstall()
    if isinstance(tracer, Tracer):
        tracer.close()


# ----------------------------------------------------------------------
# Parent-side session
# ----------------------------------------------------------------------
@contextmanager
def trace_session(path: str, *, label: str = "session") -> Iterator[Tracer]:
    """Trace a whole command into a Perfetto-loadable file at ``path``.

    Installs a parent tracer, exports :data:`TRACE_DIR_ENV` so every
    worker process spawned underneath traces itself, and on exit stitches
    the parent events and all per-worker JSONL files into one Chrome
    trace-event document written to ``path``.
    """
    from repro.obs.export import collect_worker_events, write_chrome_trace

    workers_dir = tempfile.mkdtemp(prefix="repro-trace-")
    previous_env = os.environ.get(TRACE_DIR_ENV)
    os.environ[TRACE_DIR_ENV] = workers_dir
    tracer = install(Tracer())
    try:
        with tracer.span(label, cat="session"):
            yield tracer
    finally:
        uninstall()
        os.environ.pop(TRACE_DIR_ENV, None)
        if previous_env is not None:
            os.environ[TRACE_DIR_ENV] = previous_env
        events = tracer.events() + collect_worker_events(workers_dir)
        write_chrome_trace(path, events)
        shutil.rmtree(workers_dir, ignore_errors=True)
