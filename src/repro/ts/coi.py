"""Cone-of-influence (COI) reduction — backward-compatible shim.

The COI logic moved into the pass-managed reduction subsystem
(:mod:`repro.reduce`), where it composes with structural hashing,
ternary constant sweeping and equivalent-latch merging and where
counterexamples and certificates are lifted back to the original model.
This module keeps the original one-shot API alive::

    from repro.ts import reduce_to_coi
    reduced, info = reduce_to_coi(aig, property_index=0)
    outcome = IC3(reduced).check()

New code should prefer :func:`repro.reduce.reduce_aig` (the full default
pipeline) or :class:`repro.reduce.ConeOfInfluencePass` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.aiger.aig import AIG
from repro.reduce.coi import ConeOfInfluencePass, coi_variables

__all__ = ["CoiInfo", "coi_variables", "reduce_to_coi"]


@dataclass
class CoiInfo:
    """What the reduction kept and removed."""

    kept_latches: int = 0
    removed_latches: int = 0
    kept_inputs: int = 0
    removed_inputs: int = 0
    kept_ands: int = 0
    removed_ands: int = 0

    @property
    def reduced(self) -> bool:
        """True if anything was actually removed."""
        return bool(self.removed_latches or self.removed_inputs or self.removed_ands)


def reduce_to_coi(aig: AIG, property_index: int = 0) -> Tuple[AIG, CoiInfo]:
    """Return ``(reduced_aig, CoiInfo)`` for one property.

    The reduced AIG contains only the inputs, latches and AND gates in the
    cone of influence of the selected bad signal (plus all invariant
    constraints), with the literal numbering rebuilt from scratch.  Latch
    reset values and symbol names are preserved.
    """
    result = ConeOfInfluencePass().run(aig, property_index=property_index)
    info = result.info
    coi_info = CoiInfo(
        kept_latches=info.latches_after,
        removed_latches=info.latches_before - info.latches_after,
        kept_inputs=info.inputs_after,
        removed_inputs=info.inputs_before - info.inputs_after,
        kept_ands=info.ands_after,
        removed_ands=info.ands_before - info.ands_after,
    )
    return result.aig, coi_info
