"""Cone-of-influence (COI) reduction.

Industrial AIGER models routinely contain logic that cannot affect the
property being checked; every serious model checker (including the ones
the paper evaluates) first restricts the circuit to the *cone of
influence* of the property: the set of latches, inputs and gates that the
bad signal transitively depends on, where latch dependencies follow the
next-state functions.  The reduction is sound and complete — the reduced
circuit is unsafe iff the original one is — and can shrink the IC3 state
space dramatically.

Example::

    from repro.ts import reduce_to_coi
    reduced, info = reduce_to_coi(aig, property_index=0)
    outcome = IC3(reduced).check()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT, AndGate, Latch


@dataclass
class CoiInfo:
    """What the reduction kept and removed."""

    kept_latches: int = 0
    removed_latches: int = 0
    kept_inputs: int = 0
    removed_inputs: int = 0
    kept_ands: int = 0
    removed_ands: int = 0

    @property
    def reduced(self) -> bool:
        """True if anything was actually removed."""
        return bool(self.removed_latches or self.removed_inputs or self.removed_ands)


def coi_variables(aig: AIG, property_index: int = 0) -> Set[int]:
    """Variables (AIG variable indices) in the property's cone of influence.

    The cone is closed under combinational fan-in and under latch
    next-state functions; invariant constraints are always included because
    they restrict every behaviour of the circuit.
    """
    aig.validate()
    bads = aig.bads if aig.bads else aig.outputs
    if not bads:
        raise ValueError("the AIG declares neither bad states nor outputs")
    if not 0 <= property_index < len(bads):
        raise ValueError(f"property index {property_index} out of range")

    gate_by_var: Dict[int, AndGate] = {gate.lhs >> 1: gate for gate in aig.ands}
    latch_by_var: Dict[int, Latch] = {latch.lit >> 1: latch for latch in aig.latches}

    roots = [bads[property_index]] + list(aig.constraints)
    pending: List[int] = [lit >> 1 for lit in roots if lit > 1]
    reached: Set[int] = set()
    while pending:
        var = pending.pop()
        if var in reached or var == 0:
            continue
        reached.add(var)
        gate = gate_by_var.get(var)
        if gate is not None:
            pending.append(gate.rhs0 >> 1)
            pending.append(gate.rhs1 >> 1)
            continue
        latch = latch_by_var.get(var)
        if latch is not None:
            pending.append(latch.next >> 1)
    return reached


def reduce_to_coi(aig: AIG, property_index: int = 0):
    """Return ``(reduced_aig, CoiInfo)`` for one property.

    The reduced AIG contains only the inputs, latches and AND gates in the
    cone of influence of the selected bad signal (plus all invariant
    constraints), with the same literal numbering scheme rebuilt from
    scratch.  Latch reset values and symbol names are preserved.
    """
    cone = coi_variables(aig, property_index)
    bads = aig.bads if aig.bads else aig.outputs

    reduced = AIG(comment=aig.comment)
    new_lit_of: Dict[int, int] = {FALSE_LIT: FALSE_LIT, TRUE_LIT: TRUE_LIT}

    def map_lit(lit: int) -> int:
        base = lit & ~1
        if base not in new_lit_of:
            # Referenced variable outside the cone: it cannot influence the
            # property, so any constant is sound; use FALSE.
            return FALSE_LIT ^ (lit & 1)
        return new_lit_of[base] ^ (lit & 1)

    info = CoiInfo()
    for lit in aig.inputs:
        if (lit >> 1) in cone:
            new_lit_of[lit] = reduced.add_input(aig.input_name(lit))
            info.kept_inputs += 1
        else:
            info.removed_inputs += 1

    kept_latches = [latch for latch in aig.latches if (latch.lit >> 1) in cone]
    info.kept_latches = len(kept_latches)
    info.removed_latches = aig.num_latches - info.kept_latches
    for latch in kept_latches:
        new_lit_of[latch.lit] = reduced.add_latch(init=latch.init, name=latch.name)

    for gate in aig.ands:
        if (gate.lhs >> 1) in cone:
            new_lit_of[gate.lhs] = reduced.add_and(
                map_lit(gate.rhs0), map_lit(gate.rhs1)
            )
            info.kept_ands += 1
        else:
            info.removed_ands += 1

    for latch in kept_latches:
        reduced.set_latch_next(new_lit_of[latch.lit], map_lit(latch.next))
    for constraint in aig.constraints:
        reduced.add_constraint(map_lit(constraint))
    reduced.add_bad(map_lit(bads[property_index]))
    reduced.validate()
    return reduced, info
