"""Transition-system encoding of an AIG.

The encoding allocates one CNF variable per AIG input, latch and AND gate
(the *current-state* copy), plus one primed variable per latch (the
*next-state* copy), and emits:

* Tseitin clauses defining every AND gate over current-state variables;
* equivalence clauses tying each primed latch variable to the latch's
  next-state function;
* unit clauses for invariant constraints (assumed every step);
* a ``bad`` literal — the property is ``G !bad``.

IC3, BMC and k-induction all consume this object; it is also the oracle
used to validate invariant certificates and counterexample traces.
"""

from __future__ import annotations

import warnings
from typing import Dict, List

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT, liveness_hint
from repro.logic.cnf import CNF
from repro.logic.cube import Clause, Cube


class EncodingError(Exception):
    """Raised when an AIG cannot be encoded (e.g. no bad/output literal)."""


class PropertySelectionWarning(UserWarning):
    """The AIG declares both bads and outputs; the bad list took precedence."""


def select_bads(
    aig: AIG, use_outputs_as_bad: bool = True, warn_on_ambiguity: bool = True
) -> List[int]:
    """The safety-property literals of an AIG, with documented precedence.

    AIGER 1.9 ``B``-section bads always win; the pre-1.9 convention of
    reading outputs as bad signals is only applied when the AIG declares
    no bads at all.  When *both* sections are present (and the fallback is
    enabled) a :class:`PropertySelectionWarning` is emitted, because the
    outputs are then silently ignored as properties.  The warning fires
    once per AIG object — engines, validators and lift-back machinery
    re-encode the same model many times and would otherwise repeat it.
    """
    if aig.bads:
        if (
            aig.outputs
            and use_outputs_as_bad
            and warn_on_ambiguity
            and not getattr(aig, "_ambiguity_warned", False)
        ):
            aig._ambiguity_warned = True
            warnings.warn(
                f"the AIG declares both {len(aig.bads)} bad propert"
                f"{'y' if len(aig.bads) == 1 else 'ies'} and {len(aig.outputs)} "
                f"output(s); the bads take precedence and the outputs are not "
                f"checked (pass use_outputs_as_bad=False to silence this)",
                PropertySelectionWarning,
                stacklevel=3,
            )
        return list(aig.bads)
    if use_outputs_as_bad:
        return list(aig.outputs)
    return []


class TransitionSystem:
    """Boolean transition system ⟨X, Y, I, T⟩ derived from an AIG."""

    def __init__(
        self,
        aig: AIG,
        property_index: int = 0,
        use_outputs_as_bad: bool = True,
        warn_on_ambiguity: bool = True,
    ):
        aig.validate()
        self.aig = aig
        bads = select_bads(aig, use_outputs_as_bad, warn_on_ambiguity)
        if not bads:
            raise EncodingError(
                "the AIG declares neither bad states nor outputs" + liveness_hint(aig)
            )
        if not 0 <= property_index < len(bads):
            source = "bad properties" if aig.bads else "outputs (read as bads)"
            raise EncodingError(
                f"property index {property_index} out of range: the AIG declares "
                f"{len(bads)} {source}, valid indices are 0..{len(bads) - 1}"
                + liveness_hint(aig)
            )
        self._bad_aig_lit = bads[property_index]

        self._next_solver_var = 0
        self._current_of_aig_var: Dict[int, int] = {}

        # Constant TRUE variable (needed when the AIG uses literals 0/1).
        self._const_true = self._fresh_var()

        self.input_vars: List[int] = [self._map_aig_var(lit >> 1) for lit in aig.inputs]
        self.latch_vars: List[int] = [self._map_aig_var(l.lit >> 1) for l in aig.latches]
        self._gate_vars: List[int] = [self._map_aig_var(g.lhs >> 1) for g in aig.ands]

        self.primed_of: Dict[int, int] = {}
        self.unprimed_of: Dict[int, int] = {}
        for var in self.latch_vars:
            primed = self._fresh_var()
            self.primed_of[var] = primed
            self.unprimed_of[primed] = var

        self.trans = CNF()
        self.trans.add_unit(self._const_true)
        self._encode_gates()
        self._encode_next_state()
        self._encode_constraints()

        self.bad_lit = self.to_solver_lit(self._bad_aig_lit)
        self.init_cube = self._build_init_cube()
        self._init_value: Dict[int, bool] = {
            abs(l): l > 0 for l in self.init_cube
        }

    # ------------------------------------------------------------------
    # Variable bookkeeping
    # ------------------------------------------------------------------
    def _fresh_var(self) -> int:
        self._next_solver_var += 1
        return self._next_solver_var

    def _map_aig_var(self, aig_var: int) -> int:
        existing = self._current_of_aig_var.get(aig_var)
        if existing is not None:
            return existing
        var = self._fresh_var()
        self._current_of_aig_var[aig_var] = var
        return var

    @property
    def num_vars(self) -> int:
        """Number of solver variables allocated by the encoding."""
        return self._next_solver_var

    @property
    def state_variables(self) -> List[int]:
        """The current-state (latch) variables X."""
        return list(self.latch_vars)

    @property
    def next_state_variables(self) -> List[int]:
        """The next-state (primed latch) variables X'."""
        return [self.primed_of[v] for v in self.latch_vars]

    def to_solver_lit(self, aig_lit: int) -> int:
        """Translate an AIG literal to a solver literal over current vars."""
        if aig_lit == FALSE_LIT:
            return -self._const_true
        if aig_lit == TRUE_LIT:
            return self._const_true
        var = self._current_of_aig_var[aig_lit >> 1]
        return -var if aig_lit & 1 else var

    def prime_lit(self, lit: int) -> int:
        """Translate a current-state latch literal to its primed copy."""
        var = abs(lit)
        primed = self.primed_of.get(var)
        if primed is None:
            raise EncodingError(f"variable {var} is not a latch variable")
        return primed if lit > 0 else -primed

    def unprime_lit(self, lit: int) -> int:
        """Translate a primed latch literal back to the current-state copy."""
        var = abs(lit)
        unprimed = self.unprimed_of.get(var)
        if unprimed is None:
            raise EncodingError(f"variable {var} is not a primed latch variable")
        return unprimed if lit > 0 else -unprimed

    def prime_cube(self, cube: Cube) -> Cube:
        """Prime every literal of a cube over latch variables."""
        return Cube(self.prime_lit(l) for l in cube)

    def prime_clause(self, clause: Clause) -> Clause:
        """Prime every literal of a clause over latch variables."""
        return Clause(self.prime_lit(l) for l in clause)

    def unprime_cube(self, cube: Cube) -> Cube:
        """Map a cube over primed variables back to current-state variables."""
        return Cube(self.unprime_lit(l) for l in cube)

    def is_state_lit(self, lit: int) -> bool:
        """True if the literal ranges over a current-state latch variable."""
        return abs(lit) in self.primed_of

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode_gates(self) -> None:
        for gate in self.aig.ands:
            out = self.to_solver_lit(gate.lhs)
            a = self.to_solver_lit(gate.rhs0)
            b = self.to_solver_lit(gate.rhs1)
            self.trans.add([-out, a])
            self.trans.add([-out, b])
            self.trans.add([out, -a, -b])

    def _encode_next_state(self) -> None:
        for latch in self.aig.latches:
            current = self.to_solver_lit(latch.lit)
            primed = self.prime_lit(current)
            next_lit = self.to_solver_lit(latch.next)
            self.trans.add([-primed, next_lit])
            self.trans.add([primed, -next_lit])

    def _encode_constraints(self) -> None:
        for constraint in self.aig.constraints:
            self.trans.add_unit(self.to_solver_lit(constraint))

    def _build_init_cube(self) -> Cube:
        literals = []
        for latch in self.aig.latches:
            if latch.init is None:
                continue
            var = self.to_solver_lit(latch.lit)
            literals.append(var if latch.init == 1 else -var)
        return Cube(literals)

    # ------------------------------------------------------------------
    # Initial-state reasoning
    # ------------------------------------------------------------------
    def cube_intersects_init(self, cube: Cube) -> bool:
        """True if some initial state satisfies the cube.

        Because the initial condition is a cube over (a subset of) latch
        variables, this is a purely syntactic check: the cube intersects the
        initial states iff none of its literals contradicts the reset value
        of an initialised latch.
        """
        for lit in cube:
            expected = self._init_value.get(abs(lit))
            if expected is not None and (lit > 0) != expected:
                return False
        return True

    def clause_holds_on_init(self, clause: Clause) -> bool:
        """True if ``I ⇒ clause`` (the lemma excludes no initial state)."""
        return not self.cube_intersects_init(clause.negate())

    def init_clauses(self) -> CNF:
        """The initial condition as unit clauses (frame 0 of IC3)."""
        cnf = CNF()
        for lit in self.init_cube:
            cnf.add_unit(lit)
        return cnf

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def input_assignment_from_model(self, model: Dict[int, bool]) -> Dict[int, bool]:
        """Project a solver model onto the AIG's input literals."""
        assignment: Dict[int, bool] = {}
        for aig_lit, var in zip(self.aig.inputs, self.input_vars):
            assignment[aig_lit] = bool(model.get(var, False))
        return assignment

    def state_cube_from_model(self, model: Dict[int, bool], primed: bool = False) -> Cube:
        """Project a solver model onto a cube over the latch variables."""
        literals = []
        for var in self.latch_vars:
            source = self.primed_of[var] if primed else var
            value = model.get(source, False)
            literals.append(var if value else -var)
        return Cube(literals)

    def input_cube_from_model(self, model: Dict[int, bool]) -> Cube:
        """Project a solver model onto a cube over the input variables."""
        literals = []
        for var in self.input_vars:
            value = model.get(var, False)
            literals.append(var if value else -var)
        return Cube(literals)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"TransitionSystem(latches={len(self.latch_vars)}, "
            f"inputs={len(self.input_vars)}, gates={len(self._gate_vars)}, "
            f"trans_clauses={len(self.trans)})"
        )
