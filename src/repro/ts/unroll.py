"""Time-frame unrolling of an AIG for BMC and k-induction.

The :class:`Unroller` lazily instantiates a fresh copy of the circuit's
combinational logic for each time frame and adds the frame-to-frame latch
connection clauses directly into a SAT solver.  ``lit_at(aig_lit, frame)``
returns the solver literal that represents an AIG literal at a given time
frame, so callers can constrain inputs, assert bad cones, or read back
concrete traces from a model.

The unrolling is strictly monotone: frames are only ever appended, never
re-encoded, so one persistent unroller serves a whole BMC or k-induction
run.  With ``init_as_assumption=True`` the initial-state constraint is
guarded by an activation literal instead of being asserted as unit
clauses: a single unrolling then answers *both* initialised queries (BMC
and k-induction base cases, by assuming :meth:`init_assumptions`) and
uninitialised ones (the k-induction step case), sharing all frame clauses
and learnt clauses between them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.logic.cube import Cube
from repro.obs.tracer import get_tracer
from repro.sat.context import apply_solver_seed, sat_backend
from repro.sat.solver import Solver


class Unroller:
    """Incrementally unrolls an AIG into a SAT solver.

    The solver is either passed in directly or constructed from the
    registered ``backend`` name (see :func:`repro.sat.context.
    register_sat_backend`), so BMC/k-induction unrollings pick up
    alternative kernels such as the flat-arena solver.
    """

    def __init__(
        self,
        aig: AIG,
        solver: Optional[Solver] = None,
        use_init: bool = True,
        init_as_assumption: bool = False,
        backend: str = "default",
        seed: int = 0,
    ):
        aig.validate()
        self.aig = aig
        self.solver = solver if solver is not None else sat_backend(backend)()
        if seed:
            apply_solver_seed(self.solver, seed)
        self.use_init = use_init
        self.init_as_assumption = init_as_assumption
        # Validated global-invariant clauses (AIG literals over latches),
        # asserted on every existing and future time frame — the import
        # side of cooperative lemma sharing (see repro.core.share).
        self._invariant_clauses: List[List[int]] = []
        # Allocated lazily after frame 0's variables so that the frame-0
        # variable numbering matches the TransitionSystem encoding (the
        # trace validators rely on that correspondence).
        self._init_act: Optional[int] = None
        self._frames: List[Dict[int, int]] = []  # frame -> {aig_var -> solver var}
        self._const_true = self.solver.new_var()
        self.solver.add_clause([self._const_true])

    def init_assumptions(self) -> List[int]:
        """Assumption literals that anchor frame 0 at the initial states.

        Empty unless ``init_as_assumption`` was requested (with plain
        ``use_init`` the anchoring is hard-coded as unit clauses).
        """
        if self.use_init and self.init_as_assumption and self.num_frames == 0:
            # Build frame 0 now so the guard variable exists even when
            # this is the first call on a fresh unroller.
            self.lit_at(TRUE_LIT, 0)
        if self._init_act is None:
            return []
        return [self._init_act]

    @property
    def num_frames(self) -> int:
        """Number of time frames instantiated so far."""
        return len(self._frames)

    # ------------------------------------------------------------------
    # Literal mapping
    # ------------------------------------------------------------------
    def lit_at(self, aig_lit: int, frame: int) -> int:
        """Solver literal for ``aig_lit`` at time ``frame`` (frames from 0)."""
        while self.num_frames <= frame:
            self._add_frame()
        if aig_lit == FALSE_LIT:
            return -self._const_true
        if aig_lit == TRUE_LIT:
            return self._const_true
        var = self._frames[frame][aig_lit >> 1]
        return -var if aig_lit & 1 else var

    def latch_cube_at(self, model: Dict[int, bool], frame: int) -> Cube:
        """Project a model onto the latch values at a frame."""
        literals = []
        for latch in self.aig.latches:
            lit = self.lit_at(latch.lit, frame)
            value = model.get(abs(lit), False)
            if lit < 0:
                value = not value
            literals.append(abs(lit) if value else -abs(lit))
        return Cube(literals)

    def input_values_at(self, model: Dict[int, bool], frame: int) -> Dict[int, bool]:
        """Project a model onto the AIG input literals at a frame."""
        values: Dict[int, bool] = {}
        for aig_lit in self.aig.inputs:
            lit = self.lit_at(aig_lit, frame)
            value = model.get(abs(lit), False)
            values[aig_lit] = (not value) if lit < 0 else value
        return values

    # ------------------------------------------------------------------
    # Frame construction
    # ------------------------------------------------------------------
    def _add_frame(self) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            self._add_frame_inner()
            return
        with tracer.span(
            "unroll.frame", cat="unroll", frame=len(self._frames)
        ):
            self._add_frame_inner()

    def _add_frame_inner(self) -> None:
        frame_index = len(self._frames)
        var_map: Dict[int, int] = {}
        for aig_lit in self.aig.inputs:
            var_map[aig_lit >> 1] = self.solver.new_var()
        for latch in self.aig.latches:
            var_map[latch.lit >> 1] = self.solver.new_var()
        for gate in self.aig.ands:
            var_map[gate.lhs >> 1] = self.solver.new_var()
        self._frames.append(var_map)

        # Combinational logic of this frame.
        for gate in self.aig.ands:
            out = self.lit_at(gate.lhs, frame_index)
            a = self.lit_at(gate.rhs0, frame_index)
            b = self.lit_at(gate.rhs1, frame_index)
            self.solver.add_clause([-out, a])
            self.solver.add_clause([-out, b])
            self.solver.add_clause([out, -a, -b])

        # Invariant constraints hold on every frame.
        for constraint in self.aig.constraints:
            self.solver.add_clause([self.lit_at(constraint, frame_index)])

        # Validated global invariants hold on every frame too.
        for clause in self._invariant_clauses:
            self.solver.add_clause(
                [self.lit_at(aig_lit, frame_index) for aig_lit in clause]
            )

        if frame_index == 0:
            if self.use_init:
                if self.init_as_assumption and self._init_act is None:
                    self._init_act = self.solver.new_activation()
                for latch in self.aig.latches:
                    if latch.init is None:
                        continue
                    lit = self.lit_at(latch.lit, 0)
                    clause = [lit if latch.init == 1 else -lit]
                    if self._init_act is not None:
                        self.solver.add_guarded(self._init_act, clause)
                    else:
                        self.solver.add_clause(clause)
        else:
            # Latch at frame k equals its next-state function at frame k-1.
            for latch in self.aig.latches:
                now = self.lit_at(latch.lit, frame_index)
                prev_next = self.lit_at(latch.next, frame_index - 1)
                self.solver.add_clause([-now, prev_next])
                self.solver.add_clause([now, -prev_next])

    def add_invariant_clause(self, aig_lits: Sequence[int]) -> None:
        """Assert a *validated global invariant* clause on every frame.

        ``aig_lits`` are AIG literals over latches.  The caller must have
        proven the clause to hold on all reachable states (see
        :class:`repro.core.share.UnrollingInvariantImporter`): only then
        is asserting it at every time frame sound for both initialized
        and uninitialized queries without masking real counterexamples.
        """
        clause = list(aig_lits)
        self._invariant_clauses.append(clause)
        for frame_index in range(self.num_frames):
            self.solver.add_clause(
                [self.lit_at(aig_lit, frame_index) for aig_lit in clause]
            )

    def bad_lit_at(self, frame: int, property_index: int = 0) -> int:
        """Solver literal of the bad cone (or first output) at a frame."""
        bads = self.aig.bads if self.aig.bads else self.aig.outputs
        return self.lit_at(bads[property_index], frame)
