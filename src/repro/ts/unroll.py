"""Time-frame unrolling of an AIG for BMC and k-induction.

The :class:`Unroller` lazily instantiates a fresh copy of the circuit's
combinational logic for each time frame and adds the frame-to-frame latch
connection clauses directly into a SAT solver.  ``lit_at(aig_lit, frame)``
returns the solver literal that represents an AIG literal at a given time
frame, so callers can constrain inputs, assert bad cones, or read back
concrete traces from a model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aiger.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.logic.cube import Cube
from repro.sat.solver import Solver


class Unroller:
    """Incrementally unrolls an AIG into a SAT solver."""

    def __init__(self, aig: AIG, solver: Optional[Solver] = None, use_init: bool = True):
        aig.validate()
        self.aig = aig
        self.solver = solver if solver is not None else Solver()
        self.use_init = use_init
        self._frames: List[Dict[int, int]] = []  # frame -> {aig_var -> solver var}
        self._const_true = self.solver.new_var()
        self.solver.add_clause([self._const_true])

    @property
    def num_frames(self) -> int:
        """Number of time frames instantiated so far."""
        return len(self._frames)

    # ------------------------------------------------------------------
    # Literal mapping
    # ------------------------------------------------------------------
    def lit_at(self, aig_lit: int, frame: int) -> int:
        """Solver literal for ``aig_lit`` at time ``frame`` (frames from 0)."""
        while self.num_frames <= frame:
            self._add_frame()
        if aig_lit == FALSE_LIT:
            return -self._const_true
        if aig_lit == TRUE_LIT:
            return self._const_true
        var = self._frames[frame][aig_lit >> 1]
        return -var if aig_lit & 1 else var

    def latch_cube_at(self, model: Dict[int, bool], frame: int) -> Cube:
        """Project a model onto the latch values at a frame."""
        literals = []
        for latch in self.aig.latches:
            lit = self.lit_at(latch.lit, frame)
            value = model.get(abs(lit), False)
            if lit < 0:
                value = not value
            literals.append(abs(lit) if value else -abs(lit))
        return Cube(literals)

    def input_values_at(self, model: Dict[int, bool], frame: int) -> Dict[int, bool]:
        """Project a model onto the AIG input literals at a frame."""
        values: Dict[int, bool] = {}
        for aig_lit in self.aig.inputs:
            lit = self.lit_at(aig_lit, frame)
            value = model.get(abs(lit), False)
            values[aig_lit] = (not value) if lit < 0 else value
        return values

    # ------------------------------------------------------------------
    # Frame construction
    # ------------------------------------------------------------------
    def _add_frame(self) -> None:
        frame_index = len(self._frames)
        var_map: Dict[int, int] = {}
        for aig_lit in self.aig.inputs:
            var_map[aig_lit >> 1] = self.solver.new_var()
        for latch in self.aig.latches:
            var_map[latch.lit >> 1] = self.solver.new_var()
        for gate in self.aig.ands:
            var_map[gate.lhs >> 1] = self.solver.new_var()
        self._frames.append(var_map)

        # Combinational logic of this frame.
        for gate in self.aig.ands:
            out = self.lit_at(gate.lhs, frame_index)
            a = self.lit_at(gate.rhs0, frame_index)
            b = self.lit_at(gate.rhs1, frame_index)
            self.solver.add_clause([-out, a])
            self.solver.add_clause([-out, b])
            self.solver.add_clause([out, -a, -b])

        # Invariant constraints hold on every frame.
        for constraint in self.aig.constraints:
            self.solver.add_clause([self.lit_at(constraint, frame_index)])

        if frame_index == 0:
            if self.use_init:
                for latch in self.aig.latches:
                    if latch.init is None:
                        continue
                    lit = self.lit_at(latch.lit, 0)
                    self.solver.add_clause([lit if latch.init == 1 else -lit])
        else:
            # Latch at frame k equals its next-state function at frame k-1.
            for latch in self.aig.latches:
                now = self.lit_at(latch.lit, frame_index)
                prev_next = self.lit_at(latch.next, frame_index - 1)
                self.solver.add_clause([-now, prev_next])
                self.solver.add_clause([now, -prev_next])

    def bad_lit_at(self, frame: int, property_index: int = 0) -> int:
        """Solver literal of the bad cone (or first output) at a frame."""
        bads = self.aig.bads if self.aig.bads else self.aig.outputs
        return self.lit_at(bads[property_index], frame)
