"""Symbolic transition systems.

This package turns an :class:`~repro.aiger.AIG` into the Boolean
transition system ⟨X, Y, I, T⟩ used by the model-checking algorithms:
CNF variables for current-state latches, inputs, internal gates and primed
next-state latches, a Tseitin-encoded transition relation, the initial-state
cube and the bad-state (negated property) literal.  It also provides the
time-frame unroller used by BMC and k-induction.
"""

from repro.ts.system import (
    EncodingError,
    PropertySelectionWarning,
    TransitionSystem,
    select_bads,
)
from repro.ts.unroll import Unroller
from repro.ts.coi import CoiInfo, coi_variables, reduce_to_coi

__all__ = [
    "TransitionSystem",
    "EncodingError",
    "PropertySelectionWarning",
    "select_bads",
    "Unroller",
    "CoiInfo",
    "coi_variables",
    "reduce_to_coi",
]
