"""Cubes, clauses and the diff set of Definition 3.1.

A *cube* is a conjunction of literals and a *clause* is a disjunction of
literals; the negation of one is the other.  Both are represented as
immutable, canonically sorted tuples of DIMACS literals with a companion
frozenset for O(1) membership tests — IC3 performs an enormous number of
subset and containment checks on them.

``diff(a, b)`` is the paper's Definition 3.1: the set of literals of ``a``
whose negation occurs in ``b``.  It is the workhorse of lemma prediction.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Tuple

from repro.logic.literal import lit_neg, lit_var


def _canonical(literals: Iterable[int]) -> Tuple[int, ...]:
    """Deduplicate and sort literals by (variable, polarity)."""
    seen = set()
    for lit in literals:
        if not isinstance(lit, int) or lit == 0:
            raise ValueError(f"invalid literal: {lit!r}")
        seen.add(lit)
    return tuple(sorted(seen, key=lambda l: (lit_var(l), l < 0)))


class _LiteralSet:
    """Shared implementation of immutable literal containers."""

    __slots__ = ("_lits", "_set", "_hash")

    def __init__(self, literals: Iterable[int] = ()):
        self._lits: Tuple[int, ...] = _canonical(literals)
        self._set: FrozenSet[int] = frozenset(self._lits)
        self._hash = hash((type(self).__name__, self._lits))

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self._lits)

    def __len__(self) -> int:
        return len(self._lits)

    def __contains__(self, lit: int) -> bool:
        return lit in self._set

    def __getitem__(self, index: int) -> int:
        return self._lits[index]

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._lits == other._lits

    def __lt__(self, other: "_LiteralSet") -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._lits < other._lits

    # -- set views -----------------------------------------------------------
    @property
    def literals(self) -> Tuple[int, ...]:
        """The literals in canonical order."""
        return self._lits

    @property
    def literal_set(self) -> FrozenSet[int]:
        """The literals as a frozenset."""
        return self._set

    @property
    def variables(self) -> FrozenSet[int]:
        """The set of variables mentioned."""
        return frozenset(lit_var(l) for l in self._lits)

    def is_empty(self) -> bool:
        """True if no literals are present."""
        return not self._lits

    def is_tautological(self) -> bool:
        """True if both a literal and its negation are present.

        A tautological *clause* is trivially true; a "tautological" *cube*
        is in fact the empty (unsatisfiable) cube ⊥.
        """
        return any(-l in self._set for l in self._lits)

    def subsumes(self, other: "_LiteralSet") -> bool:
        """Return True if ``self``'s literals are a subset of ``other``'s.

        For clauses this is logical subsumption (self implies other); for
        cubes the direction reverses (other implies self, Theorem 3.4).
        """
        return self._set <= other._set

    def intersection(self, other: "_LiteralSet") -> FrozenSet[int]:
        """Literals occurring in both containers."""
        return self._set & other._set

    def __repr__(self) -> str:
        body = ", ".join(str(l) for l in self._lits)
        return f"{type(self).__name__}([{body}])"


class Cube(_LiteralSet):
    """A conjunction of literals (typically a state or a set of states)."""

    def negate(self) -> "Clause":
        """Return the clause ``¬cube``."""
        return Clause(lit_neg(l) for l in self._lits)

    def without(self, lit: int) -> "Cube":
        """Return a copy of the cube with ``lit`` removed (variable drop)."""
        if lit not in self._set:
            raise KeyError(f"literal {lit} not in cube")
        return Cube(l for l in self._lits if l != lit)

    def extended(self, lit: int) -> "Cube":
        """Return a copy of the cube with ``lit`` added (Equation 6)."""
        if -lit in self._set:
            raise ValueError(
                f"adding literal {lit} would make the cube contradictory"
            )
        return Cube(self._lits + (lit,))

    def implies(self, other: "Cube") -> bool:
        """Theorem 3.4: for non-⊥ cubes, ``a ⇒ b`` iff ``b ⊆ a``."""
        return other._set <= self._set

    def contradicts(self, other: "Cube") -> bool:
        """Theorem 3.2: ``a ∧ b = ⊥`` iff ``diff(a, b) ≠ ∅`` (non-⊥ inputs)."""
        return bool(diff(self, other))

    def restrict_to(self, variables: Iterable[int]) -> "Cube":
        """Keep only literals whose variable is in ``variables``."""
        keep = set(variables)
        return Cube(l for l in self._lits if lit_var(l) in keep)


class Clause(_LiteralSet):
    """A disjunction of literals (an IC3 lemma is a clause)."""

    def negate(self) -> Cube:
        """Return the cube ``¬clause``."""
        return Cube(lit_neg(l) for l in self._lits)

    def without(self, lit: int) -> "Clause":
        """Return a copy of the clause with ``lit`` removed."""
        if lit not in self._set:
            raise KeyError(f"literal {lit} not in clause")
        return Clause(l for l in self._lits if l != lit)

    def implies(self, other: "Clause") -> bool:
        """Clause implication by syntactic subsumption: ``a ⇒ b`` if a ⊆ b."""
        return self._set <= other._set


def diff(a: Cube, b: Cube) -> FrozenSet[int]:
    """Definition 3.1: ``diff(a, b) = { l | l ∈ a and ¬l ∈ b }``.

    Note the asymmetry: ``diff(a, b)`` is generally different from
    ``diff(b, a)``.
    """
    b_set = b.literal_set
    return frozenset(l for l in a if -l in b_set)
