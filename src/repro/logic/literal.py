"""Literal helpers.

A literal is a non-zero signed integer in the DIMACS convention: the
positive literal of variable ``v`` is ``v`` and the negative literal is
``-v``.  Variables are numbered from 1.  These helpers exist so the rest
of the codebase reads as intent (``lit_neg(l)``) rather than arithmetic
(``-l``), and so malformed literals are caught early.
"""

from __future__ import annotations


def is_valid_lit(lit: int) -> bool:
    """Return True if ``lit`` is a well-formed literal (non-zero integer)."""
    return isinstance(lit, int) and lit != 0


def lit_var(lit: int) -> int:
    """Return the variable (a positive integer) of a literal."""
    if lit == 0:
        raise ValueError("0 is not a literal")
    return lit if lit > 0 else -lit


def lit_neg(lit: int) -> int:
    """Return the negation of a literal."""
    if lit == 0:
        raise ValueError("0 is not a literal")
    return -lit


def lit_sign(lit: int) -> bool:
    """Return True for a positive literal, False for a negative one."""
    if lit == 0:
        raise ValueError("0 is not a literal")
    return lit > 0


def lit_from_var(var: int, positive: bool = True) -> int:
    """Build a literal from a variable index and a polarity."""
    if var <= 0:
        raise ValueError(f"variable index must be positive, got {var}")
    return var if positive else -var
