"""CNF containers.

A :class:`CNF` is an ordered collection of :class:`~repro.logic.cube.Clause`
objects with helpers for variable accounting, evaluation under a total or
partial assignment, and DIMACS text serialisation.  It is deliberately a
thin, list-like structure: the SAT solver keeps its own internal clause
database and IC3 keeps its own frame bookkeeping; CNF is the exchange
format between layers (transition relations, invariants, certificates).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.logic.cube import Clause, Cube
from repro.logic.literal import lit_var


class CNF:
    """A conjunction of clauses."""

    def __init__(self, clauses: Iterable[Sequence[int]] = ()):
        self._clauses: List[Clause] = []
        for clause in clauses:
            self.add(clause)

    # -- construction --------------------------------------------------------
    def add(self, clause: Sequence[int]) -> Clause:
        """Add a clause (any iterable of literals) and return it."""
        if not isinstance(clause, Clause):
            clause = Clause(clause)
        self._clauses.append(clause)
        return clause

    def extend(self, clauses: Iterable[Sequence[int]]) -> None:
        """Add many clauses."""
        for clause in clauses:
            self.add(clause)

    def add_unit(self, lit: int) -> Clause:
        """Add a unit clause."""
        return self.add([lit])

    def copy(self) -> "CNF":
        """Return a shallow copy (clauses are immutable)."""
        new = CNF()
        new._clauses = list(self._clauses)
        return new

    # -- container protocol --------------------------------------------------
    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __getitem__(self, index: int) -> Clause:
        return self._clauses[index]

    def __contains__(self, clause: object) -> bool:
        return clause in self._clauses

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNF):
            return NotImplemented
        return sorted(self._clauses) == sorted(other._clauses)

    def __repr__(self) -> str:
        return f"CNF(num_clauses={len(self._clauses)}, num_vars={self.num_vars()})"

    # -- queries ---------------------------------------------------------------
    @property
    def clauses(self) -> List[Clause]:
        """The clause list (do not mutate)."""
        return self._clauses

    def variables(self) -> Set[int]:
        """All variables mentioned in the formula."""
        result: Set[int] = set()
        for clause in self._clauses:
            result.update(clause.variables)
        return result

    def num_vars(self) -> int:
        """The largest variable index mentioned (0 for the empty formula)."""
        return max((lit_var(l) for c in self._clauses for l in c), default=0)

    def has_empty_clause(self) -> bool:
        """True if the formula contains the empty (unsatisfiable) clause."""
        return any(c.is_empty() for c in self._clauses)

    # -- evaluation --------------------------------------------------------------
    def evaluate(self, assignment: Dict[int, bool]) -> Optional[bool]:
        """Evaluate under a (possibly partial) assignment ``var -> bool``.

        Returns True/False when the value is determined, None when some
        clause is still undecided.
        """
        undecided = False
        for clause in self._clauses:
            value = _evaluate_clause(clause, assignment)
            if value is False:
                return False
            if value is None:
                undecided = True
        return None if undecided else True

    def satisfied_by(self, cube: Cube) -> Optional[bool]:
        """Evaluate under the partial assignment described by a cube."""
        assignment = {lit_var(l): l > 0 for l in cube}
        return self.evaluate(assignment)

    # -- serialisation -------------------------------------------------------------
    def to_dimacs(self, num_vars: Optional[int] = None) -> str:
        """Render the formula in DIMACS CNF text format."""
        n = num_vars if num_vars is not None else self.num_vars()
        lines = [f"p cnf {n} {len(self._clauses)}"]
        for clause in self._clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF document (comments and header tolerated)."""
        cnf = cls()
        pending: List[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c") or line.startswith("p"):
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            cnf.add(pending)
        return cnf


def _evaluate_clause(clause: Clause, assignment: Dict[int, bool]) -> Optional[bool]:
    """Evaluate one clause under a partial assignment."""
    undecided = False
    for lit in clause:
        var = lit_var(lit)
        if var not in assignment:
            undecided = True
            continue
        if assignment[var] == (lit > 0):
            return True
    return None if undecided else False
