"""Total/partial variable assignments.

:class:`Assignment` is a small convenience wrapper used when replaying
counterexample traces, validating certificates and writing tests.  The SAT
solver itself uses a flat internal representation for speed; this class is
the user-facing one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.logic.cube import Cube
from repro.logic.literal import lit_var


class Assignment:
    """A mapping from variables to Boolean values."""

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[int, bool]] = None):
        self._values: Dict[int, bool] = {}
        if values:
            for var, value in values.items():
                self[var] = value

    # -- mapping protocol ------------------------------------------------------
    def __setitem__(self, var: int, value: bool) -> None:
        if var <= 0:
            raise ValueError(f"variable index must be positive, got {var}")
        self._values[var] = bool(value)

    def __getitem__(self, var: int) -> bool:
        return self._values[var]

    def __contains__(self, var: int) -> bool:
        return var in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        body = ", ".join(f"{v}={'1' if b else '0'}" for v, b in sorted(self._values.items()))
        return f"Assignment({{{body}}})"

    def get(self, var: int, default: Optional[bool] = None) -> Optional[bool]:
        """Return the value of ``var`` or ``default`` if unassigned."""
        return self._values.get(var, default)

    def items(self) -> Iterable[Tuple[int, bool]]:
        """Iterate over (variable, value) pairs."""
        return self._values.items()

    # -- literal views ------------------------------------------------------------
    def value_of_literal(self, lit: int) -> Optional[bool]:
        """Value of a literal under this assignment (None if unassigned)."""
        var = lit_var(lit)
        if var not in self._values:
            return None
        return self._values[var] == (lit > 0)

    def satisfies_cube(self, cube: Cube) -> bool:
        """True if every literal of the cube evaluates to True."""
        return all(self.value_of_literal(l) is True for l in cube)

    def to_cube(self, variables: Optional[Iterable[int]] = None) -> Cube:
        """Project the assignment onto a cube over the given variables.

        With ``variables=None`` all assigned variables are included.
        """
        if variables is None:
            variables = self._values.keys()
        literals = []
        for var in variables:
            if var in self._values:
                literals.append(var if self._values[var] else -var)
        return Cube(literals)

    @classmethod
    def from_cube(cls, cube: Cube) -> "Assignment":
        """Build the partial assignment described by a cube."""
        return cls({lit_var(l): l > 0 for l in cube})
