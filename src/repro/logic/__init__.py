"""Propositional logic primitives shared by the SAT solver and IC3.

Literals are plain DIMACS-style signed integers (variable ``v >= 1``,
negation ``-v``); :class:`~repro.logic.cube.Cube` and
:class:`~repro.logic.cube.Clause` wrap immutable literal sets, and
:class:`~repro.logic.cnf.CNF` is a conjunction of clauses.
"""

from repro.logic.literal import (
    lit_var,
    lit_neg,
    lit_sign,
    lit_from_var,
    is_valid_lit,
)
from repro.logic.cube import Cube, Clause, diff
from repro.logic.cnf import CNF
from repro.logic.assignment import Assignment

__all__ = [
    "lit_var",
    "lit_neg",
    "lit_sign",
    "lit_from_var",
    "is_valid_lit",
    "Cube",
    "Clause",
    "diff",
    "CNF",
    "Assignment",
]
