"""Proof obligations and their priority queue.

IC3's blocking phase maintains a set of *proof obligations* — cubes that
must be blocked at a given frame.  Obligations are handled lowest frame
first (and, within a frame, deepest/oldest first), which is what makes the
explicit backward search of IC3 terminate.  Each obligation keeps a link to
the obligation it is a predecessor of, so a concrete counterexample trace
can be reconstructed when an obligation reaches frame 0.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.logic.cube import Cube


@dataclass
class Obligation:
    """A cube that must be shown unreachable within ``level`` steps."""

    level: int
    depth: int
    cube: Cube
    inputs: Dict[int, bool] = field(default_factory=dict)
    """Input values that drive this state into ``successor``'s cube."""

    successor: Optional["Obligation"] = None
    """The obligation this one is a predecessor of (None for the bad cube)."""

    def chain_to_bad(self) -> List["Obligation"]:
        """The obligation chain from this one up to the original bad cube."""
        chain: List[Obligation] = []
        node: Optional[Obligation] = self
        while node is not None:
            chain.append(node)
            node = node.successor
        return chain


class ObligationQueue:
    """Priority queue of obligations ordered by (level, depth, age)."""

    def __init__(self) -> None:
        self._heap: List = []
        self._counter = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        """True if no obligation is pending."""
        return self._size == 0

    def push(self, obligation: Obligation) -> None:
        """Add an obligation."""
        heapq.heappush(
            self._heap,
            (obligation.level, -obligation.depth, next(self._counter), obligation),
        )
        self._size += 1

    def pop(self) -> Obligation:
        """Remove and return the obligation with the lowest level."""
        if self._size == 0:
            raise IndexError("pop from an empty obligation queue")
        _, _, _, obligation = heapq.heappop(self._heap)
        self._size -= 1
        return obligation

    def peek_level(self) -> Optional[int]:
        """Level of the next obligation, or None when empty."""
        if self._size == 0:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop all pending obligations."""
        self._heap.clear()
        self._size = 0
