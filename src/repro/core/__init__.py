"""Model-checking engines.

The central piece is :class:`~repro.core.ic3.IC3`, an IC3/PDR engine with
pluggable inductive-generalization strategies and the paper's CTP-based
lemma prediction (:mod:`repro.core.predict`).  BMC and k-induction are
provided as baselines and cross-checking oracles, and
:mod:`repro.core.invariant` validates the certificates produced by all of
them.
"""

from repro.core.options import IC3Options, GeneralizationStrategy, LiteralOrdering
from repro.core.result import (
    CheckResult,
    CheckOutcome,
    Certificate,
    CounterexampleTrace,
    TraceStep,
)
from repro.core.stats import IC3Stats
from repro.core.ic3 import IC3
from repro.core.bmc import BMC
from repro.core.kinduction import KInduction
from repro.core.invariant import (
    check_certificate,
    check_counterexample,
    CertificateError,
)

__all__ = [
    "IC3",
    "IC3Options",
    "GeneralizationStrategy",
    "LiteralOrdering",
    "IC3Stats",
    "CheckResult",
    "CheckOutcome",
    "Certificate",
    "CounterexampleTrace",
    "TraceStep",
    "BMC",
    "KInduction",
    "check_certificate",
    "check_counterexample",
    "CertificateError",
]
