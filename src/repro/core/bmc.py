"""Bounded model checking.

BMC unrolls the transition relation ``k`` times and asks a single SAT
query per depth: ``I(s_0) ∧ T(s_0,s_1) ∧ ... ∧ T(s_{k-1},s_k) ∧ Bad(s_k)``.
It is complete only for finding counterexamples, which makes it the
natural cross-checking oracle for IC3's UNSAFE verdicts and a baseline in
the evaluation harness.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.aiger.aig import AIG
from repro.core.result import (
    CheckOutcome,
    CheckResult,
    CounterexampleTrace,
    TraceStep,
)
from repro.core.share import UnrollingInvariantImporter
from repro.core.stats import IC3Stats
from repro.obs.heartbeat import get_heartbeat
from repro.obs.tracer import get_tracer
from repro.ts.unroll import Unroller


class BMC:
    """Bounded model checker over an AIG."""

    def __init__(
        self,
        aig: AIG,
        property_index: int = 0,
        sat_backend: str = "default",
        seed: int = 0,
        lemma_port=None,
        lemma_map=None,
    ):
        self.aig = aig
        self.property_index = property_index
        # One persistent unrolling for the whole run: deeper bounds only
        # append frames, and the initial-state constraint rides along as
        # an assumption so the encoding itself stays reusable.
        self.unroller = Unroller(
            aig, init_as_assumption=True, backend=sat_backend, seed=seed
        )
        self.stats = IC3Stats()
        self.importer = None
        if lemma_port is not None:
            self.importer = UnrollingInvariantImporter(
                lemma_port, aig, self.unroller, self.stats,
                map_in=lemma_map, sat_backend=sat_backend,
            )

    def check(
        self,
        max_depth: int = 50,
        time_limit: Optional[float] = None,
    ) -> CheckOutcome:
        """Search for a counterexample of length up to ``max_depth``.

        Returns UNSAFE with a trace if one exists within the bound, and
        UNKNOWN otherwise (BMC alone cannot prove safety).
        """
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None
        tracer = get_tracer()
        for depth in range(max_depth + 1):
            if deadline is not None and time.perf_counter() > deadline:
                return self._outcome(CheckResult.UNKNOWN, start, reason="time limit reached")
            hb = get_heartbeat()
            if hb.enabled:
                hb.update(engine="bmc", bound=depth, sat_calls=self.stats.sat_calls)
            if self.importer is not None:
                self.importer.drain()
                self.importer.flush()
            bad_lit = self.unroller.bad_lit_at(depth, self.property_index)
            self.stats.sat_calls += 1
            sat_start = time.perf_counter()
            if tracer.enabled:
                with tracer.span("bmc.depth", cat="bmc", depth=depth) as span:
                    satisfiable = self.unroller.solver.solve(
                        self.unroller.init_assumptions() + [bad_lit]
                    )
                    span.add(sat=satisfiable)
            else:
                satisfiable = self.unroller.solver.solve(
                    self.unroller.init_assumptions() + [bad_lit]
                )
            self.stats.sat_time += time.perf_counter() - sat_start
            if satisfiable:
                trace = self._extract_trace(depth)
                outcome = self._outcome(CheckResult.UNSAFE, start)
                outcome.trace = trace
                outcome.frames = depth
                return outcome
        return self._outcome(
            CheckResult.UNKNOWN, start, reason=f"no counterexample up to depth {max_depth}"
        )

    def check_depth(self, depth: int) -> bool:
        """True if a counterexample of exactly ``depth`` transitions exists."""
        bad_lit = self.unroller.bad_lit_at(depth, self.property_index)
        self.stats.sat_calls += 1
        return self.unroller.solver.solve(
            self.unroller.init_assumptions() + [bad_lit]
        )

    # ------------------------------------------------------------------
    def _extract_trace(self, depth: int) -> CounterexampleTrace:
        model = self.unroller.solver.get_model()
        steps = []
        for frame in range(depth + 1):
            steps.append(
                TraceStep(
                    state=self.unroller.latch_cube_at(model, frame),
                    inputs=self.unroller.input_values_at(model, frame),
                )
            )
        return CounterexampleTrace(steps=steps)

    def _outcome(self, result: CheckResult, start: float, reason: str = "") -> CheckOutcome:
        solver_stats = self.unroller.solver.stats
        self.stats.solver_conflicts = solver_stats.conflicts
        self.stats.solver_decisions = solver_stats.decisions
        self.stats.solver_propagations = solver_stats.propagations
        return CheckOutcome(
            result=result,
            runtime=time.perf_counter() - start,
            stats=self.stats,
            engine="bmc",
            reason=reason,
        )
