"""k-induction.

A property is k-inductive if it holds in the first ``k`` states of every
execution (base case, a BMC query) and any ``k`` consecutive property-
satisfying states are followed by another one (step case, checked on an
unrolling that is not anchored at the initial states).  k-induction can
prove safety for many shallow properties and serves as an additional
baseline and cross-check for IC3's SAFE verdicts.

Both cases run on **one** persistent unrolling per engine: the
initial-state constraint is guarded by an activation literal (see
:class:`~repro.ts.unroll.Unroller`), so the base case assumes it while
the step case leaves frame 0 unconstrained — the time-frame clauses and
everything the solver learns about them are shared, and increasing ``k``
only appends frames instead of re-encoding two unrollings per bound.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.aiger.aig import AIG
from repro.core.result import CheckOutcome, CheckResult, Certificate
from repro.core.share import UnrollingInvariantImporter
from repro.core.stats import IC3Stats
from repro.obs.heartbeat import get_heartbeat
from repro.obs.tracer import get_tracer
from repro.ts.unroll import Unroller


class KInduction:
    """k-induction engine over an AIG."""

    def __init__(
        self,
        aig: AIG,
        property_index: int = 0,
        sat_backend: str = "default",
        seed: int = 0,
        lemma_port=None,
        lemma_map=None,
    ):
        self.aig = aig
        self.property_index = property_index
        self.unroller = Unroller(
            aig, use_init=True, init_as_assumption=True, backend=sat_backend, seed=seed
        )
        self.stats = IC3Stats()
        self.importer = None
        if lemma_port is not None:
            self.importer = UnrollingInvariantImporter(
                lemma_port, aig, self.unroller, self.stats,
                map_in=lemma_map, sat_backend=sat_backend,
            )

    def check(
        self,
        max_k: int = 20,
        time_limit: Optional[float] = None,
    ) -> CheckOutcome:
        """Try to prove (or refute) the property with increasing ``k``."""
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None

        unroller = self.unroller

        for k in range(1, max_k + 1):
            if deadline is not None and time.perf_counter() > deadline:
                return self._outcome(CheckResult.UNKNOWN, start, "time limit reached")
            hb = get_heartbeat()
            if hb.enabled:
                hb.update(engine="k-induction", k=k, sat_calls=self.stats.sat_calls)
            if self.importer is not None:
                self.importer.drain()
                self.importer.flush()

            # Base case: no counterexample of length < k (frame 0 is
            # anchored at the initial states through the init assumption).
            bad = unroller.bad_lit_at(k - 1, self.property_index)
            self.stats.sat_calls += 1
            sat_start = time.perf_counter()
            tracer = get_tracer()
            if tracer.enabled:
                with tracer.span("kind.base", cat="kind", k=k) as span:
                    base_sat = unroller.solver.solve(unroller.init_assumptions() + [bad])
                    span.add(sat=base_sat)
            else:
                base_sat = unroller.solver.solve(unroller.init_assumptions() + [bad])
            self.stats.sat_time += time.perf_counter() - sat_start
            if base_sat:
                outcome = self._outcome(CheckResult.UNSAFE, start)
                outcome.frames = k - 1
                return outcome

            # Step case: k good states are followed by a good state, on
            # the same unrolling but without the init assumption.
            # Assume !bad at frames 0..k-1, ask for bad at frame k.
            assumptions = [
                -unroller.bad_lit_at(frame, self.property_index)
                for frame in range(k)
            ]
            assumptions.append(unroller.bad_lit_at(k, self.property_index))
            self.stats.sat_calls += 1
            sat_start = time.perf_counter()
            if tracer.enabled:
                with tracer.span("kind.step", cat="kind", k=k) as span:
                    step_sat = unroller.solver.solve(assumptions)
                    span.add(sat=step_sat)
            else:
                step_sat = unroller.solver.solve(assumptions)
            self.stats.sat_time += time.perf_counter() - sat_start
            if not step_sat:
                outcome = self._outcome(CheckResult.SAFE, start)
                outcome.certificate = Certificate(clauses=[], level=k)
                outcome.frames = k
                return outcome

        reason = f"property is not k-inductive for k <= {max_k}"
        if self.importer is None or deadline is None:
            return self._outcome(CheckResult.UNKNOWN, start, reason)
        return self._cooperative_wait(max_k, start, deadline, reason)

    def _cooperative_wait(
        self, max_k: int, start: float, deadline: float, reason: str
    ) -> CheckOutcome:
        """Keep listening for foreign invariants after the sweep is exhausted.

        Every base case up to ``max_k`` is already UNSAT, and imported
        clauses are validated global invariants, so retrying only the step
        cases on the strengthened unrolling is sound: a property that is
        not k-inductive on its own often becomes (1-)inductive relative to
        invariants another portfolio member has proven.  The sleep yields
        the core to the members still deriving lemmas.
        """
        tracer = get_tracer()
        quiet = 0
        while time.perf_counter() <= deadline:
            imported_before = self.stats.lemmas_imported
            self.importer.drain()
            if self.stats.lemmas_imported == imported_before:
                quiet += 1
                # The importer batches Houdini attempts; once the stream
                # has been quiet a few polls, force the deferred attempt
                # so a final burst of donor lemmas is not left unused.
                if quiet < 4 or self.importer.flush() == 0:
                    time.sleep(0.005)
                    continue
            quiet = 0
            for k in range(1, max_k + 1):
                if time.perf_counter() > deadline:
                    break
                assumptions = [
                    -self.unroller.bad_lit_at(frame, self.property_index)
                    for frame in range(k)
                ]
                assumptions.append(self.unroller.bad_lit_at(k, self.property_index))
                self.stats.sat_calls += 1
                sat_start = time.perf_counter()
                if tracer.enabled:
                    with tracer.span("kind.step", cat="kind", k=k, retry=True) as span:
                        step_sat = self.unroller.solver.solve(assumptions)
                        span.add(sat=step_sat)
                else:
                    step_sat = self.unroller.solver.solve(assumptions)
                self.stats.sat_time += time.perf_counter() - sat_start
                if not step_sat:
                    outcome = self._outcome(CheckResult.SAFE, start)
                    outcome.certificate = Certificate(clauses=[], level=k)
                    outcome.frames = k
                    return outcome
        return self._outcome(CheckResult.UNKNOWN, start, reason)

    def _outcome(self, result: CheckResult, start: float, reason: str = "") -> CheckOutcome:
        solver_stats = self.unroller.solver.stats
        self.stats.solver_conflicts = solver_stats.conflicts
        self.stats.solver_decisions = solver_stats.decisions
        self.stats.solver_propagations = solver_stats.propagations
        return CheckOutcome(
            result=result,
            runtime=time.perf_counter() - start,
            stats=self.stats,
            engine="k-induction",
            reason=reason,
        )
