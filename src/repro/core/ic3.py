"""The IC3/PDR engine with optional CTP-based lemma prediction.

The engine follows Algorithm 1 of the paper (which itself is standard
IC3): a blocking phase removes property-violating states from the top
frame by recursively blocking their predecessors and generalizing the
resulting lemmas, and a propagation phase pushes lemmas forward until two
consecutive frames coincide, at which point the frame is an inductive
invariant.  With ``IC3Options.enable_prediction`` the modifications of
Algorithm 2 are active: push failures record counterexamples to
propagation, and generalization first tries to predict a lemma from a
failed parent before falling back to dropping variables.

Typical use::

    from repro.benchgen import counter_overflow
    from repro.core import IC3, IC3Options

    outcome = IC3(counter_overflow(8), IC3Options().with_prediction()).check()
    print(outcome.summary())
"""

from __future__ import annotations

import logging
import time
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.aiger.aig import AIG
from repro.core.frames import BadState, make_frame_manager
from repro.core.generalize import make_generalizer
from repro.core.obligations import Obligation, ObligationQueue
from repro.core.options import IC3Options
from repro.core.predict import LemmaPredictor
from repro.core.share import _DRAIN_OBLIGATION_INTERVAL, FrameLemmaExchange
from repro.core.result import (
    Certificate,
    CheckOutcome,
    CheckResult,
    CounterexampleTrace,
    TraceStep,
)
from repro.core.stats import IC3Stats
from repro.logic.cube import Clause, Cube
from repro.obs.heartbeat import get_heartbeat
from repro.obs.tracer import get_tracer
from repro.ts.system import TransitionSystem

_LOG = logging.getLogger(__name__)
"""Verbose progress goes through ``logging`` (namespace
``repro.core.ic3``), not ``print``: parallel ``--jobs N`` runs no longer
interleave garbage on stdout, and the same information lands in traces
as instant events.  The CLI installs a handler when ``--verbose`` is
given; library users configure logging themselves."""


class IC3:
    """Safety model checker for AIGs / transition systems."""

    def __init__(
        self,
        system: Union[AIG, TransitionSystem],
        options: Optional[IC3Options] = None,
        property_index: int = 0,
        seed_clauses: Optional[Sequence[Sequence[int]]] = None,
        lemma_port=None,
        lemma_maps=None,
    ):
        """``seed_clauses`` are invariant clauses proved for sibling
        properties of the same model, given over *latch indices*: literal
        ``±(index + 1)`` refers to latch ``index`` of the model.  Every
        clause must hold on all reachable states (the caller's contract —
        certificates validated by :func:`repro.core.invariant.
        check_certificate` satisfy it); clauses are then sound to inject
        into every frame and act as free lemmas.

        ``lemma_port`` is an optional cooperative-portfolio bus port
        (the ``publish``/``pending``/``drain`` shape of
        :mod:`repro.engines.lembus`); when given, newly proven frame
        lemmas are exported and foreign lemmas are imported — after
        local revalidation — at the engine's check-in points.
        ``lemma_maps`` is an optional ``(map_in, map_out)`` pair of
        clause translators between the bus's latch-index space and this
        engine's (for members that reduced their model further).
        """
        if isinstance(system, TransitionSystem):
            self.ts = system
        else:
            self.ts = TransitionSystem(system, property_index=property_index)
        self._seed_clauses = [list(clause) for clause in (seed_clauses or [])]
        self.options = options if options is not None else IC3Options()
        self.options.validate()

        self.stats = IC3Stats()
        self.frames = make_frame_manager(self.ts, self.options, self.stats)
        self.exchange: Optional[FrameLemmaExchange] = None
        if lemma_port is not None:
            map_in, map_out = lemma_maps if lemma_maps is not None else (None, None)
            self.exchange = FrameLemmaExchange(
                lemma_port, self.ts, self.frames, self.stats,
                map_in=map_in, map_out=map_out,
            )
        self._literal_activity: Dict[int, float] = {}
        self.generalizer = make_generalizer(
            self.frames, self.ts, self.options, self.stats, self._literal_activity
        )
        self.predictor = LemmaPredictor(self.frames, self.options, self.stats)

        self._deadline: Optional[float] = None
        self._start_time = 0.0

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def check(self, time_limit: Optional[float] = None) -> CheckOutcome:
        """Run the model checker; returns a :class:`CheckOutcome`."""
        self._start_time = time.perf_counter()
        self._deadline = (
            self._start_time + time_limit if time_limit is not None else None
        )
        try:
            outcome = self._run()
        except _TimeoutSignal:
            outcome = self._unknown("time limit reached")
        except _BudgetSignal as signal:
            outcome = self._unknown(str(signal))
        outcome.runtime = time.perf_counter() - self._start_time
        self.frames.finalize_stats()
        outcome.stats = self.stats
        outcome.stats.time_total = outcome.runtime
        outcome.frames = self.frames.top_level
        return outcome

    # ------------------------------------------------------------------
    # Main loop (Algorithm 1, procedure ic3)
    # ------------------------------------------------------------------
    def _run(self) -> CheckOutcome:
        if not self.ts.latch_vars:
            return self._check_combinational()

        # Counterexamples of length 0: an initial state violates P.
        bad_init = self.frames.get_bad_state(0)
        if bad_init is not None:
            trace = CounterexampleTrace(
                steps=[TraceStep(state=bad_init.state, inputs=bad_init.input_values)]
            )
            return CheckOutcome(
                result=CheckResult.UNSAFE, trace=trace, engine=self._engine_name()
            )

        self.frames.add_frame()  # open F_1 = ⊤
        self._apply_seed_clauses()
        while True:
            self._check_limits()
            top = self.frames.top_level
            tracer = get_tracer()
            self._publish_heartbeat(top)

            # Blocking phase: make F_top ⇒ P.
            while True:
                self._check_limits()
                self._drain_shared()
                bad = self.frames.get_bad_state(top)
                if bad is None:
                    break
                if tracer.enabled:
                    with tracer.span("ic3.block", cat="ic3", level=top):
                        blocked, trace = self._block_bad_state(bad, top)
                else:
                    blocked, trace = self._block_bad_state(bad, top)
                if not blocked:
                    return CheckOutcome(
                        result=CheckResult.UNSAFE,
                        trace=trace,
                        engine=self._engine_name(),
                    )

            if self.frames.top_level + 1 > self.options.max_frames:
                return self._unknown("frame limit reached")
            if tracer.enabled:
                with tracer.span("ic3.extend", cat="ic3", new_top=top + 1):
                    self.frames.add_frame()
            else:
                self.frames.add_frame()
            self._drain_shared()
            invariant_level = self._propagate()
            if self.options.verbose >= 1:
                self._log_frame_progress()
            if invariant_level is not None:
                certificate = Certificate(
                    clauses=self.frames.frame_clauses(invariant_level),
                    level=invariant_level,
                )
                return CheckOutcome(
                    result=CheckResult.SAFE,
                    certificate=certificate,
                    engine=self._engine_name(),
                )

    def _apply_seed_clauses(self) -> None:
        """Install shared invariant lemmas into frame 1.

        Each latch-index clause is translated to this system's latch
        variables and added as a blocked cube.  Clauses that do not hold
        on the initial states are skipped (they would be unsound as
        lemmas here — e.g. after an initial-value-changing reduction).
        """
        for index_clause in self._seed_clauses:
            self.stats.shared_lemmas_offered += 1
            literals = []
            valid = True
            for lit in index_clause:
                index = abs(lit) - 1
                if not 0 <= index < len(self.ts.latch_vars):
                    valid = False
                    break
                var = self.ts.latch_vars[index]
                literals.append(var if lit > 0 else -var)
            if not valid or not literals:
                continue
            clause = Clause(literals)
            if not self.ts.clause_holds_on_init(clause):
                continue
            self.frames.add_blocked_cube(clause.negate(), 1)
            self.stats.shared_lemmas_applied += 1

    # ------------------------------------------------------------------
    # Blocking phase
    # ------------------------------------------------------------------
    def _block_bad_state(
        self, bad: BadState, level: int
    ) -> Tuple[bool, Optional[CounterexampleTrace]]:
        """Block a bad state of the top frame; False means a real counterexample."""
        queue = ObligationQueue()
        queue.push(
            Obligation(
                level=level,
                depth=0,
                cube=bad.state,
                inputs=bad.input_values,
                successor=None,
            )
        )

        while not queue.is_empty():
            self._check_limits()
            obligation = queue.pop()
            self.stats.obligations_processed += 1
            if self.stats.obligations_processed > self.options.max_obligations:
                raise _BudgetSignal("obligation limit reached")
            if self.stats.obligations_processed % _DRAIN_OBLIGATION_INTERVAL == 0:
                self._drain_shared()
                hb = get_heartbeat()
                if hb.enabled:
                    hb.update(
                        obligations=self.stats.obligations_processed,
                        sat_calls=self.stats.sat_calls,
                    )
            get_tracer().sample(
                "ic3.obligations",
                self.stats.obligations_processed,
                cat="ic3",
                level=obligation.level,
                depth=obligation.depth,
            )

            if obligation.level == 0:
                return False, self._build_trace(obligation)

            if self.frames.is_blocked_syntactically(obligation.cube, obligation.level):
                self._requeue_above(queue, obligation)
                continue

            result = self._consecution(obligation.level - 1, obligation.cube)
            if result.holds:
                base = self._usable_core(result.core_cube, obligation.cube)
                lemma_cube, push_start = self._generalize(base, obligation)
                final_level = self._push_lemma(lemma_cube, max(push_start, obligation.level))
                self.frames.add_blocked_cube(lemma_cube, final_level)
                self._bump_activity(lemma_cube)
                if self.options.verbose >= 2:
                    _LOG.debug(
                        "[ic3] blocked |cube|=%d at level %d",
                        len(lemma_cube),
                        final_level,
                    )
                self._requeue_above(queue, obligation, at_level=final_level + 1)
            else:
                self.stats.ctis += 1
                predecessor = result.predecessor
                # Lifting is sound for blocking but makes *traces* partial:
                # on models with invariant constraints the deterministic
                # replay of a partial cube may leave the constrained state
                # space, so counterexamples must stay concrete there.
                lifting_ok = self.options.enable_lifting and not self.ts.aig.constraints
                if lifting_ok and predecessor is not None:
                    predecessor = self.frames.lift_predecessor(
                        predecessor, result.inputs, obligation.cube
                    )
                queue.push(
                    Obligation(
                        level=obligation.level - 1,
                        depth=obligation.depth + 1,
                        cube=predecessor,
                        inputs=result.input_values,
                        successor=obligation,
                    )
                )
                queue.push(obligation)
        return True, None

    def _requeue_above(
        self, queue: ObligationQueue, obligation: Obligation, at_level: Optional[int] = None
    ) -> None:
        """Re-enqueue an obligation one frame higher (IC3ref-style aggressive push)."""
        if not self.options.aggressive_push:
            return
        level = at_level if at_level is not None else obligation.level + 1
        if level > self.frames.top_level:
            return
        queue.push(
            Obligation(
                level=level,
                depth=obligation.depth,
                cube=obligation.cube,
                inputs=obligation.inputs,
                successor=obligation.successor,
            )
        )

    def _consecution(self, level: int, cube: Cube):
        """Relative-induction query, traced as an ``ic3.consecution`` span."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self.frames.consecution(level, cube)
        with tracer.span("ic3.consecution", cat="ic3", level=level, size=len(cube)) as span:
            result = self.frames.consecution(level, cube)
            span.add(holds=result.holds)
        return result

    def _usable_core(self, core_cube: Optional[Cube], original: Cube) -> Cube:
        """Use the consecution core as the generalization seed when sound."""
        if (
            not self.options.use_unsat_core_shrinking
            or core_cube is None
            or core_cube.is_empty()
            or self.ts.cube_intersects_init(core_cube)
        ):
            return original
        return core_cube

    # ------------------------------------------------------------------
    # Generalization (Algorithm 2, function generalize)
    # ------------------------------------------------------------------
    def _generalize(self, cube: Cube, obligation: Obligation) -> Tuple[Cube, int]:
        """Generalize a blockable cube; returns (cube, minimum push level).

        When prediction succeeds the predicted cube is returned unchanged
        (it is already considered high quality); otherwise the configured
        MIC strategy runs on the core-shrunk cube.
        """
        level = obligation.level
        self.stats.generalizations += 1
        tracer = get_tracer()

        if self.options.enable_prediction:
            start = time.perf_counter()
            if tracer.enabled:
                with tracer.span(
                    "ic3.predict", cat="ic3", level=level, size=len(obligation.cube)
                ) as span:
                    prediction = self.predictor.predict(obligation.cube, level)
                    span.add(hit=prediction is not None)
            else:
                prediction = self.predictor.predict(obligation.cube, level)
            self.stats.time_prediction += time.perf_counter() - start
            if prediction is not None:
                return prediction.cube, level

        start = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                "ic3.generalize", cat="ic3", level=level, size=len(cube)
            ) as span:
                generalized = self.generalizer.generalize(cube, level)
                span.add(final_size=len(generalized))
        else:
            generalized = self.generalizer.generalize(cube, level)
        self.stats.time_generalization += time.perf_counter() - start
        return generalized, level

    def _push_lemma(self, cube: Cube, level: int) -> int:
        """Push a freshly learnt lemma as far forward as it stays inductive.

        Records the counterexample to propagation of the final, failed push
        (Algorithm 2 line 38) so that later generalizations can predict
        from it.
        """
        current = level
        while current < self.frames.top_level:
            result = self._consecution(current, cube)
            if result.holds:
                current += 1
                continue
            if self.options.enable_prediction:
                self.predictor.record_push_failure(cube, current, result.successor)
            break
        return current

    def _bump_activity(self, cube: Cube) -> None:
        for literal in cube:
            var = abs(literal)
            self._literal_activity[var] = self._literal_activity.get(var, 0.0) + 1.0

    # ------------------------------------------------------------------
    # Propagation phase (Algorithm 2, function propagate)
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        """Push lemmas forward; returns the invariant level if a fixpoint appears."""
        tracer = get_tracer()
        if not tracer.enabled:
            return self._propagate_inner()
        with tracer.span(
            "ic3.propagate", cat="ic3", top=self.frames.top_level
        ) as span:
            invariant_level = self._propagate_inner()
            span.add(fixpoint=invariant_level is not None)
        return invariant_level

    def _propagate_inner(self) -> Optional[int]:
        start = time.perf_counter()
        if self.options.enable_prediction and self.options.clear_ctp_before_propagation:
            self.predictor.clear_table()

        invariant_level: Optional[int] = None
        for level in range(1, self.frames.top_level):
            for cube in self.frames.lemmas_exactly_at(level):
                self._check_limits()
                result = self._consecution(level, cube)
                if result.holds:
                    self.frames.promote_cube(cube, level, level + 1)
                else:
                    if self.options.enable_prediction:
                        self.predictor.record_push_failure(cube, level, result.successor)
            if self.frames.frames_equal(level):
                invariant_level = level + 1
                break

        # Decay literal activities once per propagation round.
        for var in self._literal_activity:
            self._literal_activity[var] *= 0.9

        self.stats.time_propagation += time.perf_counter() - start
        return invariant_level

    # ------------------------------------------------------------------
    # Counterexample / special cases
    # ------------------------------------------------------------------
    def _build_trace(self, initial_obligation: Obligation) -> CounterexampleTrace:
        """Assemble the trace from the obligation chain reaching frame 0."""
        steps = [
            TraceStep(state=node.cube, inputs=node.inputs)
            for node in initial_obligation.chain_to_bad()
        ]
        return CounterexampleTrace(steps=steps)

    def _check_combinational(self) -> CheckOutcome:
        """Handle latch-free circuits: the property is violated iff Bad is SAT."""
        bad = self.frames.get_bad_state(0)
        if bad is None:
            return CheckOutcome(
                result=CheckResult.SAFE,
                certificate=Certificate(clauses=[], level=0),
                engine=self._engine_name(),
            )
        trace = CounterexampleTrace(
            steps=[TraceStep(state=bad.state, inputs=bad.input_values)]
        )
        return CheckOutcome(
            result=CheckResult.UNSAFE, trace=trace, engine=self._engine_name()
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _engine_name(self) -> str:
        return "ic3-pl" if self.options.enable_prediction else "ic3"

    def _unknown(self, reason: str) -> CheckOutcome:
        return CheckOutcome(
            result=CheckResult.UNKNOWN, reason=reason, engine=self._engine_name()
        )

    def _drain_shared(self) -> None:
        """Import pending bus lemmas at a safe check-in point."""
        if self.exchange is not None:
            self.exchange.drain()

    def _publish_heartbeat(self, top: int) -> None:
        """Refresh live progress once per outer-loop round (cheap: a few
        dict writes behind one ``enabled`` check)."""
        hb = get_heartbeat()
        if not hb.enabled:
            return
        fields = {
            "engine": self._engine_name(),
            "frame": top,
            "lemmas": sum(self.frames.lemma_counts()),
            "obligations": self.stats.obligations_processed,
            "sat_calls": self.stats.sat_calls,
        }
        if self.exchange is not None:
            fields["published"] = self.stats.lemmas_published
            fields["imported"] = self.stats.lemmas_imported
        hb.update(**fields)

    def _check_limits(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise _TimeoutSignal()

    def _log_frame_progress(self) -> None:
        counts = self.frames.lemma_counts()
        _LOG.info(
            "[ic3] k=%d lemmas/level=%s sat_calls=%d predictions=%d/%d",
            self.frames.top_level,
            counts,
            self.stats.sat_calls,
            self.stats.prediction_successes,
            self.stats.prediction_queries,
        )
        get_tracer().instant(
            "ic3.frame",
            cat="ic3",
            k=self.frames.top_level,
            lemmas=sum(counts),
            sat_calls=self.stats.sat_calls,
        )


class _TimeoutSignal(Exception):
    """Internal control-flow signal for the per-run time limit."""


class _BudgetSignal(Exception):
    """Internal control-flow signal for obligation/frame budgets."""
