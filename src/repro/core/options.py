"""Configuration of the IC3 engine.

The options mirror the configurations evaluated in the paper: a base IC3
(``IC3Options()``), the same engine with lemma prediction enabled
(``IC3Options.with_prediction()``), the CAV'23-style parent-ordered
generalization, a CTG-enabled variant, and an ABC-PDR-like profile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

class GeneralizationStrategy(str, Enum):
    """Which inductive-generalization algorithm the engine uses."""

    BASIC = "basic"
    CTG = "ctg"
    PARENT_ORDERED = "parent-ordered"


class LiteralOrdering(str, Enum):
    """Order in which MIC tries to drop literals from a cube."""

    INDEX = "index"
    REVERSE_INDEX = "reverse-index"
    ACTIVITY = "activity"


@dataclass
class IC3Options:
    """Tunable parameters of :class:`~repro.core.ic3.IC3`."""

    # --- the paper's contribution -------------------------------------
    enable_prediction: bool = False
    """Predict candidate lemmas from CTPs before dropping variables (Alg. 2)."""

    clear_ctp_before_propagation: bool = True
    """Clear the failure-push table before each propagation phase (Alg. 2 l.44)."""

    refine_diff_set: bool = True
    """On a failed prediction, intersect the diff set with the new CTP (Alg. 2 l.27)."""

    max_prediction_candidates: int = 8
    """Upper bound on SAT queries spent per generalization on predictions."""

    # --- generalization --------------------------------------------------
    generalization: GeneralizationStrategy = GeneralizationStrategy.BASIC
    literal_ordering: LiteralOrdering = LiteralOrdering.INDEX
    use_unsat_core_shrinking: bool = True
    """Shrink cubes with the assumption core of successful consecution calls."""

    mic_max_rounds: int = 1
    """How many full passes MIC makes over the cube literals."""

    ctg_depth: int = 1
    """Recursion depth for CTG handling (only with the CTG strategy)."""

    max_ctgs: int = 3
    """How many counterexamples-to-generalization to block per literal drop."""

    # --- engine behaviour -------------------------------------------------
    enable_lifting: bool = True
    """Shrink predecessor states with assumption cores before enqueuing them."""

    aggressive_push: bool = True
    """After blocking, re-enqueue the obligation one level higher (IC3ref style)."""

    max_frames: int = 10_000
    """Give up (UNKNOWN) after this many frames."""

    max_obligations: int = 1_000_000
    """Give up (UNKNOWN) after this many proof obligations."""

    frame_backend: str = "monolithic"
    """Frame-management substrate: ``"monolithic"`` keeps one incremental
    solver with activation-literal frame selection; ``"per-frame"`` is the
    classic one-solver-per-frame baseline."""

    sat_backend: str = "default"
    """Registered SAT backend name used by the monolithic substrate
    (see :func:`repro.sat.context.register_sat_backend`)."""

    solver_rebuild_interval: int = 400
    """Per-frame backend only: rebuild a frame solver after this many
    garbage clauses (temporary activation tombstones + subsumed lemmas)."""

    check_predicted_lemmas: bool = False
    """Assert the Section 3.2 invariants (t ⊭ c3, b ⊨ c3, c2 ⊆ c3) on every prediction."""

    verbose: int = 0
    """0 = silent, 1 = per-frame progress, 2 = per-obligation detail."""

    seed: int = 0
    """Deterministic RNG seed for the SAT kernels' randomized branching
    (see :meth:`repro.sat.solver.Solver.set_seed`).  0 disables the
    randomization entirely; any non-zero seed gives a reproducible but
    diversified decision order — the portfolio uses distinct seeds per
    member so cooperative lemma sharing has value."""

    # ------------------------------------------------------------------
    # Named profiles used by the evaluation harness
    # ------------------------------------------------------------------
    def with_prediction(self) -> "IC3Options":
        """Return a copy of these options with lemma prediction enabled."""
        return replace(self, enable_prediction=True)

    @classmethod
    def profile_ic3_a(cls) -> "IC3Options":
        """Baseline engine A (plays the role of IC3ref in the paper)."""
        return cls(
            generalization=GeneralizationStrategy.BASIC,
            literal_ordering=LiteralOrdering.INDEX,
            enable_lifting=True,
        )

    @classmethod
    def profile_ic3_b(cls) -> "IC3Options":
        """Baseline engine B (plays the role of RIC3 in the paper)."""
        return cls(
            generalization=GeneralizationStrategy.BASIC,
            literal_ordering=LiteralOrdering.ACTIVITY,
            enable_lifting=False,
            aggressive_push=False,
        )

    @classmethod
    def profile_cav23(cls) -> "IC3Options":
        """Parent-lemma-ordered generalization (stands in for IC3ref-CAV23)."""
        return cls(
            generalization=GeneralizationStrategy.PARENT_ORDERED,
            literal_ordering=LiteralOrdering.INDEX,
        )

    @classmethod
    def profile_pdr(cls) -> "IC3Options":
        """ABC-PDR-like profile: CTG generalization and aggressive pushing."""
        return cls(
            generalization=GeneralizationStrategy.CTG,
            literal_ordering=LiteralOrdering.ACTIVITY,
            aggressive_push=True,
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.max_prediction_candidates < 1:
            raise ValueError("max_prediction_candidates must be at least 1")
        if self.mic_max_rounds < 1:
            raise ValueError("mic_max_rounds must be at least 1")
        if self.ctg_depth < 0 or self.max_ctgs < 0:
            raise ValueError("CTG parameters must be non-negative")
        if self.max_frames < 1:
            raise ValueError("max_frames must be at least 1")
        if self.solver_rebuild_interval < 1:
            raise ValueError("solver_rebuild_interval must be at least 1")
        # Imported lazily: frames imports this module at load time.
        from repro.core.frames import available_frame_backends

        if self.frame_backend not in available_frame_backends():
            raise ValueError(
                f"frame_backend must be one of "
                f"{', '.join(available_frame_backends())}, "
                f"got {self.frame_backend!r}"
            )
        if not self.sat_backend:
            raise ValueError("sat_backend must be a registered backend name")
        if self.seed < 0:
            raise ValueError("seed must be non-negative (0 disables randomization)")
