"""Results returned by the model-checking engines.

A run ends in one of three verdicts: SAFE (with an inductive-invariant
:class:`Certificate`), UNSAFE (with a :class:`CounterexampleTrace` that can
be replayed on the AIG), or UNKNOWN (resource limit reached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.logic.cnf import CNF
from repro.logic.cube import Clause, Cube
from repro.core.stats import IC3Stats


class CheckResult(str, Enum):
    """Verdict of a model-checking run."""

    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"

    @property
    def solved(self) -> bool:
        """True if the run produced a definite answer."""
        return self in (CheckResult.SAFE, CheckResult.UNSAFE)


@dataclass
class Certificate:
    """An inductive invariant proving the property.

    ``clauses`` are over the transition system's current-state (latch)
    variables.  The invariant is their conjunction together with the
    property itself; :func:`repro.core.invariant.check_certificate`
    validates the three defining conditions.
    """

    clauses: List[Clause] = field(default_factory=list)
    level: int = 0
    """The frame index at which ``F_i = F_{i+1}`` was detected."""

    def to_cnf(self) -> CNF:
        """The invariant clauses as a CNF formula."""
        cnf = CNF()
        for clause in self.clauses:
            cnf.add(clause)
        return cnf

    def __len__(self) -> int:
        return len(self.clauses)


@dataclass
class TraceStep:
    """One step of a counterexample trace."""

    state: Cube
    """Partial assignment of latch variables entering this step."""

    inputs: Dict[int, bool] = field(default_factory=dict)
    """AIG input literal -> value applied during this step."""


@dataclass
class CounterexampleTrace:
    """A finite path from an initial state to a bad state."""

    steps: List[TraceStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def depth(self) -> int:
        """Number of transitions in the trace."""
        return max(0, len(self.steps) - 1)

    def input_sequence(self) -> List[Dict[int, bool]]:
        """Per-step AIG input assignments, ready for :meth:`AIG.simulate`."""
        return [step.inputs for step in self.steps]


@dataclass
class LassoTrace:
    """An infinite counterexample to a liveness (justice) property.

    The witnessed run is ``steps[0 .. loop_start-1]`` (the stem) followed
    by ``steps[loop_start ..]`` repeated forever: applying the last step's
    inputs returns the system to ``steps[loop_start].state``.  Every
    literal of the violated justice property (and every fairness
    constraint) holds at some step inside the loop;
    :func:`repro.props.witness.check_lasso` validates all of this against
    the original AIG by simulation.
    """

    steps: List[TraceStep] = field(default_factory=list)
    loop_start: int = 0
    justice_index: int = 0
    """Index of the violated justice property in the AIG's justice list."""

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def stem_length(self) -> int:
        """Number of steps before the loop is entered."""
        return self.loop_start

    @property
    def loop_length(self) -> int:
        """Number of steps in the repeating loop."""
        return len(self.steps) - self.loop_start

    def input_sequence(self) -> List[Dict[int, bool]]:
        """Per-step AIG input assignments, ready for :meth:`AIG.simulate`."""
        return [step.inputs for step in self.steps]


@dataclass
class CheckOutcome:
    """Everything a model-checking run produced."""

    result: CheckResult
    runtime: float = 0.0
    frames: int = 0
    certificate: Optional[Certificate] = None
    trace: Optional[CounterexampleTrace] = None
    stats: IC3Stats = field(default_factory=IC3Stats)
    engine: str = "ic3"
    reason: str = ""
    """Free-form explanation for UNKNOWN results (timeout, budget, ...)."""

    winner: Optional[str] = None
    """For portfolio runs: name of the member engine that produced the verdict."""

    reduction: Optional[Dict[str, object]] = None
    """Preprocessing shrinkage summary (see ``ReductionResult.summary``),
    None when the engine ran without reduction."""

    lasso: Optional[LassoTrace] = None
    """For liveness engines: the lasso counterexample on the original AIG
    (UNSAFE justice verdicts carry this instead of ``trace``)."""

    transformation: Optional[Dict[str, object]] = None
    """Liveness-transformation statistics (l2s/k-liveness compiler summary),
    None for plain safety runs."""

    properties: Optional[List[Dict[str, object]]] = None
    """For multi-property scheduler runs: one per-property verdict record
    (see ``ScheduleResult.as_dict``), None for single-property runs."""

    sharing: Optional[Dict[str, object]] = None
    """For cooperative portfolio runs: lemma-bus accounting (transport,
    total records published, per-member exchange counters), None when the
    run did not share lemmas."""

    @property
    def solved(self) -> bool:
        """True if the verdict is SAFE or UNSAFE."""
        return self.result.solved

    def summary(self) -> str:
        """A one-line human-readable summary."""
        parts = [f"{self.engine}: {self.result.value}", f"{self.runtime:.2f}s"]
        if self.result == CheckResult.SAFE and self.certificate is not None:
            parts.append(f"invariant with {len(self.certificate)} clauses")
        if self.result == CheckResult.UNSAFE and self.lasso is not None:
            parts.append(
                f"lasso with stem {self.lasso.stem_length} + loop {self.lasso.loop_length}"
            )
        elif self.result == CheckResult.UNSAFE and self.trace is not None:
            parts.append(f"counterexample of depth {self.trace.depth}")
        if self.result == CheckResult.UNKNOWN and self.reason:
            parts.append(self.reason)
        if self.winner:
            parts.append(f"won by {self.winner}")
        return ", ".join(parts)
