"""Lemma prediction from counterexamples to propagation (the paper's core).

When a lemma ``¬c2`` of frame ``F_{i-1}`` fails to be pushed to ``F_i``,
the failed SAT query produces a *counterexample to propagation* (CTP): a
successor state ``t`` with ``t ⊨ c2`` that is still reachable from
``F_{i-1}``.  :class:`CtpTable` records these states keyed by
``(lemma, level)``, exactly like the ``failure_push`` hash table of
Algorithm 2.

Later, when IC3 must block a cube ``b`` at level ``i`` and ``¬c2`` is a
*parent lemma* of ``¬b`` (``c2 ⊆ b``), :class:`LemmaPredictor` tries to
skip the literal-dropping generalization altogether:

* if ``diff(b, t) = ∅`` the cubes ``b`` and ``t`` intersect, so blocking
  ``b`` may have invalidated the CTP — try to push the parent lemma itself;
* otherwise each literal ``d ∈ diff(b, t)`` yields the candidate
  ``c3 = c2 ∪ {d}`` (Equation 6), which excludes ``t``, still contains
  ``b`` and is only one literal larger than the parent — a single
  consecution query validates it.

A failed candidate returns a fresh CTP which (optionally) refines the diff
set before the next candidate is tried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.frames import FrameManagerBase
from repro.core.options import IC3Options
from repro.core.stats import IC3Stats
from repro.logic.cube import Cube, diff


class PredictionInvariantError(AssertionError):
    """Raised in checking mode when a predicted lemma violates Section 3.2."""


@dataclass
class Prediction:
    """A successful prediction."""

    cube: Cube
    """The predicted blocked cube (the lemma is its negation)."""

    parent: Cube
    """The parent lemma's cube c2 the prediction was derived from."""

    kind: str
    """Either ``"push-parent"`` (diff set empty) or ``"extended"`` (Eq. 6)."""


class CtpTable:
    """The ``failure_push`` hash table of Algorithm 2."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[Cube, int], Cube] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[Cube, int]) -> bool:
        return key in self._entries

    def record(self, lemma_cube: Cube, level: int, successor: Cube) -> None:
        """Store the CTP successor state for a failed push of ``¬lemma_cube``."""
        self._entries[(lemma_cube, level)] = successor

    def lookup(self, lemma_cube: Cube, level: int) -> Optional[Cube]:
        """The recorded CTP state for ``(lemma, level)``, if any."""
        return self._entries.get((lemma_cube, level))

    def clear(self) -> None:
        """Drop every entry (Algorithm 2 line 44)."""
        self._entries.clear()

    def entries(self) -> Dict[Tuple[Cube, int], Cube]:
        """A copy of the table content (for inspection and tests)."""
        return dict(self._entries)


class LemmaPredictor:
    """Implements the prediction part of Algorithm 2 (lines 10-27)."""

    def __init__(self, frames: FrameManagerBase, options: IC3Options, stats: IC3Stats):
        self.frames = frames
        self.options = options
        self.stats = stats
        self.table = CtpTable()

    # ------------------------------------------------------------------
    # Table maintenance (lines 36-38 and 43-50 of Algorithm 2)
    # ------------------------------------------------------------------
    def record_push_failure(self, lemma_cube: Cube, level: int, successor: Optional[Cube]) -> None:
        """Record the CTP obtained when ``¬lemma_cube`` failed to reach level+1."""
        if successor is None:
            return
        self.table.record(lemma_cube, level, successor)
        self.stats.ctp_recorded += 1

    def clear_table(self) -> None:
        """Clear the failure-push table (start of each propagation phase)."""
        if len(self.table):
            self.stats.ctp_table_clears += 1
        self.table.clear()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def parent_lemmas(self, cube: Cube, level: int) -> List[Cube]:
        """Parent lemmas of ``¬cube`` at ``level``: cubes of F_level \\ F_{level+1} contained in ``cube``."""
        if level < 1:
            return []
        cube_lits = cube.literal_set
        return [
            parent
            for parent in self.frames.lemmas_exactly_at(level)
            if parent.literal_set <= cube_lits
        ]

    def predict(self, bad_cube: Cube, level: int) -> Optional[Prediction]:
        """Try to predict a lemma blocking ``bad_cube`` at ``level``.

        Returns a :class:`Prediction` whose cube can be blocked at
        ``level`` (its negation is inductive relative to ``F_{level-1}``),
        or None when no usable parent lemma / candidate validates.
        """
        parents = self.parent_lemmas(bad_cube, level - 1)
        self.stats.parent_lemmas_found += len(parents)
        if not parents:
            return None

        queries_left = self.options.max_prediction_candidates
        found_ctp_parent = False

        for parent in parents:
            ctp_state = self.table.lookup(parent, level - 1)
            if ctp_state is None:
                continue  # no failed push recorded for this parent (lines 12-13)
            if not found_ctp_parent:
                found_ctp_parent = True
                self.stats.parent_lemma_hits += 1

            prediction = self._predict_from_parent(
                bad_cube, parent, ctp_state, level, queries_left
            )
            if isinstance(prediction, Prediction):
                self.stats.prediction_successes += 1
                return prediction
            queries_left = prediction
            if queries_left <= 0:
                break
        return None

    def _predict_from_parent(
        self,
        bad_cube: Cube,
        parent: Cube,
        ctp_state: Cube,
        level: int,
        queries_left: int,
    ):
        """Run lines 14-27 of Algorithm 2 for one parent lemma.

        Returns either a :class:`Prediction` or the remaining query budget.
        """
        diff_set = diff(bad_cube, ctp_state)

        if not diff_set:
            # The CTP intersects the cube being blocked: blocking bad_cube may
            # have removed the obstacle, so try to push the parent itself.
            if queries_left <= 0:
                return queries_left
            result = self.frames.consecution(level - 1, parent)
            self.stats.prediction_queries += 1
            queries_left -= 1
            if result.holds:
                self.stats.predicted_push_parent += 1
                prediction = Prediction(cube=parent, parent=parent, kind="push-parent")
                self._check_prediction(prediction, bad_cube, ctp_state)
                return prediction
            self.record_push_failure(parent, level - 1, result.successor)
            return queries_left

        # Equation 6: extend the parent cube by one literal of the diff set.
        remaining = sorted(diff_set, key=abs)
        while remaining and queries_left > 0:
            literal = remaining.pop(0)
            candidate = parent.extended(literal)
            result = self.frames.consecution(level - 1, candidate)
            self.stats.prediction_queries += 1
            queries_left -= 1
            if result.holds:
                self.stats.predicted_extended += 1
                prediction = Prediction(cube=candidate, parent=parent, kind="extended")
                self._check_prediction(prediction, bad_cube, ctp_state)
                return prediction
            # Line 27: the new counterexample successor is (very likely) another
            # CTP of the parent; eliminate candidates it also defeats.
            if self.options.refine_diff_set and result.successor is not None:
                refined = diff_set & diff(bad_cube, result.successor)
                remaining = [l for l in remaining if l in refined]
        return queries_left

    # ------------------------------------------------------------------
    def _check_prediction(self, prediction: Prediction, bad_cube: Cube, ctp_state: Cube) -> None:
        """Assert the Section 3.2 properties of a predicted cube (debug mode)."""
        if not self.options.check_predicted_lemmas:
            return
        c3 = prediction.cube
        if not prediction.parent.literal_set <= c3.literal_set:
            raise PredictionInvariantError("predicted cube does not extend its parent (Eq. 4)")
        if not c3.literal_set <= bad_cube.literal_set:
            raise PredictionInvariantError("predicted cube is not contained in the bad cube (Eq. 3)")
        if prediction.kind == "extended" and not diff(c3, ctp_state):
            raise PredictionInvariantError("predicted cube does not exclude the CTP state (Eq. 2)")
