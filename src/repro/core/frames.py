"""Frame sequence management and the SAT queries of IC3.

The frame sequence is *delta encoded*: ``frames[i]`` stores only the cubes
whose lemma lives exactly at level ``i``; the logical frame ``F_i`` is the
conjunction of the lemmas stored at every level ``j >= i``.  Each frame has
its own incremental SAT solver loaded with the transition relation and the
frame's lemmas (the classic IC3ref architecture); temporary clauses use
activation literals and the solvers are rebuilt periodically to shed the
accumulated garbage.

The three queries every IC3 variant needs are provided here:

* :meth:`FrameManager.get_bad_state` — ``SAT?(F_k ∧ Bad)``;
* :meth:`FrameManager.consecution` — ``SAT?(F_i ∧ ¬c ∧ T ∧ c')`` with
  assumption-core extraction on UNSAT and CTI/CTP extraction on SAT;
* :meth:`FrameManager.lift_predecessor` — assumption-core shrinking of a
  concrete predecessor state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.options import IC3Options
from repro.core.stats import IC3Stats
from repro.logic.cube import Clause, Cube
from repro.sat.solver import Solver
from repro.ts.system import TransitionSystem


@dataclass
class ConsecutionResult:
    """Outcome of one relative-induction query."""

    holds: bool
    core_cube: Optional[Cube] = None
    """On UNSAT: the subset of the cube present in the assumption core."""

    predecessor: Optional[Cube] = None
    """On SAT: the pre-state s of the counterexample (full latch cube)."""

    inputs: Optional[Cube] = None
    """On SAT: the input assignment of the counterexample transition."""

    successor: Optional[Cube] = None
    """On SAT: the post-state t (the CTP state), over current-state vars."""

    input_values: Dict[int, bool] = field(default_factory=dict)
    """On SAT: AIG input literal -> value (for trace reconstruction)."""


@dataclass
class BadState:
    """A state of the top frame that can violate the property."""

    state: Cube
    inputs: Cube
    input_values: Dict[int, bool] = field(default_factory=dict)


class FrameManager:
    """Owns the frame sequence, per-frame solvers and lemma bookkeeping."""

    def __init__(self, ts: TransitionSystem, options: IC3Options, stats: IC3Stats):
        self.ts = ts
        self.options = options
        self.stats = stats
        self.frames: List[List[Cube]] = []
        self._solvers: List[Solver] = []
        self._garbage: List[int] = []

        # Frame 0 holds the initial states.
        self._push_new_frame()

        self._lift_solver = self._fresh_trans_solver()
        self._lift_garbage = 0

    # ------------------------------------------------------------------
    # Frame construction
    # ------------------------------------------------------------------
    @property
    def top_level(self) -> int:
        """Index of the highest frame currently open (the k of IC3)."""
        return len(self.frames) - 1

    def add_frame(self) -> int:
        """Open a new top frame F_{k+1} = ⊤ and return its index."""
        self._push_new_frame()
        self.stats.frames_opened += 1
        return self.top_level

    def _push_new_frame(self) -> None:
        level = len(self.frames)
        self.frames.append([])
        solver = self._fresh_trans_solver()
        if level == 0:
            for lit in self.ts.init_cube:
                solver.add_clause([lit])
        else:
            # Lemmas of every level >= this one belong to this frame; at
            # creation time no lemma lives above, so nothing to add.
            pass
        self._solvers.append(solver)
        self._garbage.append(0)

    def _fresh_trans_solver(self) -> Solver:
        solver = Solver()
        solver.ensure_var(self.ts.num_vars)
        for clause in self.ts.trans:
            solver.add_clause(clause.literals)
        return solver

    def _rebuild_solver(self, level: int) -> None:
        solver = self._fresh_trans_solver()
        if level == 0:
            for lit in self.ts.init_cube:
                solver.add_clause([lit])
        for frame_level in range(max(level, 1), len(self.frames)):
            for cube in self.frames[frame_level]:
                solver.add_clause(cube.negate().literals)
        self._solvers[level] = solver
        self._garbage[level] = 0

    def _note_garbage(self, level: int) -> None:
        self._garbage[level] += 1
        if self._garbage[level] >= self.options.solver_rebuild_interval:
            self._rebuild_solver(level)

    # ------------------------------------------------------------------
    # Lemma bookkeeping
    # ------------------------------------------------------------------
    def add_blocked_cube(self, cube: Cube, level: int) -> None:
        """Record that ``cube`` is blocked in frames 1..level (lemma ¬cube)."""
        if level < 1 or level > self.top_level:
            raise ValueError(f"lemma level {level} out of range 1..{self.top_level}")
        # Subsumption: drop weaker cubes made redundant by the new lemma.
        for frame_level in range(1, level + 1):
            kept = []
            for existing in self.frames[frame_level]:
                if cube.literal_set <= existing.literal_set:
                    self.stats.subsumed_lemmas += 1
                    continue
                kept.append(existing)
            self.frames[frame_level] = kept
        self.frames[level].append(cube)
        clause = cube.negate().literals
        for frame_level in range(1, level + 1):
            self._solvers[frame_level].add_clause(clause)
        self.stats.lemmas_added += 1

    def promote_cube(self, cube: Cube, from_level: int, to_level: int) -> None:
        """Move a lemma up after a successful propagation push."""
        if cube in self.frames[from_level]:
            self.frames[from_level].remove(cube)
        self.frames[to_level].append(cube)
        clause = cube.negate().literals
        for frame_level in range(from_level + 1, to_level + 1):
            self._solvers[frame_level].add_clause(clause)
        self.stats.lemmas_pushed += 1

    def lemmas_exactly_at(self, level: int) -> List[Cube]:
        """Cubes whose lemma lives exactly at ``level`` (F_level \\ F_{level+1})."""
        if level < 0 or level > self.top_level:
            return []
        return list(self.frames[level])

    def lemmas_at_or_above(self, level: int) -> List[Cube]:
        """All cubes of the logical frame F_level."""
        result: List[Cube] = []
        for frame_level in range(max(level, 1), len(self.frames)):
            result.extend(self.frames[frame_level])
        return result

    def frame_clauses(self, level: int) -> List[Clause]:
        """The lemma clauses of the logical frame F_level."""
        return [cube.negate() for cube in self.lemmas_at_or_above(level)]

    def is_blocked_syntactically(self, cube: Cube, level: int) -> bool:
        """True if an existing lemma at level >= ``level`` already blocks ``cube``."""
        for frame_level in range(level, len(self.frames)):
            for blocked in self.frames[frame_level]:
                if blocked.literal_set <= cube.literal_set:
                    return True
        return False

    def frames_equal(self, level: int) -> bool:
        """True if F_level = F_{level+1}, i.e. no lemma lives exactly at level."""
        return not self.frames[level]

    # ------------------------------------------------------------------
    # SAT queries
    # ------------------------------------------------------------------
    def get_bad_state(self, level: int) -> Optional[BadState]:
        """Return a state of F_level that can reach Bad combinationally."""
        solver = self._solvers[level]
        start = time.perf_counter()
        satisfiable = solver.solve([self.ts.bad_lit])
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        if not satisfiable:
            return None
        model = solver.get_model()
        self.stats.bad_cubes += 1
        return BadState(
            state=self.ts.state_cube_from_model(model),
            inputs=self.ts.input_cube_from_model(model),
            input_values=self.ts.input_assignment_from_model(model),
        )

    def consecution(self, level: int, cube: Cube, extract_model: bool = True) -> ConsecutionResult:
        """Check whether ``¬cube`` is inductive relative to ``F_level``.

        The query is ``SAT?(F_level ∧ ¬cube ∧ T ∧ cube')``.  When it is
        UNSAT the lemma ``¬cube`` may be added at ``level + 1``; the
        assumption core is translated back into a sub-cube to accelerate
        generalization.  When it is SAT the model yields the predecessor
        ``s``, the inputs, and the successor ``t`` — the latter is exactly
        the counterexample-to-propagation state used by lemma prediction.
        """
        solver = self._solvers[level]
        activation = solver.new_var()
        solver.add_clause([-activation] + [-lit for lit in cube])
        assumptions = [activation] + [self.ts.prime_lit(lit) for lit in cube]

        start = time.perf_counter()
        satisfiable = solver.solve(assumptions)
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        self.stats.consecution_calls += 1

        if satisfiable:
            result = ConsecutionResult(holds=False)
            if extract_model:
                model = solver.get_model()
                result.predecessor = self.ts.state_cube_from_model(model)
                result.inputs = self.ts.input_cube_from_model(model)
                result.successor = self.ts.state_cube_from_model(model, primed=True)
                result.input_values = self.ts.input_assignment_from_model(model)
        else:
            core = set(solver.unsat_core())
            reduced = [lit for lit in cube if self.ts.prime_lit(lit) in core]
            result = ConsecutionResult(holds=True, core_cube=Cube(reduced))

        solver.add_clause([-activation])
        self._note_garbage(level)
        return result

    def lift_predecessor(self, predecessor: Cube, inputs: Cube, successor: Cube) -> Cube:
        """Shrink a concrete predecessor with an assumption core.

        ``predecessor ∧ inputs ∧ T ⇒ successor'`` holds by construction, so
        the query ``predecessor ∧ inputs ∧ T ∧ ¬successor'`` is UNSAT and
        the core restricted to the predecessor literals is a generalized
        predecessor cube: every completion of it still transitions into the
        successor cube under the same inputs.
        """
        solver = self._lift_solver
        activation = solver.new_var()
        solver.add_clause(
            [-activation] + [-self.ts.prime_lit(lit) for lit in successor]
        )
        assumptions = [activation] + list(predecessor) + list(inputs)

        start = time.perf_counter()
        satisfiable = solver.solve(assumptions)
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        self.stats.lifting_calls += 1

        if satisfiable:
            # Should not happen; fall back to the unshrunk predecessor.
            lifted = predecessor
        else:
            core = set(solver.unsat_core())
            kept = [lit for lit in predecessor if lit in core]
            lifted = Cube(kept) if kept else predecessor

        solver.add_clause([-activation])
        self._lift_garbage += 1
        if self._lift_garbage >= self.options.solver_rebuild_interval:
            self._lift_solver = self._fresh_trans_solver()
            self._lift_garbage = 0
        return lifted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lemma_counts(self) -> List[int]:
        """Number of lemmas stored exactly at each level."""
        return [len(frame) for frame in self.frames]

    def total_lemmas(self) -> int:
        """Number of lemmas across all frames."""
        return sum(len(frame) for frame in self.frames)
