"""Frame sequence management and the SAT queries of IC3.

The frame sequence is *delta encoded*: ``frames[i]`` stores only the cubes
whose lemma lives exactly at level ``i``; the logical frame ``F_i`` is the
conjunction of the lemmas stored at every level ``j >= i``.

Two interchangeable solving substrates implement the SAT queries
(selected with :attr:`repro.core.options.IC3Options.frame_backend`):

* :class:`MonolithicFrameManager` (the default) keeps **one** persistent
  incremental solver for the whole run.  Frame membership is expressed by
  activation literals: the lemma ``¬c`` at level ``i`` is added once as
  ``¬act_i ∨ ¬c`` and a query against the logical frame ``F_i`` simply
  assumes ``{act_i, …, act_top}``.  Temporary per-query clauses live in
  recyclable activation scopes that are truly deleted after the query, so
  no garbage-driven solver rebuilds are needed.
* :class:`PerFrameFrameManager` is the classic IC3ref architecture kept as
  the comparison baseline: one solver per frame, each loaded with the
  transition relation, lemma clauses copied into every covered frame, and
  periodic rebuilds to shed accumulated activation garbage.

The three queries every IC3 variant needs are provided by both:

* :meth:`FrameManagerBase.get_bad_state` — ``SAT?(F_k ∧ Bad)``;
* :meth:`FrameManagerBase.consecution` — ``SAT?(F_i ∧ ¬c ∧ T ∧ c')`` with
  assumption-core extraction on UNSAT and CTI/CTP extraction on SAT;
* :meth:`FrameManagerBase.lift_predecessor` — assumption-core shrinking of
  a concrete predecessor state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.options import IC3Options
from repro.core.stats import IC3Stats
from repro.logic.cube import Clause, Cube
from repro.sat.context import SatContext, apply_solver_seed, sat_backend
from repro.sat.solver import Solver
from repro.ts.system import TransitionSystem


@dataclass
class ConsecutionResult:
    """Outcome of one relative-induction query."""

    holds: bool
    core_cube: Optional[Cube] = None
    """On UNSAT: the subset of the cube present in the assumption core."""

    predecessor: Optional[Cube] = None
    """On SAT: the pre-state s of the counterexample (full latch cube)."""

    inputs: Optional[Cube] = None
    """On SAT: the input assignment of the counterexample transition."""

    successor: Optional[Cube] = None
    """On SAT: the post-state t (the CTP state), over current-state vars."""

    input_values: Dict[int, bool] = field(default_factory=dict)
    """On SAT: AIG input literal -> value (for trace reconstruction)."""


@dataclass
class BadState:
    """A state of the top frame that can violate the property."""

    state: Cube
    inputs: Cube
    input_values: Dict[int, bool] = field(default_factory=dict)


class FrameManagerBase:
    """Shared lemma bookkeeping of both frame-management substrates.

    Subclasses implement the solver side through four hooks:
    ``_open_frame``, ``_install_lemma``, ``_install_promotion`` and
    ``_note_subsumed`` plus the three SAT queries.
    """

    def __init__(self, ts: TransitionSystem, options: IC3Options, stats: IC3Stats):
        self.ts = ts
        self.options = options
        self.stats = stats
        self.frames: List[List[Cube]] = []
        self.lemma_exporter = None
        """Optional ``(cube, level)`` callback fired whenever a lemma is
        newly proven at or promoted to ``level`` — the cooperative
        portfolio's export hook (see :mod:`repro.core.share`)."""

    # ------------------------------------------------------------------
    # Frame construction
    # ------------------------------------------------------------------
    @property
    def top_level(self) -> int:
        """Index of the highest frame currently open (the k of IC3)."""
        return len(self.frames) - 1

    def add_frame(self) -> int:
        """Open a new top frame F_{k+1} = ⊤ and return its index."""
        self._push_new_frame()
        self.stats.frames_opened += 1
        return self.top_level

    def _push_new_frame(self) -> None:
        level = len(self.frames)
        self.frames.append([])
        self._open_frame(level)

    # ------------------------------------------------------------------
    # Lemma bookkeeping
    # ------------------------------------------------------------------
    def add_blocked_cube(self, cube: Cube, level: int) -> None:
        """Record that ``cube`` is blocked in frames 1..level (lemma ¬cube)."""
        if level < 1 or level > self.top_level:
            raise ValueError(f"lemma level {level} out of range 1..{self.top_level}")
        # Subsumption: drop weaker cubes made redundant by the new lemma.
        for frame_level in range(1, level + 1):
            kept = []
            for existing in self.frames[frame_level]:
                if cube.literal_set <= existing.literal_set:
                    self.stats.subsumed_lemmas += 1
                    self._note_subsumed(existing, frame_level)
                    continue
                kept.append(existing)
            self.frames[frame_level] = kept
        self.frames[level].append(cube)
        self._install_lemma(cube, level)
        self.stats.lemmas_added += 1
        if self.lemma_exporter is not None:
            self.lemma_exporter(cube, level)

    def promote_cube(self, cube: Cube, from_level: int, to_level: int) -> None:
        """Move a lemma up after a successful propagation push."""
        if cube in self.frames[from_level]:
            self.frames[from_level].remove(cube)
        self.frames[to_level].append(cube)
        self._install_promotion(cube, from_level, to_level)
        self.stats.lemmas_pushed += 1
        if self.lemma_exporter is not None:
            self.lemma_exporter(cube, to_level)

    def lemmas_exactly_at(self, level: int) -> List[Cube]:
        """Cubes whose lemma lives exactly at ``level`` (F_level \\ F_{level+1})."""
        if level < 0 or level > self.top_level:
            return []
        return list(self.frames[level])

    def lemmas_at_or_above(self, level: int) -> List[Cube]:
        """All cubes of the logical frame F_level."""
        result: List[Cube] = []
        for frame_level in range(max(level, 1), len(self.frames)):
            result.extend(self.frames[frame_level])
        return result

    def frame_clauses(self, level: int) -> List[Clause]:
        """The lemma clauses of the logical frame F_level."""
        return [cube.negate() for cube in self.lemmas_at_or_above(level)]

    def is_blocked_syntactically(self, cube: Cube, level: int) -> bool:
        """True if an existing lemma at level >= ``level`` already blocks ``cube``."""
        for frame_level in range(level, len(self.frames)):
            for blocked in self.frames[frame_level]:
                if blocked.literal_set <= cube.literal_set:
                    return True
        return False

    def frames_equal(self, level: int) -> bool:
        """True if F_level = F_{level+1}, i.e. no lemma lives exactly at level."""
        return not self.frames[level]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lemma_counts(self) -> List[int]:
        """Number of lemmas stored exactly at each level."""
        return [len(frame) for frame in self.frames]

    def total_lemmas(self) -> int:
        """Number of lemmas across all frames."""
        return sum(len(frame) for frame in self.frames)

    def finalize_stats(self) -> None:
        """Copy substrate-level counters into the run's :class:`IC3Stats`."""

    def _absorb_kernel_stats(self, solver_stats) -> None:
        """Fold one solver's memory-system counters (manifest v5) in."""
        self.stats.solver_conflicts += solver_stats.conflicts
        self.stats.solver_decisions += solver_stats.decisions
        self.stats.solver_propagations += solver_stats.propagations
        self.stats.watch_traversals += solver_stats.watch_traversals
        self.stats.blocker_hits += solver_stats.blocker_hits
        self.stats.literal_pool_bytes += solver_stats.literal_pool_bytes
        self.stats.arena_compactions += solver_stats.arena_compactions
        self.stats.solver_removed_clauses += (
            solver_stats.removed_clauses
            + solver_stats.guarded_clauses_freed
            + solver_stats.learnts_purged
        )

    # ------------------------------------------------------------------
    # Substrate hooks
    # ------------------------------------------------------------------
    def _open_frame(self, level: int) -> None:
        raise NotImplementedError

    def _install_lemma(self, cube: Cube, level: int) -> None:
        raise NotImplementedError

    def _install_promotion(self, cube: Cube, from_level: int, to_level: int) -> None:
        raise NotImplementedError

    def _note_subsumed(self, cube: Cube, frame_level: int) -> None:
        raise NotImplementedError

    # -- SAT queries ----------------------------------------------------
    def get_bad_state(self, level: int) -> Optional[BadState]:
        raise NotImplementedError

    def consecution(
        self, level: int, cube: Cube, extract_model: bool = True
    ) -> ConsecutionResult:
        raise NotImplementedError

    def lift_predecessor(
        self, predecessor: Cube, inputs: Cube, successor: Cube
    ) -> Cube:
        raise NotImplementedError


class MonolithicFrameManager(FrameManagerBase):
    """Frame management on a single persistent incremental solver.

    One :class:`~repro.sat.context.SatContext` holds the transition
    relation for the whole run.  Every frame ``i >= 1`` owns a persistent
    activation literal ``act_i``; the lemma ``¬c`` at level ``i`` becomes
    the single clause ``¬act_i ∨ ¬c`` and a query against the logical
    frame ``F_i`` assumes ``{act_i, …, act_top}``.  Frame 0 is exactly
    the initial states and never receives lemmas, so its queries run in a
    small dedicated context with the initial cube asserted as persistent
    unit clauses.  Per-query clauses — the ``¬c`` of a consecution
    fallback, the ``¬t'`` of a lift — live in recyclable scopes that are
    deleted right after the query, so the solver never accumulates
    garbage from temporary clauses and no rebuild heuristic is needed.
    """

    def __init__(self, ts: TransitionSystem, options: IC3Options, stats: IC3Stats):
        super().__init__(ts, options, stats)
        self._ctx = self._new_trans_context()
        self._acts: List[int] = []

        # Frame 0 is exactly the initial states and never receives
        # lemmas, so it lives in its own small context with the initial
        # cube as hard unit clauses: their unit-propagation closure then
        # persists at level 0 across every frame-0 query instead of being
        # replayed through an assumption each time.
        self._init_ctx = self._new_trans_context()
        for lit in ts.init_cube:
            self._init_ctx.add_clause([lit])

        self._push_new_frame()

        # Predecessor lifting runs against the bare transition relation
        # (no frame lemmas), so it gets its own small context: routing it
        # through the main solver would flush the reusable assumption
        # trail between consecutive consecution queries.
        self._lift_ctx = self._new_trans_context()

        # One live clause per lemma: ``_lemma_handles`` maps a cube's
        # literal set to ``(coverage level, solver clause handle)``.  The
        # frame implication chain ``act_L -> act_{L+1}`` added per frame
        # makes a lemma's lower-coverage copy implied by a higher one, so
        # promotion and subsumption can physically *remove* clauses while
        # every learnt clause stays sound.  ``_lemma_copies`` counts how
        # many frames-list entries share the literal set (CTG blocking
        # can re-add a cube below an existing higher-level copy): the
        # physical clause is only deleted when the last copy dies.
        self._lemma_handles: Dict[frozenset, tuple] = {}
        self._lemma_copies: Dict[frozenset, int] = {}

        # Deferred promotion moves: when a lemma moves from level f to
        # level t its old clause (guarded by act_f) stays live, so the new
        # act_t copy is only *required* by queries at levels f < L <= t.
        # Batching the moves keeps the reusable assumption trail intact
        # across a whole propagation sweep.
        self._pending_moves: List[tuple] = []  # (from_level, to_level, cube)
        self._pending_removals: List[frozenset] = []

    @property
    def context(self) -> SatContext:
        """The solving context backing every query of this run."""
        return self._ctx

    def _new_trans_context(self) -> SatContext:
        """A fresh context of the configured backend loaded with T."""
        ctx = SatContext(backend=self.options.sat_backend, seed=self.options.seed)
        ctx.solver.ensure_var(self.ts.num_vars)
        ctx.load(clause.literals for clause in self.ts.trans)
        return ctx

    # ------------------------------------------------------------------
    # Substrate hooks
    # ------------------------------------------------------------------
    def _open_frame(self, level: int) -> None:
        # Frame 0 lives in ``_init_ctx``; its slot in the act list is a
        # placeholder so that ``_acts[level]`` lines up with frame levels.
        if level == 0:
            self._acts.append(0)
            return
        act = self._ctx.new_scope()
        self._acts.append(act)
        if level >= 2:
            # Frame implication chain: a query at level <= L-1 always
            # assumes act_L too, so act_{L-1} -> act_L encodes the
            # assumption discipline as a clause.  It never changes a
            # query's answer, but it makes a lemma's pre-promotion copy
            # implied by its promoted copy — which is what allows real
            # clause deletion below.
            self._ctx.add_clause([-self._acts[level - 1], act])

    def _process_removals(self) -> None:
        """Physically delete the clauses of fully-subsumed lemmas."""
        if not self._pending_removals:
            return
        for key in self._pending_removals:
            if self._pending_moves:
                self._pending_moves = [
                    m for m in self._pending_moves if m[2].literal_set != key
                ]
            entry = self._lemma_handles.pop(key, None)
            if entry is not None and entry[1] is not None:
                self._remove_clause_at(entry[0], entry[1])
        self._pending_removals.clear()

    def _remove_clause_at(self, level: int, handle) -> None:
        self._ctx.remove_from_scope(self._acts[level], handle)
        self.stats.lemma_clauses_removed += 1

    def _install_clause(self, cube: Cube, level: int):
        handle = self._ctx.add_to_scope(self._acts[level], cube.negate().literals)
        self.stats.lemma_clauses_added += 1
        return handle

    def _install_lemma(self, cube: Cube, level: int) -> None:
        self._process_removals()
        key = cube.literal_set
        self._lemma_copies[key] = self._lemma_copies.get(key, 0) + 1
        existing = self._lemma_handles.get(key)
        if existing is not None and existing[0] >= level:
            # An identical lemma already lives with equal-or-higher
            # coverage; through the contiguous assumption suffix its
            # clause serves this placement too — nothing to add.
            self.stats.solver_clauses_shared += level
            return
        handle = self._install_clause(cube, level)
        if existing is not None and existing[1] is not None:
            # The old clause covered strictly less; it is implied by the
            # new copy through the frame chain, so delete it.
            self._remove_clause_at(existing[0], existing[1])
        self._lemma_handles[key] = (level, handle)
        # Frames 1..level-1 see the same physical clause through the
        # contiguous assumption range instead of getting their own copy.
        self.stats.solver_clauses_shared += max(level - 1, 0)

    def _install_promotion(self, cube: Cube, from_level: int, to_level: int) -> None:
        self._pending_moves.append((from_level, to_level, cube))
        self.stats.solver_clauses_shared += max(to_level - from_level - 1, 0)

    def _flush_pending(self, level: int) -> None:
        """Apply deferred promotion moves once a query needs one of them.

        A pending move is required when the query level lies strictly
        above the promotion source (the old copy no longer applies) and
        at or below its target.  Applying a move flushes the solver
        trail, so once one is needed the whole batch goes through: each
        lemma's old clause is removed (it is implied by the new copy via
        the frame chain) and the new copy installed in its place.
        """
        if not self._pending_moves:
            return
        if not any(f < level <= t for f, t, _ in self._pending_moves):
            return
        for _, to_level, cube in self._pending_moves:
            key = cube.literal_set
            old = self._lemma_handles.get(key)
            if old is None or old[0] >= to_level:
                # The lemma was fully removed meanwhile, or another copy
                # already covers the promotion target.
                continue
            new_handle = self._install_clause(cube, to_level)
            if old[1] is not None:
                self._remove_clause_at(old[0], old[1])
            self._lemma_handles[key] = (to_level, new_handle)
        self._pending_moves.clear()

    def _note_subsumed(self, cube: Cube, frame_level: int) -> None:
        # Queue the subsumed lemma's clause for physical removal once no
        # frames-list entry shares its literal set anymore; it is implied
        # by the subsuming lemma (a sub-clause at a level at least as
        # high, reachable through the frame chain), so deletion is sound
        # once the subsuming clause is installed.
        key = cube.literal_set
        remaining = self._lemma_copies.get(key, 1) - 1
        if remaining <= 0:
            self._lemma_copies.pop(key, None)
            self._pending_removals.append(key)
        else:
            self._lemma_copies[key] = remaining

    # ------------------------------------------------------------------
    # SAT queries
    # ------------------------------------------------------------------
    def _frame_assumptions(self, level: int) -> List[int]:
        """Activation literals selecting the logical frame F_level.

        Ordered from the top frame downwards: successive queries at
        nearby levels then share an assumption-list prefix, which the
        solver's trail reuse turns into skipped re-propagation of the
        whole active lemma set.
        """
        if level == 0:
            return []  # frame 0 queries run in the dedicated init context
        return self._acts[len(self._acts) - 1:level - 1:-1]

    def _query_ctx(self, level: int) -> SatContext:
        return self._init_ctx if level == 0 else self._ctx

    def get_bad_state(self, level: int) -> Optional[BadState]:
        """Return a state of F_level that can reach Bad combinationally."""
        self._flush_pending(level)
        ctx = self._query_ctx(level)
        start = time.perf_counter()
        satisfiable = ctx.solve(
            self._frame_assumptions(level) + [self.ts.bad_lit]
        )
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        if not satisfiable:
            return None
        model = ctx.get_model()
        self.stats.bad_cubes += 1
        return BadState(
            state=self.ts.state_cube_from_model(model),
            inputs=self.ts.input_cube_from_model(model),
            input_values=self.ts.input_assignment_from_model(model),
        )

    def consecution(
        self, level: int, cube: Cube, extract_model: bool = True
    ) -> ConsecutionResult:
        """Check whether ``¬cube`` is inductive relative to ``F_level``.

        The query is ``SAT?(F_level ∧ ¬cube ∧ T ∧ cube')``.  When it is
        UNSAT the lemma ``¬cube`` may be added at ``level + 1``; the
        assumption core is translated back into a sub-cube to accelerate
        generalization.  When it is SAT the model yields the predecessor
        ``s``, the inputs, and the successor ``t`` — the latter is exactly
        the counterexample-to-propagation state used by lemma prediction.

        The ``¬cube`` conjunct is handled lazily: the query first runs
        without it (clause-free, so the reusable assumption trail stays
        intact); only when the model's predecessor happens to lie inside
        ``cube`` — a self-loop, which the relaxed query cannot rule out —
        is the blocking clause added in a temporary scope and the exact
        query re-run.  UNSAT answers of the relaxed query are always
        answers of the exact one (it has strictly more models).
        """
        self._flush_pending(level)
        ctx = self._query_ctx(level)
        assumptions = self._frame_assumptions(level) + [
            self.ts.prime_lit(lit) for lit in cube
        ]

        start = time.perf_counter()
        satisfiable = ctx.solve(assumptions)
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        self.stats.consecution_calls += 1

        scope: Optional[int] = None
        if satisfiable:
            model = ctx.get_model()
            predecessor = self.ts.state_cube_from_model(model)
            if cube.literal_set <= predecessor.literal_set:
                # Rare fallback: exclude cube itself and ask again.
                self.stats.consecution_fallbacks += 1
                scope = ctx.new_scope()
                ctx.add_to_scope(scope, [-lit for lit in cube])
                start = time.perf_counter()
                satisfiable = ctx.solve([scope] + assumptions)
                self.stats.sat_time += time.perf_counter() - start
                self.stats.sat_calls += 1
                if satisfiable:
                    model = ctx.get_model()
                    predecessor = self.ts.state_cube_from_model(model)

        if satisfiable:
            result = ConsecutionResult(holds=False)
            if extract_model:
                result.predecessor = predecessor
                result.inputs = self.ts.input_cube_from_model(model)
                result.successor = self.ts.state_cube_from_model(model, primed=True)
                result.input_values = self.ts.input_assignment_from_model(model)
        else:
            core = set(ctx.unsat_core())
            reduced = [lit for lit in cube if self.ts.prime_lit(lit) in core]
            result = ConsecutionResult(holds=True, core_cube=Cube(reduced))

        if scope is not None:
            ctx.release_scope(scope)
        return result

    def lift_predecessor(
        self, predecessor: Cube, inputs: Cube, successor: Cube
    ) -> Cube:
        """Shrink a concrete predecessor with an assumption core.

        ``predecessor ∧ inputs ∧ T ⇒ successor'`` holds by construction, so
        the query ``predecessor ∧ inputs ∧ T ∧ ¬successor'`` is UNSAT and
        the core restricted to the predecessor literals is a generalized
        predecessor cube.  The query uses no frame lemmas, so it runs in
        the dedicated lift context against the bare transition relation.
        """
        ctx = self._lift_ctx
        scope = ctx.new_scope()
        ctx.add_to_scope(scope, [-self.ts.prime_lit(lit) for lit in successor])
        assumptions = [scope] + list(predecessor) + list(inputs)

        start = time.perf_counter()
        satisfiable = ctx.solve(assumptions)
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        self.stats.lifting_calls += 1

        if satisfiable:
            # Should not happen; fall back to the unshrunk predecessor.
            lifted = predecessor
        else:
            core = set(ctx.unsat_core())
            kept = [lit for lit in predecessor if lit in core]
            lifted = Cube(kept) if kept else predecessor

        ctx.release_scope(scope)
        return lifted

    # ------------------------------------------------------------------
    def finalize_stats(self) -> None:
        """Mirror the solvers' activation accounting into the run stats."""
        for ctx in (self._ctx, self._lift_ctx, self._init_ctx):
            solver_stats = ctx.solver.stats
            self._absorb_kernel_stats(solver_stats)
            self.stats.activation_vars_allocated += (
                solver_stats.activation_vars_allocated
            )
            self.stats.activation_vars_recycled += (
                solver_stats.activation_vars_recycled
            )
            self.stats.activation_vars_retired += (
                solver_stats.activation_vars_retired
            )
        self.stats.assumption_levels_reused = (
            self._ctx.solver.stats.assumption_levels_reused
        )


class PerFrameFrameManager(FrameManagerBase):
    """The classic per-frame solver architecture (comparison baseline).

    Each frame has its own incremental SAT solver loaded with the
    transition relation and the frame's lemmas (the IC3ref architecture);
    lemma clauses are copied into every covered frame, temporary clauses
    use activation literals that are tombstoned with a unit clause, and
    the solvers are rebuilt periodically to shed accumulated garbage.
    """

    def __init__(self, ts: TransitionSystem, options: IC3Options, stats: IC3Stats):
        super().__init__(ts, options, stats)
        self._solvers: List[Solver] = []
        self._garbage: List[int] = []

        # Frame 0 holds the initial states.
        self._push_new_frame()

        self._lift_solver = self._fresh_trans_solver()
        self._lift_garbage = 0

    # ------------------------------------------------------------------
    # Substrate hooks
    # ------------------------------------------------------------------
    def _open_frame(self, level: int) -> None:
        solver = self._fresh_trans_solver()
        if level == 0:
            for lit in self.ts.init_cube:
                solver.add_clause([lit])
        # At creation time no lemma lives above the new frame, so there
        # is nothing else to add.
        self._solvers.append(solver)
        self._garbage.append(0)

    def _install_lemma(self, cube: Cube, level: int) -> None:
        clause = cube.negate().literals
        for frame_level in range(1, level + 1):
            self._solvers[frame_level].add_clause(clause)
        self.stats.lemma_clauses_added += level
        self.stats.solver_clauses_duplicated += max(level - 1, 0)

    def _install_promotion(self, cube: Cube, from_level: int, to_level: int) -> None:
        clause = cube.negate().literals
        for frame_level in range(from_level + 1, to_level + 1):
            self._solvers[frame_level].add_clause(clause)
        copies = to_level - from_level
        self.stats.lemma_clauses_added += copies
        self.stats.solver_clauses_duplicated += max(copies - 1, 0)

    def _note_subsumed(self, cube: Cube, frame_level: int) -> None:
        # The dropped lemma's clauses stay live in the solvers of every
        # frame it covered; count them toward the rebuild heuristic so
        # subsumption-heavy runs shed them (satellite of ISSUE 4).
        for level in range(1, frame_level + 1):
            self._garbage[level] += 1
            self.stats.solver_garbage_lemmas += 1

    # ------------------------------------------------------------------
    # Solver lifecycle
    # ------------------------------------------------------------------
    def _fresh_trans_solver(self) -> Solver:
        solver = sat_backend(self.options.sat_backend)()
        apply_solver_seed(solver, self.options.seed)
        solver.ensure_var(self.ts.num_vars)
        for clause in self.ts.trans:
            solver.add_clause(clause.literals)
        return solver

    def _rebuild_solver(self, level: int) -> None:
        solver = self._fresh_trans_solver()
        if level == 0:
            for lit in self.ts.init_cube:
                solver.add_clause([lit])
        for frame_level in range(max(level, 1), len(self.frames)):
            for cube in self.frames[frame_level]:
                solver.add_clause(cube.negate().literals)
        self._solvers[level] = solver
        self._garbage[level] = 0
        self.stats.solver_rebuilds += 1

    def _note_garbage(self, level: int) -> None:
        self._garbage[level] += 1
        if self._garbage[level] >= self.options.solver_rebuild_interval:
            self._rebuild_solver(level)

    # ------------------------------------------------------------------
    def finalize_stats(self) -> None:
        """Mirror per-solver kernel counters into the run stats.

        Rebuilt solvers take their counters with them, so the totals
        cover the solvers alive at the end of the run — the same point
        at which the monolithic substrate snapshots its contexts.
        """
        for solver in list(self._solvers) + [self._lift_solver]:
            self._absorb_kernel_stats(solver.stats)

    # ------------------------------------------------------------------
    # SAT queries
    # ------------------------------------------------------------------
    def get_bad_state(self, level: int) -> Optional[BadState]:
        """Return a state of F_level that can reach Bad combinationally."""
        solver = self._solvers[level]
        start = time.perf_counter()
        satisfiable = solver.solve([self.ts.bad_lit])
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        if not satisfiable:
            return None
        model = solver.get_model()
        self.stats.bad_cubes += 1
        return BadState(
            state=self.ts.state_cube_from_model(model),
            inputs=self.ts.input_cube_from_model(model),
            input_values=self.ts.input_assignment_from_model(model),
        )

    def consecution(
        self, level: int, cube: Cube, extract_model: bool = True
    ) -> ConsecutionResult:
        """Check whether ``¬cube`` is inductive relative to ``F_level``."""
        solver = self._solvers[level]
        activation = solver.new_var()
        solver.add_clause([-activation] + [-lit for lit in cube])
        assumptions = [activation] + [self.ts.prime_lit(lit) for lit in cube]

        start = time.perf_counter()
        satisfiable = solver.solve(assumptions)
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        self.stats.consecution_calls += 1

        if satisfiable:
            result = ConsecutionResult(holds=False)
            if extract_model:
                model = solver.get_model()
                result.predecessor = self.ts.state_cube_from_model(model)
                result.inputs = self.ts.input_cube_from_model(model)
                result.successor = self.ts.state_cube_from_model(model, primed=True)
                result.input_values = self.ts.input_assignment_from_model(model)
        else:
            core = set(solver.unsat_core())
            reduced = [lit for lit in cube if self.ts.prime_lit(lit) in core]
            result = ConsecutionResult(holds=True, core_cube=Cube(reduced))

        solver.add_clause([-activation])
        self._note_garbage(level)
        return result

    def lift_predecessor(
        self, predecessor: Cube, inputs: Cube, successor: Cube
    ) -> Cube:
        """Shrink a concrete predecessor with an assumption core."""
        solver = self._lift_solver
        activation = solver.new_var()
        solver.add_clause(
            [-activation] + [-self.ts.prime_lit(lit) for lit in successor]
        )
        assumptions = [activation] + list(predecessor) + list(inputs)

        start = time.perf_counter()
        satisfiable = solver.solve(assumptions)
        self.stats.sat_time += time.perf_counter() - start
        self.stats.sat_calls += 1
        self.stats.lifting_calls += 1

        if satisfiable:
            # Should not happen; fall back to the unshrunk predecessor.
            lifted = predecessor
        else:
            core = set(solver.unsat_core())
            kept = [lit for lit in predecessor if lit in core]
            lifted = Cube(kept) if kept else predecessor

        solver.add_clause([-activation])
        self._lift_garbage += 1
        if self._lift_garbage >= self.options.solver_rebuild_interval:
            self._lift_solver = self._fresh_trans_solver()
            self._lift_garbage = 0
            self.stats.solver_rebuilds += 1
        return lifted


_FRAME_BACKENDS = {
    "monolithic": MonolithicFrameManager,
    "per-frame": PerFrameFrameManager,
}


def available_frame_backends() -> List[str]:
    """Names of the frame-management substrates."""
    return sorted(_FRAME_BACKENDS)


def make_frame_manager(
    ts: TransitionSystem, options: IC3Options, stats: IC3Stats
) -> FrameManagerBase:
    """Instantiate the frame manager selected by ``options.frame_backend``."""
    try:
        backend = _FRAME_BACKENDS[options.frame_backend]
    except KeyError:
        raise ValueError(
            f"unknown frame backend {options.frame_backend!r} "
            f"(available: {', '.join(available_frame_backends())})"
        ) from None
    return backend(ts, options, stats)


def FrameManager(
    ts: TransitionSystem, options: IC3Options, stats: IC3Stats
) -> FrameManagerBase:
    """Backward-compatible constructor: dispatches on ``options.frame_backend``."""
    return make_frame_manager(ts, options, stats)
