"""Live lemma exchange between cooperative portfolio members.

Two import/export adapters connect the core engines to a lemma bus (any
object with the ``publish``/``pending``/``drain`` port shape of
:mod:`repro.engines.lembus` — the port is injected, so the core never
imports the engines layer):

* :class:`FrameLemmaExchange` — for IC3.  Exports newly proven frame
  lemmas (a lemma ``¬c`` at level ``i`` means "``c`` is unreachable in at
  most ``i`` steps", a run-independent fact of the model, so it transfers
  between members racing on the same model).  Imports foreign lemmas
  after *local revalidation*: a clause is installed at level ``L`` only
  if it holds on the initial states and passes this member's own
  consecution check at ``L - 1`` — the advertised level is treated as a
  hint, never as a proof, so a hostile or buggy bus can waste a little
  validation time but can never make a verdict wrong.
* :class:`UnrollingInvariantImporter` — for BMC and k-induction.  A
  foreign frame lemma is only sound at *every* unrolling frame if it is a
  global invariant, so the importer checks the stronger condition on a
  dedicated validator solver: the clause must hold on the initial states
  and be inductive relative to the previously accepted clauses (sound by
  mutual induction on path length).  Accepted clauses are asserted at
  every time frame of the unrolling, pruning both engines' searches
  without masking any real counterexample — every state on a real
  counterexample trace is reachable and therefore satisfies every true
  invariant.

Lemmas travel in *latch-index literal* form: literal ``±(index + 1)``
refers to latch ``index`` of the model all members race on.  When a
member reduced its model further, the injected ``map_in``/``map_out``
callables translate clauses through its reduction pipeline (see
:meth:`repro.reduce.recon.ReconstructionMap.map_latch_index_clauses`).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.stats import IC3Stats
from repro.logic.cube import Clause, Cube
from repro.obs.tracer import get_tracer

ClauseMap = Callable[[List[List[int]]], List[List[int]]]

_DRAIN_OBLIGATION_INTERVAL = 16
"""IC3 checks the bus every this many proof obligations."""


def _canonical(clause: Sequence[int]) -> Tuple[int, ...]:
    """Order-independent identity of a latch-index clause."""
    return tuple(sorted(clause))


class FrameLemmaExchange:
    """IC3-side export/import adapter around one bus port."""

    def __init__(
        self,
        port,
        ts,
        frames,
        stats: IC3Stats,
        map_in: Optional[ClauseMap] = None,
        map_out: Optional[ClauseMap] = None,
    ):
        self.port = port
        self.ts = ts
        self.frames = frames
        self.stats = stats
        self._map_in = map_in
        self._map_out = map_out
        self._var_index = {var: i for i, var in enumerate(ts.latch_vars)}
        # Canonical keys (bus space) this member already published or
        # imported: stops echo loops (re-exporting an import) and repeat
        # validation of clauses several members keep republishing.
        self._seen: set = set()
        self._suppress_export = False
        frames.lemma_exporter = self.on_lemma

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def on_lemma(self, cube: Cube, level: int) -> None:
        """Frame-manager hook: a lemma ``¬cube`` now covers ``level``."""
        if self._suppress_export or self.port is None:
            return
        policy = self.port.policy
        if len(cube) > policy.max_lits or level < policy.min_level:
            return
        index_clause = []
        for lit in cube:
            index = self._var_index.get(abs(lit))
            if index is None:
                return  # not a pure latch cube; cannot transfer
            # Lemma clause literal is the negation of the cube literal.
            index_clause.append(-(index + 1) if lit > 0 else (index + 1))
        if self._map_out is not None:
            mapped = self._map_out([index_clause])
            if not mapped:
                return
            index_clause = mapped[0]
        key = _canonical(index_clause)
        if key in self._seen:
            return
        self._seen.add(key)
        if self.port.publish(level, index_clause):
            self.stats.lemmas_published += 1

    # ------------------------------------------------------------------
    # Import
    # ------------------------------------------------------------------
    def drain(self) -> int:
        """Validate and install pending foreign lemmas; returns imports."""
        if self.port is None or not self.port.pending():
            return 0
        records, lost = self.port.drain()
        self.stats.bus_overflows += lost
        if not records:
            return 0
        start = time.perf_counter()
        imported = 0
        for record in records:
            self.stats.lemmas_received += 1
            key = _canonical(record.clause)
            if key in self._seen:
                continue
            self._seen.add(key)
            if self._import_record(record):
                imported += 1
        elapsed = time.perf_counter() - start
        self.stats.time_import_validation += elapsed
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "lembus.drain",
                cat="share",
                received=len(records),
                imported=imported,
                lost=lost,
            )
        return imported

    def _import_record(self, record) -> bool:
        index_clause = list(record.clause)
        if self._map_in is not None:
            mapped = self._map_in([index_clause])
            if not mapped:
                self.stats.lemmas_rejected += 1
                return False
            index_clause = mapped[0]
        literals = []
        for lit in index_clause:
            index = abs(lit) - 1
            if not 0 <= index < len(self.ts.latch_vars):
                self.stats.lemmas_rejected += 1
                return False
            var = self.ts.latch_vars[index]
            literals.append(var if lit > 0 else -var)
        if not literals:
            self.stats.lemmas_rejected += 1
            return False
        clause = Clause(literals)
        cube = clause.negate()

        # The advertised level is only a hint; clamp it to what this
        # member's frame sequence can hold.
        level = min(int(record.level), self.frames.top_level)
        if level < 1:
            self.stats.lemmas_rejected += 1
            return False
        if self.frames.is_blocked_syntactically(cube, level):
            return False  # already known at that strength; nothing to do

        # Local revalidation: the clause must hold on the initial states
        # and be inductive relative to this member's own F_{level-1}.
        if not self.ts.clause_holds_on_init(clause):
            self.stats.lemmas_rejected += 1
            return False
        result = self.frames.consecution(level - 1, cube, extract_model=False)
        if not result.holds:
            self.stats.lemmas_rejected += 1
            return False
        self.stats.lemmas_validated += 1

        self._suppress_export = True
        try:
            self.frames.add_blocked_cube(cube, level)
        finally:
            self._suppress_export = False
        self.stats.lemmas_imported += 1
        return True


class UnrollingInvariantImporter:
    """BMC/k-induction-side import adapter around one bus port.

    Import-only: the unrolling engines learn no frame lemmas of their
    own.  Accepted clauses are *global invariants* (hold on init and
    inductive relative to previously accepted clauses), the only strength
    at which asserting them on every time frame is sound for both the
    initialized (BMC, k-induction base) and uninitialized (k-induction
    step) queries of a shared unrolling.

    Frame lemmas are rarely invariants *individually* — they prop each
    other up (shift-register invariants are the textbook case).  So
    candidates that pass the cheap screens (well-formed, hold on init)
    are pooled, and each drain runs a Houdini-style fixpoint: assume all
    candidates under activation scopes, drop every clause whose
    consecution fails, repeat until a clean pass.  The survivors form the
    largest mutually-inductive subset and are installed together;
    clauses that fail stay pooled for retry once more candidates arrive.
    """

    MAX_PENDING = 256

    def __init__(self, port, aig, unroller, stats: IC3Stats,
                 map_in: Optional[ClauseMap] = None,
                 sat_backend: str = "default"):
        self.port = port
        self.aig = aig
        self.unroller = unroller
        self.stats = stats
        self._map_in = map_in
        self._backend = sat_backend
        self._ts = None
        self._ctx = None
        self._seen: set = set()
        self._pending: list = []
        self._fresh_since_attempt = 0

    def _validator(self):
        """The lazily built transition system + solver of the validator."""
        if self._ctx is None:
            # Imported lazily: the validator is only needed once a first
            # record actually arrives.
            from repro.sat.context import SatContext
            from repro.ts.system import TransitionSystem

            self._ts = TransitionSystem(self.aig)
            self._ctx = SatContext(backend=self._backend)
            self._ctx.solver.ensure_var(self._ts.num_vars)
            self._ctx.load(clause.literals for clause in self._ts.trans)
        return self._ts, self._ctx

    def drain(self) -> int:
        """Validate and install pending foreign lemmas; returns imports."""
        if self.port is None or not self.port.pending():
            return 0
        records, lost = self.port.drain()
        self.stats.bus_overflows += lost
        if not records:
            return 0
        start = time.perf_counter()
        fresh = 0
        for record in records:
            self.stats.lemmas_received += 1
            key = _canonical(record.clause)
            if key in self._seen:
                continue
            self._seen.add(key)
            if self._screen_record(record):
                fresh += 1
        # Batch the fixpoint: a Houdini attempt over a pool that barely
        # changed mostly re-discovers the same violations, so wait until
        # the pool has grown geometrically since the last attempt (the
        # engine calls :meth:`flush` at its own checkpoints to pick up
        # whatever a quiet stream left batched).
        self._fresh_since_attempt += fresh
        imported = 0
        if self._fresh_since_attempt >= max(2, len(self._pending) // 2):
            self._fresh_since_attempt = 0
            imported = self._houdini()
        self.stats.time_import_validation += time.perf_counter() - start
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "lembus.drain",
                cat="share",
                received=len(records),
                imported=imported,
                lost=lost,
            )
        return imported

    def flush(self) -> int:
        """Run the deferred Houdini attempt over candidates drain() batched."""
        if not self._fresh_since_attempt or not self._pending:
            return 0
        self._fresh_since_attempt = 0
        start = time.perf_counter()
        imported = self._houdini()
        self.stats.time_import_validation += time.perf_counter() - start
        return imported

    def _screen_record(self, record) -> bool:
        """Cheap screens; survivors join the candidate pool.

        A pooled candidate carries two persistent solver artefacts: an
        activation scope asserting the clause in the pre-state, and an
        auxiliary *violation monitor* variable ``aux`` with the permanent
        implications ``aux → ¬lit'`` for every literal — ``aux`` true in
        a model means the candidate fails in the post-state.  Both are
        paid once per candidate, so a Houdini round needs no re-encoding.
        """
        index_clause = list(record.clause)
        if self._map_in is not None:
            mapped = self._map_in([index_clause])
            if not mapped:
                self.stats.lemmas_rejected += 1
                return False
            index_clause = mapped[0]
        if not index_clause or any(
            not 1 <= abs(lit) <= len(self.aig.latches) for lit in index_clause
        ):
            self.stats.lemmas_rejected += 1
            return False
        ts, ctx = self._validator()
        literals = [
            ts.latch_vars[abs(lit) - 1] if lit > 0 else -ts.latch_vars[abs(lit) - 1]
            for lit in index_clause
        ]
        clause = Clause(literals)
        if not ts.clause_holds_on_init(clause):
            self.stats.lemmas_rejected += 1
            return False
        act = ctx.new_scope()
        ctx.add_to_scope(act, clause.literals)
        aux = ctx.solver.new_var()
        for lit in clause.literals:
            ctx.add_clause([-aux, -ts.prime_lit(lit)])
        self._pending.append((index_clause, clause, act, aux))
        if len(self._pending) > self.MAX_PENDING:
            _, _, old_act, _ = self._pending.pop(0)
            ctx.release_scope(old_act)
            self.stats.lemmas_rejected += 1
        return True

    def _houdini(self) -> int:
        """Install the largest mutually-inductive subset of the pool.

        All candidates are assumed together (their activation scopes, on
        top of the already-accepted clauses); one *violation query* per
        round asks whether any active candidate can fail in the
        post-state (a guarded disjunction over the ``aux`` monitors).  A
        model names the violated candidates, which are dropped and the
        round repeats, so the set only shrinks to a fixpoint; UNSAT means
        every remaining candidate's consecution holds.

        Consecution is checked relative to the property (``¬Bad`` is
        assumed in the pre-state).  Survivors therefore hold on every
        reachable state up to and including the *first* property
        violation, which keeps both uses sound: a base/BMC query can
        never lose the shallowest counterexample, and a step query
        strengthened this way is the classic invariant-constrained
        k-induction.  Each survivor is asserted permanently — on the
        validator and at every frame of the engine's unrolling.
        """
        ts, ctx = self._validator()
        active = list(range(len(self._pending)))
        while active:
            round_scope = ctx.new_scope()
            ctx.add_to_scope(
                round_scope, [self._pending[i][3] for i in active]
            )
            assumptions = (
                [-ts.bad_lit, round_scope] + [self._pending[i][2] for i in active]
            )
            sat_start = time.perf_counter()
            satisfiable = ctx.solve(assumptions)
            self.stats.sat_time += time.perf_counter() - sat_start
            self.stats.sat_calls += 1
            if not satisfiable:
                ctx.release_scope(round_scope)
                break
            model = ctx.solver.get_model()
            violated = {i for i in active if model.get(self._pending[i][3])}
            ctx.release_scope(round_scope)
            if not violated:
                # The disjunction guarantees a violated monitor; treat a
                # missing one as encoding trouble and accept nothing.
                active = []
                break
            active = [i for i in active if i not in violated]

        # Belt over the encoding: re-prove each survivor's consecution
        # individually before anything is installed (this is the
        # soundness-critical path; the survivors are genuinely inductive
        # so these are cheap UNSAT confirmations).
        while active:
            confirmed = []
            base = [-ts.bad_lit] + [self._pending[i][2] for i in active]
            for i in active:
                _, clause, _, _ = self._pending[i]
                sat_start = time.perf_counter()
                satisfiable = ctx.solve(
                    base + [-ts.prime_lit(lit) for lit in clause.literals]
                )
                self.stats.sat_time += time.perf_counter() - sat_start
                self.stats.sat_calls += 1
                if not satisfiable:
                    confirmed.append(i)
            if len(confirmed) == len(active):
                break
            active = confirmed

        accepted = set(active)
        for i in active:
            index_clause, clause, act, _ = self._pending[i]
            ctx.release_scope(act)
            ctx.add_clause(clause.literals)
            aig_lits = []
            for lit in index_clause:
                latch = self.aig.latches[abs(lit) - 1]
                aig_lits.append(latch.lit if lit > 0 else latch.lit ^ 1)
            self.unroller.add_invariant_clause(aig_lits)
            self.stats.lemmas_validated += 1
            self.stats.lemmas_imported += 1
        self._pending = [
            entry for i, entry in enumerate(self._pending) if i not in accepted
        ]
        return len(accepted)
