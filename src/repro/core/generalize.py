"""Inductive generalization (MIC) strategies.

Given a cube that is known to be blockable at level ``i`` (its negation is
inductive relative to ``F_{i-1}``), generalization drops literals one at a
time — each drop paid for with a consecution SAT query — to obtain a small,
strong lemma.  This is the most expensive part of IC3 and the part the
paper's lemma prediction tries to bypass.

Three strategies are provided:

* :class:`BasicGeneralizer` — the standard drop loop of Algorithm 1, with
  assumption-core shrinking after every successful query;
* :class:`CtgGeneralizer` — additionally blocks counterexamples to
  generalization (Hassan et al., FMCAD'13) so that more drops succeed;
* :class:`ParentOrderedGeneralizer` — orders literals so that those not
  occurring in a parent lemma of the previous frame are dropped first
  (the CAV'23 "i-Good lemmas" heuristic of Xia et al.).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.frames import FrameManagerBase
from repro.core.options import GeneralizationStrategy, IC3Options, LiteralOrdering
from repro.core.stats import IC3Stats
from repro.logic.cube import Cube
from repro.ts.system import TransitionSystem


class Generalizer:
    """Base class: owns the literal ordering and the shared drop loop."""

    def __init__(
        self,
        frames: FrameManagerBase,
        ts: TransitionSystem,
        options: IC3Options,
        stats: IC3Stats,
        literal_activity: Dict[int, float],
    ):
        self.frames = frames
        self.ts = ts
        self.options = options
        self.stats = stats
        self.literal_activity = literal_activity

    # ------------------------------------------------------------------
    # Literal ordering
    # ------------------------------------------------------------------
    def order_literals(self, cube: Cube, level: int) -> List[int]:
        """The order in which literals are *tried for dropping*."""
        literals = list(cube)
        ordering = self.options.literal_ordering
        if ordering == LiteralOrdering.INDEX:
            literals.sort(key=abs)
        elif ordering == LiteralOrdering.REVERSE_INDEX:
            literals.sort(key=abs, reverse=True)
        elif ordering == LiteralOrdering.ACTIVITY:
            # Drop the least active literals first so that literals appearing
            # in many lemmas are kept (they are likely load-bearing).
            literals.sort(key=lambda l: (self.literal_activity.get(abs(l), 0.0), abs(l)))
        return literals

    # ------------------------------------------------------------------
    # The drop loop
    # ------------------------------------------------------------------
    def generalize(self, cube: Cube, level: int) -> Cube:
        """Return a sub-cube of ``cube`` still blockable at ``level``."""
        current = cube
        for _ in range(self.options.mic_max_rounds):
            before = len(current)
            current = self._one_pass(current, level)
            if len(current) == before:
                break
        return current

    def _one_pass(self, cube: Cube, level: int) -> Cube:
        current = cube
        for literal in self.order_literals(cube, level):
            if literal not in current or len(current) <= 1:
                continue
            candidate = current.without(literal)
            if self.ts.cube_intersects_init(candidate):
                continue
            dropped = self._attempt_drop(candidate, level)
            if dropped is not None:
                current = dropped
        return current

    def _attempt_drop(self, candidate: Cube, level: int) -> Optional[Cube]:
        """Check one candidate; returns the (possibly core-shrunk) cube or None."""
        self.stats.mic_drop_attempts += 1
        result = self.frames.consecution(level - 1, candidate)
        if not result.holds:
            return None
        self.stats.mic_drop_successes += 1
        return self._apply_core(candidate, result.core_cube)

    def _apply_core(self, candidate: Cube, core_cube: Optional[Cube]) -> Cube:
        """Shrink to the assumption core when it is usable."""
        if (
            not self.options.use_unsat_core_shrinking
            or core_cube is None
            or core_cube.is_empty()
            or self.ts.cube_intersects_init(core_cube)
        ):
            return candidate
        return core_cube


class BasicGeneralizer(Generalizer):
    """The standard MIC of Algorithm 1 (drop literals one by one)."""


class CtgGeneralizer(Generalizer):
    """MIC that blocks counterexamples to generalization (CTGs).

    When dropping a literal fails, the counterexample-to-induction state is
    itself tried as a lemma (up to ``max_ctgs`` times per drop); blocking it
    strengthens the frame and frequently lets the original drop succeed on
    retry.  This is a faithful, depth-1 rendition of the ctgDown algorithm.
    """

    def _attempt_drop(self, candidate: Cube, level: int) -> Optional[Cube]:
        ctgs_blocked = 0
        while True:
            self.stats.mic_drop_attempts += 1
            result = self.frames.consecution(level - 1, candidate)
            if result.holds:
                self.stats.mic_drop_successes += 1
                return self._apply_core(candidate, result.core_cube)
            if (
                ctgs_blocked >= self.options.max_ctgs
                or self.options.ctg_depth < 1
                or result.predecessor is None
            ):
                return None
            ctg = result.predecessor
            if self.ts.cube_intersects_init(ctg):
                return None
            ctg_result = self.frames.consecution(level - 1, ctg)
            if not ctg_result.holds:
                return None
            blocked = self._apply_core(ctg, ctg_result.core_cube)
            if self.ts.cube_intersects_init(blocked):
                blocked = ctg
            self.frames.add_blocked_cube(blocked, min(level, self.frames.top_level))
            self.stats.ctg_blocked += 1
            ctgs_blocked += 1


class ParentOrderedGeneralizer(Generalizer):
    """MIC with the CAV'23 parent-lemma literal ordering.

    Literals that occur in a parent lemma of the previous frame are kept
    for last (and therefore tend to survive), which raises the probability
    that the resulting lemma can be propagated forward.
    """

    def order_literals(self, cube: Cube, level: int) -> List[int]:
        base_order = super().order_literals(cube, level)
        parent_literals = set()
        cube_lits = cube.literal_set
        for parent in self.frames.lemmas_exactly_at(level - 1):
            if parent.literal_set <= cube_lits:
                parent_literals.update(parent.literal_set)
        # Non-parent literals first (dropped first), parent literals last.
        return sorted(base_order, key=lambda l: (l in parent_literals, base_order.index(l)))


def make_generalizer(
    frames: FrameManagerBase,
    ts: TransitionSystem,
    options: IC3Options,
    stats: IC3Stats,
    literal_activity: Dict[int, float],
) -> Generalizer:
    """Instantiate the generalizer selected by the options."""
    strategy = options.generalization
    if strategy == GeneralizationStrategy.BASIC:
        cls: type = BasicGeneralizer
    elif strategy == GeneralizationStrategy.CTG:
        cls = CtgGeneralizer
    elif strategy == GeneralizationStrategy.PARENT_ORDERED:
        cls = ParentOrderedGeneralizer
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown generalization strategy: {strategy!r}")
    return cls(frames, ts, options, stats, literal_activity)
