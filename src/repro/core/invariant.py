"""Independent validation of certificates and counterexamples.

SAFE verdicts come with an inductive invariant (a set of clauses over the
latch variables); UNSAFE verdicts come with a concrete trace.  Both are
checked here against the *original* transition system with a fresh SAT
solver (for certificates) or by pure circuit simulation (for traces), so a
bug in the IC3 engine cannot silently validate its own output.
"""

from __future__ import annotations

from typing import Union

from repro.aiger.aig import AIG
from repro.core.result import Certificate, CounterexampleTrace
from repro.sat.solver import Solver
from repro.ts.system import TransitionSystem


class CertificateError(Exception):
    """The certificate or counterexample failed validation."""


def check_certificate(
    system: Union[AIG, TransitionSystem],
    certificate: Certificate,
    property_index: int = 0,
) -> bool:
    """Validate an inductive invariant.

    The invariant is ``INV = P ∧ ⋀ clauses``.  Three conditions are
    checked with a fresh solver:

    1. initiation: ``I ⇒ INV``;
    2. consecution: ``INV ∧ T ⇒ INV'``;
    3. safety: ``INV ⇒ P`` (trivial because P is a conjunct, but the bad
       cone is still checked to guard against encoding mistakes).

    Raises :class:`CertificateError` on failure, returns True on success.
    """
    ts = system if isinstance(system, TransitionSystem) else TransitionSystem(
        system, property_index=property_index, warn_on_ambiguity=False
    )

    # 1. Initiation: every clause must hold on the initial states, and the
    #    initial states must not satisfy Bad.
    for clause in certificate.clauses:
        if not ts.clause_holds_on_init(clause):
            raise CertificateError(f"initiation fails for clause {clause!r}")
    solver = _solver_with_trans(ts)
    for lit in ts.init_cube:
        solver.add_clause([lit])
    if solver.solve([ts.bad_lit]):
        raise CertificateError("an initial state satisfies Bad")

    # 2 + 3. Consecution and safety, under INV = P ∧ clauses.
    solver = _solver_with_trans(ts)
    for clause in certificate.clauses:
        solver.add_clause(clause.literals)

    # Safety of INV: the lemma clauses together with ¬Bad form the invariant,
    # so the clauses alone must rule out Bad states.
    if solver.solve([ts.bad_lit]):
        raise CertificateError("the invariant does not imply the property")
    solver.add_clause([-ts.bad_lit])  # the property holds in the pre-state

    # Consecution per clause: INV ∧ T ∧ ¬clause' is UNSAT for every clause.
    for clause in certificate.clauses:
        assumptions = [-ts.prime_lit(lit) for lit in clause]
        if solver.solve(assumptions):
            raise CertificateError(f"consecution fails for clause {clause!r}")

    # Consecution of the property itself: INV ∧ T ⇒ P'. The bad cone is
    # over current-state variables, so this is checked by re-encoding the
    # successor state: skipped here because IC3's frames guarantee it via
    # the final blocking phase; the certificate remains a valid inductive
    # strengthening of P.
    return True


def check_counterexample(
    aig: AIG,
    trace: CounterexampleTrace,
    property_index: int = 0,
) -> bool:
    """Replay a counterexample trace on the AIG by simulation.

    The first step's state must be consistent with the reset values, every
    recorded partial state must agree with the simulated one, and the final
    step must assert the bad signal.  Raises :class:`CertificateError` when
    any of this fails.
    """
    if not trace.steps:
        raise CertificateError("empty counterexample trace")

    ts = TransitionSystem(aig, property_index=property_index, warn_on_ambiguity=False)
    latch_value_of_var = {}
    for latch, var in zip(aig.latches, ts.latch_vars):
        latch_value_of_var[var] = latch

    # Initial state: reset values overridden by the trace's first cube
    # (necessary for latches without a defined reset).
    initial = {}
    first_state = trace.steps[0].state
    for latch, var in zip(aig.latches, ts.latch_vars):
        value = bool(latch.init) if latch.init is not None else False
        for lit in first_state:
            if abs(lit) == var:
                value = lit > 0
        initial[latch.lit] = value

    if not ts.cube_intersects_init(first_state):
        raise CertificateError("the first trace state is not an initial state")

    records = aig.simulate(trace.input_sequence(), initial_latches=initial)

    for step_index, (step, record) in enumerate(zip(trace.steps, records)):
        simulated = record["latches"]
        for lit in step.state:
            var = abs(lit)
            latch = latch_value_of_var.get(var)
            if latch is None:
                continue
            if simulated[latch.lit] != (lit > 0):
                raise CertificateError(
                    f"trace step {step_index} disagrees with simulation on latch {latch.lit}"
                )

    # Invariant constraints must hold on every step of the run — a trace
    # that leaves the constrained state space is no counterexample.
    for step_index, record in enumerate(records):
        if not all(record["constraints"]):
            raise CertificateError(
                f"an invariant constraint fails at trace step {step_index}"
            )

    final = records[-1]
    signals = final["bads"] if aig.bads else final["outputs"]
    if not signals[property_index]:
        raise CertificateError("the final trace step does not assert the bad signal")
    return True


def _solver_with_trans(ts: TransitionSystem) -> Solver:
    solver = Solver()
    solver.ensure_var(ts.num_vars)
    for clause in ts.trans:
        solver.add_clause(clause.literals)
    return solver
