"""Statistics collected by the IC3 engine.

Besides generic counters (SAT calls, lemmas, obligations) the class tracks
the three success rates reported in Table 2 of the paper:

* ``SR_lp = N_sp / N_p`` — lemma-prediction success rate, where ``N_p`` is
  the number of SAT queries spent on predictions and ``N_sp`` the number of
  successful predictions;
* ``SR_fp = N_fp / N_g`` — how often a generalization found a parent lemma
  with a recorded push failure (a CTP to work from);
* ``SR_adv = N_sp / N_g`` — how often dropping variables was avoided
  entirely, out of all generalizations ``N_g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class IC3Stats:
    """Counters accumulated during one IC3 run."""

    # SAT activity
    sat_calls: int = 0
    sat_time: float = 0.0
    consecution_calls: int = 0
    consecution_fallbacks: int = 0
    lifting_calls: int = 0
    assumption_levels_reused: int = 0

    # Frame / lemma activity
    frames_opened: int = 0
    lemmas_added: int = 0
    lemmas_pushed: int = 0
    subsumed_lemmas: int = 0
    obligations_processed: int = 0
    bad_cubes: int = 0
    ctis: int = 0

    # Solving-substrate activity (manifest schema v3)
    lemma_clauses_added: int = 0      # physical lemma clause insertions
    lemma_clauses_removed: int = 0    # promoted/subsumed copies deleted
    solver_clauses_shared: int = 0    # placements served by an existing clause
    solver_clauses_duplicated: int = 0  # per-frame copies beyond the first
    solver_garbage_lemmas: int = 0    # dead lemma clauses left in solvers
    solver_rebuilds: int = 0          # from-scratch solver reconstructions
    activation_vars_allocated: int = 0
    activation_vars_recycled: int = 0
    activation_vars_retired: int = 0

    # Multi-property scheduling activity (manifest schema v4)
    shared_lemmas_offered: int = 0    # pool clauses offered to a sibling run
    shared_lemmas_applied: int = 0    # pool clauses actually seeded into frames
    shared_unrolling_queries: int = 0  # BMC queries answered by a shared unrolling

    # SAT-kernel memory-system activity (manifest schema v5); aggregated
    # over every solver the run created, same semantics in both backends.
    watch_traversals: int = 0         # watch-list entries inspected in propagate
    blocker_hits: int = 0             # entries resolved from the blocker alone
    literal_pool_bytes: int = 0       # live clause-storage bytes at finalize
    arena_compactions: int = 0        # clause-storage garbage collections
    solver_removed_clauses: int = 0   # clauses lazily deleted (guarded + learnt)

    # SAT-kernel search activity (manifest schema v8); aggregated over
    # every solver the run created.  The portfolio benchmark uses the
    # conflict total to measure work saved by cooperative lemma sharing.
    solver_conflicts: int = 0
    solver_decisions: int = 0
    solver_propagations: int = 0

    # Cooperative portfolio lemma sharing (manifest schema v8).
    lemmas_published: int = 0         # own lemmas put on the bus
    lemmas_received: int = 0          # foreign records drained from the bus
    lemmas_validated: int = 0         # foreign lemmas that passed revalidation
    lemmas_rejected: int = 0          # foreign lemmas refused (failed validation)
    lemmas_imported: int = 0          # validated lemmas installed locally
    bus_overflows: int = 0            # drains that lost records to ring lag
    time_import_validation: float = 0.0  # seconds spent validating imports

    # Generalization activity
    generalizations: int = 0          # N_g
    mic_drop_attempts: int = 0
    mic_drop_successes: int = 0
    ctg_blocked: int = 0

    # Lemma prediction activity (the paper's contribution)
    prediction_queries: int = 0       # N_p  (SAT queries spent predicting)
    prediction_successes: int = 0     # N_sp (generalizations solved by prediction)
    parent_lemma_hits: int = 0        # N_fp (generalizations that found a failed-push parent)
    parent_lemmas_found: int = 0      # parent lemmas inspected (with or without CTP)
    ctp_recorded: int = 0             # failure-push table insertions
    ctp_table_clears: int = 0
    predicted_push_parent: int = 0    # predictions that returned the parent lemma itself
    predicted_extended: int = 0       # predictions that returned parent ∪ {¬d}

    # Wall-clock breakdown (seconds)
    time_total: float = 0.0
    time_generalization: float = 0.0
    time_prediction: float = 0.0
    time_propagation: float = 0.0

    # ------------------------------------------------------------------
    # Success rates (Table 2)
    # ------------------------------------------------------------------
    @property
    def sr_lp(self) -> Optional[float]:
        """Lemma-prediction success rate ``N_sp / N_p`` (None if no predictions)."""
        if self.prediction_queries == 0:
            return None
        return self.prediction_successes / self.prediction_queries

    @property
    def sr_fp(self) -> Optional[float]:
        """Failed-push parent discovery rate ``N_fp / N_g`` (None if no generalizations)."""
        if self.generalizations == 0:
            return None
        return self.parent_lemma_hits / self.generalizations

    @property
    def sr_adv(self) -> Optional[float]:
        """Avoided-variable-dropping rate ``N_sp / N_g`` (None if no generalizations)."""
        if self.generalizations == 0:
            return None
        return self.prediction_successes / self.generalizations

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Flatten all counters and rates into a dictionary (for reports)."""
        data = {
            "sat_calls": self.sat_calls,
            "consecution_calls": self.consecution_calls,
            "consecution_fallbacks": self.consecution_fallbacks,
            "lifting_calls": self.lifting_calls,
            "assumption_levels_reused": self.assumption_levels_reused,
            "frames_opened": self.frames_opened,
            "lemmas_added": self.lemmas_added,
            "lemmas_pushed": self.lemmas_pushed,
            "subsumed_lemmas": self.subsumed_lemmas,
            "obligations_processed": self.obligations_processed,
            "bad_cubes": self.bad_cubes,
            "ctis": self.ctis,
            "lemma_clauses_added": self.lemma_clauses_added,
            "lemma_clauses_removed": self.lemma_clauses_removed,
            "solver_clauses_shared": self.solver_clauses_shared,
            "solver_clauses_duplicated": self.solver_clauses_duplicated,
            "solver_garbage_lemmas": self.solver_garbage_lemmas,
            "solver_rebuilds": self.solver_rebuilds,
            "activation_vars_allocated": self.activation_vars_allocated,
            "activation_vars_recycled": self.activation_vars_recycled,
            "activation_vars_retired": self.activation_vars_retired,
            "shared_lemmas_offered": self.shared_lemmas_offered,
            "shared_lemmas_applied": self.shared_lemmas_applied,
            "shared_unrolling_queries": self.shared_unrolling_queries,
            "watch_traversals": self.watch_traversals,
            "blocker_hits": self.blocker_hits,
            "literal_pool_bytes": self.literal_pool_bytes,
            "arena_compactions": self.arena_compactions,
            "solver_removed_clauses": self.solver_removed_clauses,
            "solver_conflicts": self.solver_conflicts,
            "solver_decisions": self.solver_decisions,
            "solver_propagations": self.solver_propagations,
            "lemmas_published": self.lemmas_published,
            "lemmas_received": self.lemmas_received,
            "lemmas_validated": self.lemmas_validated,
            "lemmas_rejected": self.lemmas_rejected,
            "lemmas_imported": self.lemmas_imported,
            "bus_overflows": self.bus_overflows,
            "time_import_validation": self.time_import_validation,
            "generalizations": self.generalizations,
            "mic_drop_attempts": self.mic_drop_attempts,
            "mic_drop_successes": self.mic_drop_successes,
            "ctg_blocked": self.ctg_blocked,
            "prediction_queries": self.prediction_queries,
            "prediction_successes": self.prediction_successes,
            "parent_lemma_hits": self.parent_lemma_hits,
            "parent_lemmas_found": self.parent_lemmas_found,
            "ctp_recorded": self.ctp_recorded,
            "ctp_table_clears": self.ctp_table_clears,
            "predicted_push_parent": self.predicted_push_parent,
            "predicted_extended": self.predicted_extended,
            "time_total": self.time_total,
            "time_generalization": self.time_generalization,
            "time_prediction": self.time_prediction,
            "time_propagation": self.time_propagation,
        }
        data["sr_lp"] = self.sr_lp
        data["sr_fp"] = self.sr_fp
        data["sr_adv"] = self.sr_adv
        return data

    def merge(self, other: "IC3Stats") -> "IC3Stats":
        """Return a new stats object with counters summed (times added)."""
        merged = IC3Stats()
        for name in vars(self):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged
