"""Machine-readable run manifests.

``repro-check evaluate --output run.json`` records everything needed to
track performance across PRs (the ``BENCH_*.json`` trajectory): the suite
and harness parameters, per-case verdicts and runtimes, the portfolio
winner and full engine statistics of every run, the original-vs-reduced
model sizes the preprocessing pipeline achieved, and per-configuration
totals.  The schema is versioned so future readers can evolve without
guessing.

Schema v2 (``repro-check/manifest/v2``) additions over v1:

* per-result ``winner`` — the member engine that won a portfolio race
  (None for non-portfolio configurations);
* per-result ``stats`` — the engine's statistics counters
  (:meth:`repro.core.stats.IC3Stats.as_dict`);
* per-result ``reduction`` — original and reduced model sizes plus the
  pass list (None when preprocessing was disabled);
* top-level ``reduce`` — whether preprocessing was enabled for the run.

Schema v3 (``repro-check/manifest/v3``) additions over v2:

* per-result ``stats`` now includes the solving-substrate counters of
  the incremental layer: ``lemma_clauses_added`` /
  ``lemma_clauses_removed`` (physical lemma clause traffic),
  ``solver_clauses_shared`` vs ``solver_clauses_duplicated`` (frame
  placements served by one clause vs per-frame copies),
  ``solver_garbage_lemmas`` and ``solver_rebuilds`` (per-frame backend
  garbage shedding), ``activation_vars_allocated`` / ``_recycled`` /
  ``_retired`` (removable-clause scopes), ``consecution_fallbacks``
  (clause-free consecution re-queries) and ``assumption_levels_reused``
  (solver trail reuse across queries);
* per-configuration ``frame_backend`` and ``sat_backend`` — which
  solving substrate the configuration ran on (None for engines that do
  not take IC3 options).

Schema v4 (``repro-check/manifest/v4``) additions over v3:

* per-result ``properties`` — for multi-property scheduler runs, one
  record per property of the model (number/label/kind, verdict, engine,
  runtime, validation status, ``shared_lemmas_applied`` hits and the
  liveness-transformation summary); None for single-property runs;
* per-result ``transformation`` — the l2s/k-liveness compiler summary
  (kind, tracked literals, auxiliary latches, proved bound ``k``) when
  the configuration ran a liveness engine directly; None otherwise;
* per-result ``stats`` now includes the multi-property sharing counters
  ``shared_lemmas_offered`` / ``shared_lemmas_applied`` (invariant
  clauses seeded across sibling properties) and
  ``shared_unrolling_queries`` (BMC queries answered by the scheduler's
  shared unrolling).

Schema v5 (``repro-check/manifest/v5``) additions over v4:

* per-result ``stats`` now includes the SAT-kernel memory-system
  counters maintained identically by both registered backends:
  ``watch_traversals`` (watcher entries inspected by unit propagation),
  ``blocker_hits`` (entries resolved from the cached blocker literal
  without touching clause memory), ``literal_pool_bytes`` (live
  clause-storage bytes at finalize), ``arena_compactions``
  (clause-storage garbage collections) and ``solver_removed_clauses``
  (lazily deleted clauses: reduce-DB victims, removed guarded clauses
  and purged learnts).

Schema v6 (``repro-check/manifest/v6``) additions over v5:

* optional top-level ``service`` — when the run was produced through the
  ``repro.serve`` daemon (or its smoke benchmark), a block describing
  the serving context: the service counters of
  :data:`repro.serve.metrics.COUNTERS` (jobs submitted/completed/failed,
  cache hits/misses, queue and budget rejections, worker
  recycles/crashes/timeouts, reduction reuses) plus any transport
  details the producer adds.  ``None`` for plain ``repro-check
  evaluate`` runs, so readers that ignore unknown keys keep working;
* per-result records produced by the daemon follow the same shape as
  harness results (``result``/``runtime``/``engine``/``stats``/
  ``reduction``/``properties``/``transformation``/``witness``), with an
  additional ``cache_hit`` flag on the job envelope.

Schema v7 (``repro-check/manifest/v7``) additions over v6:

* per-configuration ``phase_times`` in ``totals`` — a wall-clock
  attribution dict summed over the configuration's cases from the
  engines' own phase timers: ``sat`` (inside SAT solver calls),
  ``generalization``, ``prediction``, ``propagation``, ``reduction``
  (preprocessing pipeline) and ``other`` (total minus the above, the
  engine's bookkeeping and blocking overhead).  Seconds, rounded to
  microseconds.  The same attribution is available per run, at full
  span granularity, through ``repro-check evaluate --trace-out`` and
  ``repro-check trace-report`` (the :mod:`repro.obs` tracing layer).

Schema v8 (``repro-check/manifest/v8``) additions over v7:

* per-result ``stats`` now includes the SAT-kernel search totals
  ``solver_conflicts`` / ``solver_decisions`` / ``solver_propagations``
  (aggregated over every kernel the run created) and the cooperative
  lemma-sharing counters ``lemmas_published`` / ``lemmas_received`` /
  ``lemmas_validated`` / ``lemmas_rejected`` / ``lemmas_imported`` /
  ``bus_overflows`` plus the ``time_import_validation`` phase timer
  (seconds spent revalidating foreign clauses before installing them);
* per-configuration ``seed`` — the SAT-kernel RNG seed the
  configuration ran with (0 for the deterministic unseeded order, None
  for engines that do not take IC3 options);
* per-result ``sharing`` — for cooperative portfolio runs, the lemma
  bus accounting (transport, total records published, per-member
  exchange counters of every member that reported back); None when the
  run did not share lemmas.

Schema v9 (``repro-check/manifest/v9``) additions over v8:

* optional top-level ``telemetry`` — when the run was executed with the
  live telemetry layer active (``repro-check evaluate --live`` or any
  producer that opts in), the condensed per-family totals of the
  process-wide metrics registry at manifest build time
  (:func:`repro.obs.metrics.snapshot_totals`: counter totals such as
  ``repro_engine_runs_total`` / ``repro_sat_calls_total`` /
  ``repro_harness_tasks_total`` / ``repro_stalls_total``, and
  ``sum``/``count`` pairs for the latency histograms).  ``None`` —
  and therefore byte-identical output for identical runs — otherwise.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Sequence

from repro.harness.configs import EngineConfig
from repro.harness.runner import CaseResult, SuiteResult

MANIFEST_SCHEMA = "repro-check/manifest/v9"


def _phase_times(results: Sequence[CaseResult]) -> Dict[str, float]:
    """Sum per-phase wall-clock attribution over one configuration's runs.

    Built from the engines' own phase timers (``IC3Stats.time_*``,
    ``sat_time``) and the reduction pipeline's recorded ``elapsed``;
    ``other`` is whatever of the total the named phases do not explain.
    """
    phases = {
        "sat": 0.0,
        "generalization": 0.0,
        "prediction": 0.0,
        "propagation": 0.0,
        "reduction": 0.0,
        "other": 0.0,
    }
    for result in results:
        stats = result.stats
        phases["sat"] += stats.sat_time
        phases["generalization"] += stats.time_generalization
        phases["prediction"] += stats.time_prediction
        phases["propagation"] += stats.time_propagation
        reduction_elapsed = 0.0
        if result.reduction:
            reduction_elapsed = float(result.reduction.get("elapsed") or 0.0)
        phases["reduction"] += reduction_elapsed
        attributed = (
            stats.sat_time
            + stats.time_generalization
            + stats.time_prediction
            + stats.time_propagation
            + reduction_elapsed
        )
        # Generalization/prediction/propagation all sit on top of SAT
        # calls they issue, so "attributed" can legitimately exceed the
        # runtime; never report negative slack for that.
        phases["other"] += max(0.0, result.runtime - attributed)
    return {name: round(value, 6) for name, value in phases.items()}


def _reduction_sizes(result: CaseResult) -> Optional[Dict[str, object]]:
    """Slim per-case reduction record (sizes + passes, no per-pass detail)."""
    summary = result.reduction
    if not summary:
        return None
    return {
        "original": summary.get("original"),
        "reduced": summary.get("reduced"),
        "passes": summary.get("passes"),
    }


def build_manifest(
    suite_result: SuiteResult,
    *,
    suite: str = "custom",
    jobs: int = 1,
    validate: bool = False,
    reduce: bool = True,
    configs: Optional[Sequence[EngineConfig]] = None,
    wall_clock: Optional[float] = None,
    service: Optional[Dict[str, object]] = None,
    telemetry: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the JSON-serializable manifest of one harness run."""
    config_meta = {
        config.name: {
            "engine": config.engine,
            "plays_role_of": config.plays_role_of,
            "uses_prediction": config.uses_prediction,
            "frame_backend": (
                config.options.frame_backend if config.options is not None else None
            ),
            "sat_backend": (
                config.options.sat_backend if config.options is not None else None
            ),
            "seed": (
                config.options.seed if config.options is not None else None
            ),
        }
        for config in (configs or [])
    }
    results = [
        {
            "case": r.case_name,
            "config": r.config_name,
            "result": r.result.value,
            "runtime": round(r.runtime, 6),
            "penalized_runtime": round(r.penalized_runtime, 6),
            "frames": r.frames,
            "engine": r.engine,
            "winner": r.winner,
            "solved": r.solved,
            "correct": r.correct,
            "validated": r.validated,
            "stats": r.stats.as_dict(),
            "reduction": _reduction_sizes(r),
            "properties": r.properties,
            "transformation": r.transformation,
            "sharing": r.sharing,
            "error": r.error,
        }
        for r in suite_result.results
    ]
    totals = {
        name: {
            "solved": suite_result.solved_count(name),
            "safe": sum(
                1 for r in suite_result.by_config(name) if r.result.value == "safe"
            ),
            "unsafe": sum(
                1 for r in suite_result.by_config(name) if r.result.value == "unsafe"
            ),
            "wrong": sum(1 for r in suite_result.by_config(name) if not r.correct),
            "par1_time": round(
                sum(r.penalized_runtime for r in suite_result.by_config(name)), 6
            ),
            "phase_times": _phase_times(suite_result.by_config(name)),
        }
        for name in suite_result.configs()
    }
    return {
        "schema": MANIFEST_SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "suite": suite,
        "timeout": suite_result.timeout,
        "jobs": jobs,
        "validate": validate,
        "reduce": reduce,
        "num_cases": len(suite_result.cases()),
        "num_configs": len(suite_result.configs()),
        "configs": config_meta,
        "totals": totals,
        "results": results,
        "wall_clock": round(wall_clock, 6) if wall_clock is not None else None,
        "service": service,
        "telemetry": telemetry,
    }


def write_manifest(path: str, manifest: Dict[str, object]) -> None:
    """Write a manifest dictionary as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
