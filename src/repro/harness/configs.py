"""Engine configurations evaluated by the harness.

Each configuration is one row of the paper's Table 1.  The paper compares
two independent IC3 code bases (IC3ref in C++ and RIC3 in Rust), each with
and without the proposed lemma prediction, plus the CAV'23 "i-Good lemmas"
variant and ABC's PDR.  Those exact binaries are not available here, so
every row is a differently-configured instance of this library's IC3
engine; the ``plays_role_of`` field records the mapping (see DESIGN.md for
the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.options import IC3Options


@dataclass
class EngineConfig:
    """A named engine configuration.

    ``engine`` is a registry kind from :mod:`repro.engines` (``"ic3"``,
    ``"bmc"``, ``"kind"``, ``"portfolio"``, ...); ``options`` configures
    IC3-based engines and is ignored by the others; ``engine_kwargs`` is
    forwarded verbatim to the engine factory (e.g. BMC's ``max_depth``).
    """

    name: str
    options: Optional[IC3Options] = None
    plays_role_of: str = ""
    description: str = ""
    engine: str = "ic3"
    engine_kwargs: Dict[str, object] = field(default_factory=dict)

    @property
    def uses_prediction(self) -> bool:
        """True if this configuration has the paper's optimization enabled."""
        return self.options is not None and self.options.enable_prediction


def paper_configurations() -> List[EngineConfig]:
    """The six configurations of Table 1, in the paper's order."""
    return [
        EngineConfig(
            name="RIC3",
            options=IC3Options.profile_ic3_b(),
            plays_role_of="RIC3 (Rust IC3 by the authors)",
            description="activity-ordered MIC, no lifting, no aggressive push",
        ),
        EngineConfig(
            name="RIC3-pl",
            options=IC3Options.profile_ic3_b().with_prediction(),
            plays_role_of="RIC3 + predicting lemmas",
            description="RIC3 profile with CTP-based lemma prediction",
        ),
        EngineConfig(
            name="IC3ref",
            options=IC3Options.profile_ic3_a(),
            plays_role_of="IC3ref (Bradley's reference implementation)",
            description="index-ordered MIC, core lifting, aggressive push",
        ),
        EngineConfig(
            name="IC3ref-pl",
            options=IC3Options.profile_ic3_a().with_prediction(),
            plays_role_of="IC3ref + predicting lemmas",
            description="IC3ref profile with CTP-based lemma prediction",
        ),
        EngineConfig(
            name="IC3ref-CAV23",
            options=IC3Options.profile_cav23(),
            plays_role_of="IC3ref with i-Good lemmas (Xia et al., CAV'23)",
            description="parent-lemma-ordered generalization",
        ),
        EngineConfig(
            name="ABC-PDR",
            options=IC3Options.profile_pdr(),
            plays_role_of="PDR as implemented in ABC",
            description="CTG generalization, activity ordering, aggressive push",
        ),
    ]


def apply_frame_backend(
    configs: Sequence[EngineConfig], frame_backend: Optional[str]
) -> List[EngineConfig]:
    """Override the frame-management substrate of every IC3 configuration.

    The single source of truth for the ``--frame-backend`` override: the
    harness uses it to build the engines it runs and the CLI uses it to
    record the same configurations in the manifest.
    """
    if frame_backend is None:
        return list(configs)
    return [
        replace(config, options=replace(config.options, frame_backend=frame_backend))
        if config.options is not None
        else config
        for config in configs
    ]


def apply_sat_backend(
    configs: Sequence[EngineConfig], sat_backend: Optional[str]
) -> List[EngineConfig]:
    """Override the SAT kernel of every configuration carrying options.

    Mirrors :func:`apply_frame_backend` for the ``--sat-backend``
    override: one helper serves both the harness (engine construction)
    and the CLI (manifest recording), so the two cannot drift.
    """
    if sat_backend is None:
        return list(configs)
    return [
        replace(config, options=replace(config.options, sat_backend=sat_backend))
        if config.options is not None
        else config
        for config in configs
    ]


def apply_seed(
    configs: Sequence[EngineConfig], seed: Optional[int]
) -> List[EngineConfig]:
    """Override the SAT-kernel RNG seed of every configuration.

    Mirrors :func:`apply_sat_backend` for the ``--seed`` override.  The
    same seed is applied to every configuration — per-run determinism,
    not portfolio diversification (the portfolio derives distinct
    per-member seeds itself, see ``PortfolioOptions.base_seed``).
    """
    if seed is None:
        return list(configs)
    return [
        replace(config, options=replace(config.options, seed=seed))
        if config.options is not None
        else replace(
            config, engine_kwargs={**config.engine_kwargs, "seed": seed}
        )
        for config in configs
    ]


def prediction_pairs() -> List[Tuple[str, str]]:
    """(base, prediction) configuration name pairs used by Figures 3 and 4."""
    return [("RIC3", "RIC3-pl"), ("IC3ref", "IC3ref-pl")]


def config_by_name(name: str) -> EngineConfig:
    """Look up one of the paper configurations by name."""
    for config in paper_configurations():
        if config.name == name:
            return config
    raise KeyError(f"unknown configuration {name!r}")
