"""Figure data generation (Figures 2, 3 and 4 of the paper).

The harness has no plotting dependency; each function returns the exact
series a plot would show (and the report renders them as text/CSV), which
is what the reproduction needs to compare shapes against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.harness.runner import SuiteResult


# ----------------------------------------------------------------------
# Figure 2: cactus plot (cases solved within a time limit)
# ----------------------------------------------------------------------
@dataclass
class CactusSeries:
    """One configuration's cactus curve."""

    config_name: str
    solve_times: List[float] = field(default_factory=list)
    """Sorted runtimes of the solved cases."""

    def solved_within(self, limit: float) -> int:
        """Number of cases solved within ``limit`` seconds."""
        return sum(1 for t in self.solve_times if t <= limit)

    def points(self) -> List[Tuple[float, int]]:
        """(time, cumulative solved) points of the curve."""
        return [(t, i + 1) for i, t in enumerate(self.solve_times)]


def cactus_data(suite_result: SuiteResult) -> Dict[str, CactusSeries]:
    """Cactus series per configuration (paper Figure 2)."""
    series: Dict[str, CactusSeries] = {}
    for config_name in suite_result.configs():
        times = sorted(
            r.runtime for r in suite_result.by_config(config_name) if r.solved
        )
        series[config_name] = CactusSeries(config_name=config_name, solve_times=times)
    return series


# ----------------------------------------------------------------------
# Figure 3: scatter of runtimes with vs. without prediction
# ----------------------------------------------------------------------
@dataclass
class ScatterPoint:
    """One case in the scatter plot."""

    case_name: str
    base_time: float
    pl_time: float
    base_solved: bool
    pl_solved: bool

    @property
    def below_diagonal(self) -> bool:
        """True when the prediction-enabled run was faster."""
        return self.pl_time < self.base_time


@dataclass
class ScatterData:
    """All points of one base-vs-prediction comparison."""

    base_config: str
    pl_config: str
    points: List[ScatterPoint] = field(default_factory=list)

    @property
    def below_diagonal_count(self) -> int:
        """Cases where prediction was faster."""
        return sum(1 for p in self.points if p.below_diagonal)

    @property
    def above_diagonal_count(self) -> int:
        """Cases where prediction was slower."""
        return sum(1 for p in self.points if p.pl_time > p.base_time)

    def only_pl_solved(self) -> List[str]:
        """Cases only the prediction-enabled configuration solved."""
        return [p.case_name for p in self.points if p.pl_solved and not p.base_solved]

    def only_base_solved(self) -> List[str]:
        """Cases only the base configuration solved."""
        return [p.case_name for p in self.points if p.base_solved and not p.pl_solved]


def scatter_data(
    suite_result: SuiteResult, base_config: str, pl_config: str
) -> ScatterData:
    """Per-case runtime pairs for one engine with and without prediction."""
    data = ScatterData(base_config=base_config, pl_config=pl_config)
    for case_name in suite_result.cases():
        base = suite_result.lookup(base_config, case_name)
        pl = suite_result.lookup(pl_config, case_name)
        if base is None or pl is None:
            continue
        data.points.append(
            ScatterPoint(
                case_name=case_name,
                base_time=base.penalized_runtime,
                pl_time=pl.penalized_runtime,
                base_solved=base.solved,
                pl_solved=pl.solved,
            )
        )
    return data


# ----------------------------------------------------------------------
# Figure 4: runtime ratio vs. SR_adv
# ----------------------------------------------------------------------
@dataclass
class RatioPoint:
    """One case in the Figure 4 correlation."""

    case_name: str
    sr_adv: float
    ratio: float
    """base runtime / prediction runtime (> 1 means prediction helped)."""

    improved: bool


@dataclass
class RatioData:
    """Figure 4: ratio-vs-SR_adv points plus the cumulative improved count."""

    base_config: str
    pl_config: str
    points: List[RatioPoint] = field(default_factory=list)
    excluded_cases: List[str] = field(default_factory=list)

    def sorted_by_sr_adv(self) -> List[RatioPoint]:
        """Points ordered by increasing prediction success rate."""
        return sorted(self.points, key=lambda p: p.sr_adv)

    def cumulative_improved(self) -> List[Tuple[float, int]]:
        """(SR_adv, cumulative improved cases) as SR_adv increases."""
        cumulative = []
        count = 0
        for point in self.sorted_by_sr_adv():
            if point.improved:
                count += 1
            cumulative.append((point.sr_adv, count))
        return cumulative

    def improvement_rate_by_bucket(self, buckets: int = 4) -> List[Tuple[str, float]]:
        """Fraction of improved cases per SR_adv quantile bucket.

        The paper's claim is that higher prediction success correlates with
        better speedups; this summarises that correlation without a plot.
        """
        ordered = self.sorted_by_sr_adv()
        if not ordered:
            return []
        result = []
        size = max(1, len(ordered) // buckets)
        for start in range(0, len(ordered), size):
            chunk = ordered[start : start + size]
            low, high = chunk[0].sr_adv, chunk[-1].sr_adv
            rate = sum(1 for p in chunk if p.improved) / len(chunk)
            result.append((f"SR_adv {low:.2f}-{high:.2f}", rate))
        return result


def ratio_vs_sradv(
    suite_result: SuiteResult,
    base_config: str,
    pl_config: str,
    min_runtime: float = 1.0,
) -> RatioData:
    """Figure 4 data.

    As in the paper, cases where both runs finish below ``min_runtime``
    seconds or both time out are excluded (their ratio is noise).
    """
    data = RatioData(base_config=base_config, pl_config=pl_config)
    for case_name in suite_result.cases():
        base = suite_result.lookup(base_config, case_name)
        pl = suite_result.lookup(pl_config, case_name)
        if base is None or pl is None:
            continue
        both_fast = base.runtime < min_runtime and pl.runtime < min_runtime
        both_timeout = base.timed_out and pl.timed_out
        if both_fast or both_timeout:
            data.excluded_cases.append(case_name)
            continue
        sr_adv = pl.stats.sr_adv
        if sr_adv is None:
            data.excluded_cases.append(case_name)
            continue
        pl_time = max(pl.penalized_runtime, 1e-9)
        ratio = base.penalized_runtime / pl_time
        data.points.append(
            RatioPoint(
                case_name=case_name,
                sr_adv=sr_adv,
                ratio=ratio,
                improved=ratio > 1.0,
            )
        )
    return data
