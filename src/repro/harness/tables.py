"""Table generation (Table 1 and Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.result import CheckResult
from repro.harness.runner import SuiteResult


@dataclass
class Table:
    """A simple column-oriented table with text and CSV rendering."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, values: Sequence[object]) -> None:
        """Append one row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [self.columns] + [[_format_cell(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = [self.title, ""]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (comma separated, no quoting of commas needed here)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(_format_cell(v) for v in row))
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, key: object) -> Optional[List[object]]:
        """The first row whose first column equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        return None


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


# ----------------------------------------------------------------------
# Table 1: Summary of Results
# ----------------------------------------------------------------------
def summary_table(suite_result: SuiteResult) -> Table:
    """Solved / Safe / Unsafe counts per configuration (paper Table 1).

    Two extra columns not in the paper — total PAR-1 time and wrong
    results — make the reproduction easier to sanity-check.
    """
    table = Table(
        title="Table 1: Summary of Results",
        columns=["Configuration", "Solved", "Safe", "Unsafe", "Time(PAR1)", "Wrong"],
    )
    for config_name in suite_result.configs():
        results = suite_result.by_config(config_name)
        solved = [r for r in results if r.solved]
        safe = sum(1 for r in solved if r.result == CheckResult.SAFE)
        unsafe = sum(1 for r in solved if r.result == CheckResult.UNSAFE)
        total_time = sum(r.penalized_runtime for r in results)
        wrong = sum(1 for r in results if not r.correct)
        table.add_row([config_name, len(solved), safe, unsafe, total_time, wrong])
    return table


# ----------------------------------------------------------------------
# Table 2: Average Success Rates
# ----------------------------------------------------------------------
def success_rate_table(
    suite_result: SuiteResult, config_names: Optional[Sequence[str]] = None
) -> Table:
    """Average SR_lp / SR_fp / SR_adv per prediction-enabled configuration.

    As in the paper, the averages are taken over the cases for which the
    rate is defined (a case with no generalizations contributes nothing).
    """
    if config_names is None:
        config_names = [
            name
            for name in suite_result.configs()
            if any(r.stats.prediction_queries for r in suite_result.by_config(name))
        ]
    table = Table(
        title="Table 2: Average Success Rates",
        columns=["Configuration", "Avg SR_lp", "Avg SR_fp", "Avg SR_adv", "Cases"],
    )
    for config_name in config_names:
        results = suite_result.by_config(config_name)
        sr_lp = _average([r.stats.sr_lp for r in results])
        sr_fp = _average([r.stats.sr_fp for r in results])
        sr_adv = _average([r.stats.sr_adv for r in results])
        counted = sum(1 for r in results if r.stats.generalizations > 0)
        table.add_row(
            [
                config_name,
                _percent(sr_lp),
                _percent(sr_fp),
                _percent(sr_adv),
                counted,
            ]
        )
    return table


def _average(values: List[Optional[float]]) -> Optional[float]:
    defined = [v for v in values if v is not None]
    if not defined:
        return None
    return sum(defined) / len(defined)


def _percent(value: Optional[float]) -> Optional[str]:
    if value is None:
        return None
    return f"{100.0 * value:.2f}%"
