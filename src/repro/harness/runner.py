"""Benchmark runner: configurations × cases under a per-case time limit."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.benchgen.case import BenchmarkCase
from repro.core.ic3 import IC3
from repro.core.invariant import CertificateError, check_certificate, check_counterexample
from repro.core.result import CheckOutcome, CheckResult
from repro.core.stats import IC3Stats
from repro.harness.configs import EngineConfig


@dataclass
class CaseResult:
    """Outcome of one (configuration, case) run."""

    case_name: str
    config_name: str
    result: CheckResult
    runtime: float
    timeout: float
    expected: Optional[CheckResult] = None
    stats: IC3Stats = field(default_factory=IC3Stats)
    frames: int = 0
    validated: Optional[bool] = None
    """True/False when the certificate or trace was checked, None if skipped."""

    @property
    def solved(self) -> bool:
        """True if a definite verdict was produced within the time limit."""
        return self.result.solved

    @property
    def timed_out(self) -> bool:
        """True if the run hit the per-case time limit."""
        return not self.solved

    @property
    def correct(self) -> bool:
        """True if the verdict matches the ground truth (or was inconclusive)."""
        if not self.solved or self.expected is None:
            return True
        return self.result == self.expected

    @property
    def penalized_runtime(self) -> float:
        """Runtime with timeouts replaced by the time limit (PAR-1)."""
        return self.runtime if self.solved else self.timeout


@dataclass
class SuiteResult:
    """All per-case results of one harness run."""

    results: List[CaseResult] = field(default_factory=list)
    timeout: float = 0.0

    def add(self, result: CaseResult) -> None:
        """Append one case result."""
        self.results.append(result)

    def configs(self) -> List[str]:
        """Configuration names in first-seen order."""
        seen: List[str] = []
        for result in self.results:
            if result.config_name not in seen:
                seen.append(result.config_name)
        return seen

    def cases(self) -> List[str]:
        """Case names in first-seen order."""
        seen: List[str] = []
        for result in self.results:
            if result.case_name not in seen:
                seen.append(result.case_name)
        return seen

    def by_config(self, config_name: str) -> List[CaseResult]:
        """All results of one configuration."""
        return [r for r in self.results if r.config_name == config_name]

    def by_case(self, case_name: str) -> Dict[str, CaseResult]:
        """Results of one case keyed by configuration name."""
        return {r.config_name: r for r in self.results if r.case_name == case_name}

    def lookup(self, config_name: str, case_name: str) -> Optional[CaseResult]:
        """The result of one (configuration, case) pair, if present."""
        for result in self.results:
            if result.config_name == config_name and result.case_name == case_name:
                return result
        return None

    def solved_count(self, config_name: str) -> int:
        """Number of cases the configuration solved."""
        return sum(1 for r in self.by_config(config_name) if r.solved)

    def incorrect_results(self) -> List[CaseResult]:
        """Results contradicting the ground truth (should be empty)."""
        return [r for r in self.results if not r.correct]


class BenchmarkRunner:
    """Runs every configuration on every case of a suite."""

    def __init__(
        self,
        cases: Sequence[BenchmarkCase],
        configs: Sequence[EngineConfig],
        timeout: float = 5.0,
        validate: bool = False,
        verbose: bool = False,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.cases = list(cases)
        self.configs = list(configs)
        self.timeout = timeout
        self.validate = validate
        self.verbose = verbose

    def run(self) -> SuiteResult:
        """Execute the full cross product and return the collected results."""
        suite_result = SuiteResult(timeout=self.timeout)
        for case in self.cases:
            for config in self.configs:
                suite_result.add(self.run_one(case, config))
        return suite_result

    def run_one(self, case: BenchmarkCase, config: EngineConfig) -> CaseResult:
        """Run a single configuration on a single case."""
        engine = IC3(case.aig, config.options)
        start = time.perf_counter()
        outcome = engine.check(time_limit=self.timeout)
        runtime = time.perf_counter() - start

        validated = self._validate(case, outcome) if self.validate else None
        result = CaseResult(
            case_name=case.name,
            config_name=config.name,
            result=outcome.result,
            runtime=runtime,
            timeout=self.timeout,
            expected=case.expected,
            stats=outcome.stats,
            frames=outcome.frames,
            validated=validated,
        )
        if self.verbose:
            flag = "" if result.correct else "  << WRONG"
            print(
                f"[harness] {config.name:14s} {case.name:30s} "
                f"{outcome.result.value:8s} {runtime:7.2f}s{flag}"
            )
        return result

    @staticmethod
    def _validate(case: BenchmarkCase, outcome: CheckOutcome) -> Optional[bool]:
        try:
            if outcome.result == CheckResult.SAFE and outcome.certificate is not None:
                return check_certificate(case.aig, outcome.certificate)
            if outcome.result == CheckResult.UNSAFE and outcome.trace is not None:
                return check_counterexample(case.aig, outcome.trace)
        except CertificateError:
            return False
        return None
