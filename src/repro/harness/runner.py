"""Benchmark runner: configurations × cases on a hard-timeout process pool.

Every (configuration, case) pair runs in its own killable worker process
(see :mod:`repro.harness.pool`), so a per-case budget is enforced even
when an engine is stuck inside a single SAT call, and ``jobs > 1`` runs
pairs in parallel on separate cores.  Results are always assembled in the
deterministic case-major, configuration-minor task order — tables and
figures come out byte-for-byte identical regardless of how the scheduler
interleaves completions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchgen.case import BenchmarkCase
from repro.core.invariant import CertificateError, check_certificate, check_counterexample
from repro.core.result import CheckOutcome, CheckResult
from repro.core.stats import IC3Stats
from repro.engines.registry import create_engine
from repro.harness.configs import EngineConfig
from repro.harness.pool import PoolResult, map_with_hard_timeout
from repro.obs.heartbeat import get_heartbeat
from repro.obs.tracer import get_tracer


@dataclass
class CaseResult:
    """Outcome of one (configuration, case) run."""

    case_name: str
    config_name: str
    result: CheckResult
    runtime: float
    timeout: float
    expected: Optional[CheckResult] = None
    stats: IC3Stats = field(default_factory=IC3Stats)
    frames: int = 0
    validated: Optional[bool] = None
    """True/False when the certificate or trace was checked, None if skipped."""

    engine: str = ""
    """Engine kind that produced the verdict (winner name for portfolios)."""

    winner: Optional[str] = None
    """For portfolio configurations: the member engine that won the race."""

    reduction: Optional[Dict[str, object]] = None
    """Original-vs-reduced model sizes (``ReductionResult.summary()``),
    None when the engine ran without reduction preprocessing."""

    properties: Optional[List[Dict[str, object]]] = None
    """For multi-property scheduler configurations: one verdict record per
    property of the case's model (manifest schema v4), None otherwise."""

    transformation: Optional[Dict[str, object]] = None
    """Liveness-transformation summary (l2s/k-liveness compiler stats),
    None for plain safety runs."""

    sharing: Optional[Dict[str, object]] = None
    """Cooperative-portfolio lemma-bus accounting (manifest schema v8),
    None when the run did not share lemmas."""

    error: Optional[str] = None
    """Worker failure description (crash or hard kill), None on clean runs."""

    @property
    def solved(self) -> bool:
        """True if a definite verdict was produced within the time limit."""
        return self.result.solved

    @property
    def timed_out(self) -> bool:
        """True if the run hit the per-case time limit."""
        return not self.solved

    @property
    def correct(self) -> bool:
        """True if the verdict matches the ground truth (or was inconclusive)."""
        if not self.solved or self.expected is None:
            return True
        return self.result == self.expected

    @property
    def penalized_runtime(self) -> float:
        """Runtime with timeouts replaced by the time limit (PAR-1)."""
        return self.runtime if self.solved else self.timeout


@dataclass
class SuiteResult:
    """All per-case results of one harness run.

    Lookups are backed by indexes maintained incrementally on
    :meth:`add`, so :meth:`lookup`, :meth:`by_case` and :meth:`by_config`
    are O(1) instead of scanning the whole result list on every call.
    Appending to ``results`` directly also works (the indexes are rebuilt
    lazily when the list length changes); same-length in-place mutation
    of ``results`` is not supported.
    """

    results: List[CaseResult] = field(default_factory=list)
    timeout: float = 0.0

    def __post_init__(self) -> None:
        self._rebuild_index()

    # -- index maintenance ---------------------------------------------
    def _rebuild_index(self) -> None:
        self._pair_index: Dict[Tuple[str, str], CaseResult] = {}
        self._config_index: Dict[str, List[CaseResult]] = {}
        self._case_index: Dict[str, Dict[str, CaseResult]] = {}
        for result in self.results:
            self._index_one(result)
        self._indexed_count = len(self.results)

    def _index_one(self, result: CaseResult) -> None:
        self._pair_index.setdefault((result.config_name, result.case_name), result)
        self._config_index.setdefault(result.config_name, []).append(result)
        self._case_index.setdefault(result.case_name, {})[result.config_name] = result

    def _ensure_index(self) -> None:
        if self._indexed_count != len(self.results):
            self._rebuild_index()

    # -- accessors ------------------------------------------------------
    def add(self, result: CaseResult) -> None:
        """Append one case result (keeps the lookup indexes current)."""
        self._ensure_index()
        self.results.append(result)
        self._index_one(result)
        self._indexed_count += 1

    def configs(self) -> List[str]:
        """Configuration names in first-seen order."""
        self._ensure_index()
        return list(self._config_index)

    def cases(self) -> List[str]:
        """Case names in first-seen order."""
        self._ensure_index()
        return list(self._case_index)

    def by_config(self, config_name: str) -> List[CaseResult]:
        """All results of one configuration."""
        self._ensure_index()
        return list(self._config_index.get(config_name, ()))

    def by_case(self, case_name: str) -> Dict[str, CaseResult]:
        """Results of one case keyed by configuration name."""
        self._ensure_index()
        return dict(self._case_index.get(case_name, {}))

    def lookup(self, config_name: str, case_name: str) -> Optional[CaseResult]:
        """The result of one (configuration, case) pair, if present."""
        self._ensure_index()
        return self._pair_index.get((config_name, case_name))

    def solved_count(self, config_name: str) -> int:
        """Number of cases the configuration solved."""
        return sum(1 for r in self.by_config(config_name) if r.solved)

    def incorrect_results(self) -> List[CaseResult]:
        """Results contradicting the ground truth (should be empty)."""
        return [r for r in self.results if not r.correct]


@dataclass
class _TaskSpec:
    """One (case, configuration) work item shipped to a pool worker."""

    case: BenchmarkCase
    config: EngineConfig
    timeout: float
    validate: bool
    reduce: bool = True


def _execute_case(spec: _TaskSpec) -> CaseResult:
    """Worker body: run one engine configuration on one case (in-process).

    Engine construction — which includes the reduction preprocessing
    pipeline — happens *inside* the timed region and is charged against
    the per-case budget, so reduced and unreduced runs are compared
    fairly and the cooperative budget stays consistent with the pool's
    hard deadline.
    """
    engine_kwargs = dict(spec.config.engine_kwargs)
    engine_kwargs.setdefault("reduce", spec.reduce)
    tracer = get_tracer()
    hb = get_heartbeat()
    if hb.enabled:
        hb.reset(case=spec.case.name, config=spec.config.name)
    start = time.perf_counter()
    if tracer.enabled:
        with tracer.span(
            "harness.case",
            cat="harness",
            case=spec.case.name,
            config=spec.config.name,
        ) as span:
            engine = create_engine(
                spec.config.engine, spec.case.aig, options=spec.config.options,
                **engine_kwargs,
            )
            remaining = max(0.0, spec.timeout - (time.perf_counter() - start))
            outcome = engine.check(time_limit=remaining)
            span.add(result=outcome.result.value)
    else:
        engine = create_engine(
            spec.config.engine, spec.case.aig, options=spec.config.options,
            **engine_kwargs,
        )
        remaining = max(0.0, spec.timeout - (time.perf_counter() - start))
        outcome = engine.check(time_limit=remaining)
    runtime = time.perf_counter() - start
    validated = _validate(spec.case, outcome) if spec.validate else None
    return CaseResult(
        case_name=spec.case.name,
        config_name=spec.config.name,
        result=outcome.result,
        runtime=runtime,
        timeout=spec.timeout,
        expected=spec.case.expected,
        stats=outcome.stats,
        frames=outcome.frames,
        validated=validated,
        engine=outcome.winner or outcome.engine,
        winner=outcome.winner,
        reduction=outcome.reduction,
        properties=outcome.properties,
        transformation=outcome.transformation,
        sharing=outcome.sharing,
    )


def _validate(case: BenchmarkCase, outcome: CheckOutcome) -> Optional[bool]:
    try:
        if outcome.result == CheckResult.UNSAFE and outcome.lasso is not None:
            from repro.props.witness import check_lasso

            return check_lasso(case.aig, outcome.lasso)
        if (
            outcome.result == CheckResult.SAFE
            and outcome.certificate is not None
            and outcome.transformation is not None
        ):
            from repro.props.witness import check_liveness_certificate

            transformation = outcome.transformation
            return check_liveness_certificate(
                case.aig,
                outcome.certificate,
                justice_index=int(transformation.get("justice_index", 0)),
                method=str(transformation.get("kind", "l2s")),
                max_k=int(transformation.get("max_k", 16)),
                k=int(transformation.get("k", 0)),
            )
        if outcome.result == CheckResult.SAFE and outcome.certificate is not None:
            return check_certificate(case.aig, outcome.certificate)
        if outcome.result == CheckResult.UNSAFE and outcome.trace is not None:
            return check_counterexample(case.aig, outcome.trace)
    except CertificateError:
        return False
    return None


class BenchmarkRunner:
    """Runs every configuration on every case of a suite.

    ``jobs`` controls how many (configuration, case) pairs run
    concurrently (``None``/``0`` = one per CPU); each pair runs in its
    own worker process whose per-case ``timeout`` is enforced with a
    hard kill ``grace`` seconds past the budget.
    """

    def __init__(
        self,
        cases: Sequence[BenchmarkCase],
        configs: Sequence[EngineConfig],
        timeout: float = 5.0,
        validate: bool = False,
        verbose: bool = False,
        jobs: int = 1,
        grace: Optional[float] = None,
        reduce: bool = True,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.cases = list(cases)
        self.configs = list(configs)
        self.timeout = timeout
        self.validate = validate
        self.verbose = verbose
        self.jobs = jobs
        self.grace = grace
        self.reduce = reduce

    def run(self) -> SuiteResult:
        """Execute the full cross product and return the collected results.

        The result list is always in case-major, configuration-minor
        order, independent of worker completion order.
        """
        specs = [
            _TaskSpec(
                case=case,
                config=config,
                timeout=self.timeout,
                validate=self.validate,
                reduce=self.reduce,
            )
            for case in self.cases
            for config in self.configs
        ]

        def _progress(index: int, pool_result: PoolResult) -> None:
            if self.verbose:
                self._report(self._to_case_result(specs[index], pool_result))

        pool_results = map_with_hard_timeout(
            _execute_case,
            specs,
            timeout=self.timeout,
            jobs=self.jobs,
            grace=self.grace,
            on_result=_progress,
        )

        suite_result = SuiteResult(timeout=self.timeout)
        for spec, pool_result in zip(specs, pool_results):
            suite_result.add(self._to_case_result(spec, pool_result))
        return suite_result

    def run_one(self, case: BenchmarkCase, config: EngineConfig) -> CaseResult:
        """Run a single configuration on a single case in this process.

        Unlike :meth:`run` this enforces the timeout only cooperatively;
        it exists for interactive use and backward compatibility.
        """
        result = _execute_case(
            _TaskSpec(
                case=case,
                config=config,
                timeout=self.timeout,
                validate=self.validate,
                reduce=self.reduce,
            )
        )
        if self.verbose:
            self._report(result)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _to_case_result(spec: _TaskSpec, pool_result: PoolResult) -> CaseResult:
        if pool_result.ok:
            return pool_result.value
        if pool_result.timed_out:
            error = None
        else:
            error = pool_result.error
        return CaseResult(
            case_name=spec.case.name,
            config_name=spec.config.name,
            result=CheckResult.UNKNOWN,
            runtime=pool_result.elapsed,
            timeout=spec.timeout,
            expected=spec.case.expected,
            engine=spec.config.engine,
            error=error,
        )

    @staticmethod
    def _report(result: CaseResult) -> None:
        flag = "" if result.correct else "  << WRONG"
        if result.error:
            flag = f"  << ERROR: {result.error}"
        print(
            f"[harness] {result.config_name:14s} {result.case_name:30s} "
            f"{result.result.value:8s} {result.runtime:7.2f}s{flag}"
        )
