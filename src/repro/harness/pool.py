"""A small process pool with *hard* per-task timeouts.

``concurrent.futures.ProcessPoolExecutor`` cannot kill a worker that is
stuck inside a single long SAT call — a cancelled future only prevents a
task from starting.  The benchmark harness needs the opposite guarantee:
a case whose budget is ``t`` seconds must terminate within roughly ``t``
plus a short grace period even if the engine never polls its cooperative
deadline.  This module therefore runs **one forked process per task**,
bounded to ``jobs`` concurrent workers, and enforces deadlines from the
parent with process-group kills (so nested children, e.g. portfolio
members, die with their worker).

Results come back over a pipe in completion order and are re-assembled in
task order, which makes downstream tables deterministic regardless of
scheduling.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.heartbeat import (
    HEARTBEAT_DIR_ENV,
    HeartbeatMonitor,
    maybe_install_worker_heartbeat,
    shutdown_worker_heartbeat,
)
from repro.obs.metrics import HARNESS_TASKS, STALLS
from repro.obs.tracer import (
    get_tracer,
    maybe_install_worker_tracer,
    shutdown_worker_tracer,
)

_POLL_INTERVAL = 0.05
_STALL_CHECK_INTERVAL = 0.5


@dataclass
class PoolResult:
    """Outcome of one pooled task."""

    value: Any = None
    elapsed: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True if the worker returned a value (no kill, no exception)."""
        return not self.timed_out and self.error is None


def default_grace(timeout: float) -> float:
    """Extra seconds granted past the cooperative budget before a hard kill.

    Half the budget, clamped to [0.2 s, 5 s]: tight enough that a stuck
    worker dies within ~1.5x its budget, loose enough that an engine
    finishing a final SAT call just past the deadline still reports its
    own UNKNOWN instead of being killed mid-result.
    """
    return min(5.0, max(0.2, 0.5 * timeout))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request (None or <=0 means one per CPU)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _worker_shim(conn, worker, payload):
    """Subprocess body: isolate a process group, run the task, ship the result."""
    try:
        os.setpgid(0, 0)
    except OSError:  # pragma: no cover - already a group leader
        pass
    maybe_install_worker_tracer("harness")
    maybe_install_worker_heartbeat("harness")
    try:
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("harness.task", cat="harness"):
                value = worker(payload)
        else:
            value = worker(payload)
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 - report, never hang the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        shutdown_worker_heartbeat()
        shutdown_worker_tracer()
        conn.close()


def _kill_hard(proc) -> None:
    """SIGKILL a worker and its entire process group."""
    if proc.pid is not None:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass
    if proc.is_alive():
        proc.kill()
    proc.join(timeout=1.0)


def map_with_hard_timeout(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    timeout: float,
    jobs: Optional[int] = 1,
    grace: Optional[float] = None,
    on_result: Optional[Callable[[int, PoolResult], None]] = None,
) -> List[PoolResult]:
    """Run ``worker(payload)`` for every payload under a hard per-task budget.

    At most ``jobs`` workers run concurrently; each gets its own process
    and is killed (with its process group) ``grace`` seconds after
    ``timeout``.  ``on_result`` is invoked in *completion* order as
    results arrive; the returned list is in *task* order.
    """
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    jobs = resolve_jobs(jobs)
    if grace is None:
        grace = default_grace(timeout)

    ctx = multiprocessing.get_context()
    results: List[Optional[PoolResult]] = [None] * len(payloads)
    pending = list(enumerate(payloads))
    running: Dict[object, tuple] = {}  # conn -> (index, proc, start, kill_at)

    # When a heartbeat session is active the parent also *watches* the
    # records: a worker whose publisher goes silent well before its hard
    # deadline is counted as a stall (the deadline still does the
    # killing — the harness has one, unlike a hung interactive run).
    heartbeat_dir = os.environ.get(HEARTBEAT_DIR_ENV)
    monitor = HeartbeatMonitor(heartbeat_dir) if heartbeat_dir else None
    stall_limit = max(1.0, 0.5 * timeout)
    stalled: set = set()
    next_stall_check = time.perf_counter() + _STALL_CHECK_INTERVAL

    def _check_stalls() -> None:
        nonlocal next_stall_check
        now = time.perf_counter()
        if monitor is None or now < next_stall_check:
            return
        next_stall_check = now + _STALL_CHECK_INTERVAL
        for index, proc, start, _kill_at in running.values():
            if index in stalled or now - start <= stall_limit:
                continue
            record = monitor.latest_for(proc.pid)
            age = monitor.age(record) if record is not None else now - start
            if age <= stall_limit:
                continue
            stalled.add(index)
            STALLS.inc(pool="harness")
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "harness.stall", cat="harness", task=index, age=round(age, 2)
                )

    def _record(index: int, result: PoolResult) -> None:
        results[index] = result
        if result.timed_out:
            HARNESS_TASKS.inc(status="timeout")
        elif result.error is not None:
            HARNESS_TASKS.inc(status="error")
        else:
            HARNESS_TASKS.inc(status="ok")
        if on_result is not None:
            on_result(index, result)

    try:
        while pending or running:
            while pending and len(running) < jobs:
                index, payload = pending.pop(0)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_shim,
                    args=(child_conn, worker, payload),
                    name=f"harness-worker-{index}",
                )
                proc.start()
                child_conn.close()
                start = time.perf_counter()
                running[parent_conn] = (index, proc, start, start + timeout + grace)

            ready = multiprocessing.connection.wait(
                list(running), timeout=_POLL_INTERVAL
            )
            for conn in ready:
                index, proc, start, _ = running.pop(conn)
                elapsed = time.perf_counter() - start
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    kind, payload = "error", "worker died without reporting"
                finally:
                    conn.close()
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    _kill_hard(proc)
                if kind == "ok":
                    _record(index, PoolResult(value=payload, elapsed=elapsed))
                else:
                    _record(
                        index, PoolResult(elapsed=elapsed, error=str(payload))
                    )

            _check_stalls()
            now = time.perf_counter()
            overdue = [conn for conn, task in running.items() if now > task[3]]
            for conn in overdue:
                index, proc, start, _ = running.pop(conn)
                _kill_hard(proc)
                conn.close()
                _record(
                    index,
                    PoolResult(elapsed=time.perf_counter() - start, timed_out=True),
                )
    finally:
        for conn, (index, proc, start, _) in running.items():
            _kill_hard(proc)
            conn.close()
            if results[index] is None:
                results[index] = PoolResult(
                    elapsed=time.perf_counter() - start, timed_out=True
                )

    return [result if result is not None else PoolResult(timed_out=True) for result in results]
