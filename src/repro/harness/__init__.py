"""Evaluation harness reproducing the paper's tables and figures.

The harness runs a set of engine configurations (the stand-ins for RIC3,
RIC3-pl, IC3ref, IC3ref-pl, IC3ref-CAV23 and ABC-PDR) over a benchmark
suite under a per-case time limit, collects per-case runtimes and
prediction statistics, and derives:

* Table 1 — solved / safe / unsafe counts per configuration;
* Table 2 — average success rates SR_lp, SR_fp, SR_adv;
* Figure 2 — cactus data (cases solved within a time limit);
* Figure 3 — scatter data (runtime with vs. without prediction);
* Figure 4 — runtime ratio vs. SR_adv with the cumulative improved count.

Execution is process-parallel: every (configuration, case) pair runs in
its own killable worker (:mod:`repro.harness.pool`) so per-case budgets
are enforced hard, ``jobs=N`` spreads pairs over N cores, and results are
assembled in deterministic order.  :mod:`repro.harness.manifest` records
machine-readable JSON manifests of evaluation runs.
"""

from repro.harness.configs import EngineConfig, paper_configurations, prediction_pairs
from repro.harness.runner import BenchmarkRunner, CaseResult, SuiteResult
from repro.harness.pool import PoolResult, map_with_hard_timeout
from repro.harness.manifest import build_manifest, write_manifest
from repro.harness.tables import summary_table, success_rate_table, Table
from repro.harness.figures import cactus_data, scatter_data, ratio_vs_sradv
from repro.harness.report import PaperReport, run_paper_evaluation

__all__ = [
    "EngineConfig",
    "paper_configurations",
    "prediction_pairs",
    "BenchmarkRunner",
    "CaseResult",
    "SuiteResult",
    "PoolResult",
    "map_with_hard_timeout",
    "build_manifest",
    "write_manifest",
    "Table",
    "summary_table",
    "success_rate_table",
    "cactus_data",
    "scatter_data",
    "ratio_vs_sradv",
    "PaperReport",
    "run_paper_evaluation",
]
