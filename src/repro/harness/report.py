"""End-to-end paper evaluation and text reporting.

:func:`run_paper_evaluation` is the one-call entry point used by the
examples and by ``repro-check evaluate``: it runs the six configurations
over a suite and packages Table 1, Table 2 and the data behind Figures
2-4 into a :class:`PaperReport`, whose :meth:`PaperReport.to_text` output
is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.benchgen.case import BenchmarkCase
from repro.benchgen.suite import default_suite
from repro.harness.configs import (
    EngineConfig,
    apply_frame_backend,
    apply_sat_backend,
    apply_seed,
    paper_configurations,
    prediction_pairs,
)
from repro.harness.figures import (
    RatioData,
    ScatterData,
    cactus_data,
    ratio_vs_sradv,
    scatter_data,
)
from repro.harness.runner import BenchmarkRunner, SuiteResult
from repro.harness.tables import Table, success_rate_table, summary_table


@dataclass
class PaperReport:
    """All reproduced tables and figure data of one evaluation run."""

    suite_result: SuiteResult
    table1: Table
    table2: Table
    cactus: Dict[str, object]
    scatters: List[ScatterData] = field(default_factory=list)
    ratios: List[RatioData] = field(default_factory=list)
    timeout: float = 0.0
    num_cases: int = 0

    def to_text(self) -> str:
        """Render the whole report as plain text."""
        lines: List[str] = []
        lines.append(
            f"Paper evaluation: {self.num_cases} cases, "
            f"per-case timeout {self.timeout:.1f}s"
        )
        lines.append("")
        lines.append(self.table1.to_text())
        lines.append("")
        lines.append(self.table2.to_text())
        lines.append("")

        lines.append("Figure 2: cases solved within a time limit (cactus)")
        limits = _cactus_limits(self.timeout)
        header = "Configuration".ljust(16) + "".join(f"{l:>8.2f}s" for l in limits)
        lines.append(header)
        for name, series in self.cactus.items():
            row = name.ljust(16) + "".join(
                f"{series.solved_within(l):>9d}" for l in limits
            )
            lines.append(row)
        lines.append("")

        for scatter in self.scatters:
            lines.append(
                f"Figure 3 ({scatter.base_config} vs {scatter.pl_config}): "
                f"{scatter.below_diagonal_count} of {len(scatter.points)} cases "
                f"faster with prediction, {scatter.above_diagonal_count} slower; "
                f"solved only with prediction: {len(scatter.only_pl_solved())}, "
                f"solved only without: {len(scatter.only_base_solved())}"
            )
        lines.append("")

        for ratio in self.ratios:
            lines.append(
                f"Figure 4 ({ratio.base_config} vs {ratio.pl_config}): "
                f"{len(ratio.points)} cases after exclusions "
                f"({len(ratio.excluded_cases)} excluded)"
            )
            for bucket, rate in ratio.improvement_rate_by_bucket():
                lines.append(f"  {bucket}: {100.0 * rate:.0f}% of cases improved")
        return "\n".join(lines)


def run_paper_evaluation(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    configs: Optional[Sequence[EngineConfig]] = None,
    timeout: float = 5.0,
    validate: bool = False,
    verbose: bool = False,
    figure4_min_runtime: Optional[float] = None,
    jobs: int = 1,
    reduce: bool = True,
    frame_backend: Optional[str] = None,
    sat_backend: Optional[str] = None,
    seed: Optional[int] = None,
) -> PaperReport:
    """Run the full evaluation and return the assembled report.

    ``jobs`` parallelizes the (configuration, case) cross product over
    worker processes; the report is deterministic for any jobs value.
    ``reduce=False`` disables the reduction preprocessing pipeline.
    ``frame_backend`` overrides the frame-management substrate of every
    IC3-based configuration (``"monolithic"`` or ``"per-frame"``);
    ``sat_backend`` overrides the SAT kernel the same way (``"default"``
    or ``"arena"``); ``seed`` sets the kernels' RNG seed on every
    configuration (0/None keeps the deterministic unseeded order).
    """
    if cases is None:
        cases = default_suite()
    if configs is None:
        configs = paper_configurations()
    configs = apply_frame_backend(configs, frame_backend)
    configs = apply_sat_backend(configs, sat_backend)
    configs = apply_seed(configs, seed)

    runner = BenchmarkRunner(
        cases,
        configs,
        timeout=timeout,
        validate=validate,
        verbose=verbose,
        jobs=jobs,
        reduce=reduce,
    )
    suite_result = runner.run()
    return build_report(
        suite_result,
        timeout=timeout,
        num_cases=len(cases),
        figure4_min_runtime=figure4_min_runtime,
    )


def build_report(
    suite_result: SuiteResult,
    timeout: float,
    num_cases: Optional[int] = None,
    figure4_min_runtime: Optional[float] = None,
) -> PaperReport:
    """Assemble a :class:`PaperReport` from an existing suite result.

    ``figure4_min_runtime`` is the Figure 4 exclusion threshold ("both runs
    faster than this are ignored"); the paper uses 1 s of its 1000 s budget,
    so the default scales proportionally to the harness timeout (with a
    20 ms floor).
    """
    if figure4_min_runtime is None:
        figure4_min_runtime = max(0.02, timeout / 100.0)
    config_names = suite_result.configs()
    scatters = []
    ratios = []
    for base_name, pl_name in prediction_pairs():
        if base_name in config_names and pl_name in config_names:
            scatters.append(scatter_data(suite_result, base_name, pl_name))
            ratios.append(
                ratio_vs_sradv(
                    suite_result, base_name, pl_name, min_runtime=figure4_min_runtime
                )
            )
    return PaperReport(
        suite_result=suite_result,
        table1=summary_table(suite_result),
        table2=success_rate_table(suite_result),
        cactus=cactus_data(suite_result),
        scatters=scatters,
        ratios=ratios,
        timeout=timeout,
        num_cases=num_cases if num_cases is not None else len(suite_result.cases()),
    )


def _cactus_limits(timeout: float) -> List[float]:
    fractions = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
    return [round(timeout * f, 3) for f in fractions]
