"""The verification service: queue + budgets + cache + warm worker pool.

:class:`VerificationService` is the transport-independent core — the
asyncio HTTP server (:mod:`repro.serve.server`), the CLI client and the
tests all drive this object directly.  A submission flows through:

1. **tenant budget** — token bucket per ``X-Tenant``; an empty bucket
   rejects with 429 + ``Retry-After``;
2. **parse + digest** — the AAG text is parsed once in the parent and
   the structural digest computed; malformed models reject with 400;
3. **result cache** — digest × verdict-relevant options; a hit creates
   an already-``done`` job carrying the cached record with
   ``cache_hit: true`` — no queue slot, no worker, no solver query;
4. **bounded priority queue** — a full queue rejects with 503 +
   ``Retry-After`` (estimated from the drain rate); admitted jobs wait
   for a warm worker;
5. **warm worker pool** — hard per-job deadlines, crash/timeout
   recovery and recycling (see :mod:`repro.serve.workers`); results
   land back here, feed the cache and flip the job to ``done``.

Every mutation of the job table happens under one lock; the HTTP
handlers, the dispatcher thread and test threads can interleave freely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.aiger.aig import AigerError
from repro.aiger.parser import parse_aiger
from repro.engines import available_engines
from repro.serve.cache import ResultCache
from repro.serve.jobqueue import BudgetExceeded, JobQueue, QueueFull, TenantBudgets
from repro.serve.metrics import Metrics
from repro.serve.protocol import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobSpec,
    ProtocolError,
    cache_key,
    error_record,
    job_summary,
    new_job_id,
    options_from_document,
    parse_job_body,
    text_sha,
)
from repro.serve.workers import WarmWorkerPool


@dataclass
class Job:
    """Parent-side lifecycle record of one submission.

    Wall-clock ``*_at`` timestamps are for display; every duration (the
    ``waited`` queue latency) is computed from the parallel ``*_mono``
    monotonic stamps so a wall-clock step mid-job cannot skew it.
    """

    spec: JobSpec
    status: str = QUEUED
    cache_hit: bool = False
    submitted_at: float = field(default_factory=time.time)
    submitted_mono: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    started_mono: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    done_event: threading.Event = field(default_factory=threading.Event)

    def summary(self) -> Dict[str, Any]:
        waited_until = (
            self.started_mono if self.started_mono is not None else time.monotonic()
        )
        return job_summary(
            self.spec.job_id,
            self.status,
            tenant=self.spec.tenant,
            priority=self.spec.priority,
            cache_hit=self.cache_hit,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            waited=waited_until - self.submitted_mono,
            result=self.result,
            options=self.spec.options,
        )


class VerificationService:
    """Long-lived verification-as-a-service core (transport-agnostic)."""

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_depth: int = 16,
        max_jobs_per_worker: int = 32,
        default_timeout: float = 30.0,
        max_timeout: float = 300.0,
        cache_size: int = 256,
        tenant_rate: float = 5.0,
        tenant_burst: float = 20.0,
        max_jobs_kept: int = 1024,
        grace: Optional[float] = None,
        trace_dir: Optional[str] = None,
        heartbeats: bool = True,
        heartbeat_interval: float = 0.25,
        stall_timeout: Optional[float] = 10.0,
    ):
        import tempfile

        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        self.trace_dir = trace_dir
        self.metrics = Metrics()
        self.cache = ResultCache(max_entries=cache_size)
        self.budgets = TenantBudgets(rate=tenant_rate, burst=tenant_burst)
        self.queue = JobQueue(maxsize=queue_depth)
        self.heartbeat_dir: Optional[str] = (
            tempfile.mkdtemp(prefix="repro-serve-hb-") if heartbeats else None
        )
        self.pool = WarmWorkerPool(
            self.queue,
            self._on_result,
            size=workers,
            max_jobs_per_worker=max_jobs_per_worker,
            grace=grace,
            metrics=self.metrics,
            on_start=self._on_start,
            trace_dir=trace_dir,
            heartbeat_dir=self.heartbeat_dir,
            heartbeat_interval=heartbeat_interval,
            stall_timeout=stall_timeout if heartbeats else None,
        )
        self.max_jobs_kept = max_jobs_kept
        self._jobs: "Dict[str, Job]" = {}
        self._job_order: List[str] = []
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self.pool.start()
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        self.pool.stop()
        self._started = False
        for item in self.queue.drain():
            job_id, _payload = item
            self._finish_job(
                job_id, error_record("service shut down before the job started"), FAILED
            )
        if self.heartbeat_dir is not None:
            import shutil

            shutil.rmtree(self.heartbeat_dir, ignore_errors=True)
            self.heartbeat_dir = None

    # -- submission -----------------------------------------------------
    def submit_raw(
        self, body: bytes, *, tenant: str = "anonymous"
    ) -> Tuple[int, Dict[str, Any]]:
        """Full ``POST /jobs`` path from raw bytes; returns (status, payload)."""
        try:
            document = parse_job_body(body)
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        model = document.pop("model")
        priority = int(document.pop("priority", 0) or 0)
        try:
            options = options_from_document(
                document,
                default_timeout=self.default_timeout,
                max_timeout=self.max_timeout,
            )
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        return self.submit(model, options=options, tenant=tenant, priority=priority)

    def submit(
        self,
        model_text: str,
        *,
        options=None,
        tenant: str = "anonymous",
        priority: int = 0,
    ) -> Tuple[int, Dict[str, Any]]:
        """Admit one job; returns an HTTP-shaped ``(status, payload)`` pair.

        * 200 — served from the result cache (payload is the full job
          summary, ``cache_hit: true``);
        * 202 — queued (payload carries the job id to poll);
        * 400 — malformed model or options;
        * 429 — tenant over budget (payload carries ``retry_after``);
        * 503 — queue full (payload carries ``retry_after``).
        """
        from repro.serve.protocol import JobOptions

        if options is None:
            options = JobOptions(timeout=self.default_timeout)
        try:
            self.budgets.admit(tenant)
        except BudgetExceeded as exc:
            self.metrics.incr("budget_rejections")
            return 429, {
                "error": str(exc),
                "retry_after": max(1, int(exc.retry_after + 0.999)),
            }
        if options.engine not in available_engines(include_aliases=True):
            return 400, {
                "error": f"unknown engine {options.engine!r} "
                f"(available: {', '.join(available_engines(include_aliases=True))})"
            }
        try:
            aig = parse_aiger(model_text)
            aig.validate()
        except (AigerError, UnicodeEncodeError) as exc:
            return 400, {"error": f"invalid model: {exc}"}

        digest = aig.structural_digest()
        key = cache_key(digest, options)
        spec = JobSpec(
            job_id=new_job_id(digest),
            model_text=model_text,
            aig=aig,
            digest=digest,
            text_sha=text_sha(model_text),
            options=options,
            tenant=tenant,
            priority=priority,
        )
        self.metrics.incr("jobs_submitted")

        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.incr("cache_hits")
            job = Job(spec=spec, status=DONE, cache_hit=True, result=cached)
            job.started_at = job.finished_at = job.submitted_at
            job.started_mono = job.submitted_mono
            job.done_event.set()
            self._remember(job)
            return 200, job.summary()
        self.metrics.incr("cache_misses")

        job = Job(spec=spec)
        retry_after = self._retry_after_estimate()
        with self._lock:
            try:
                self.queue.put(
                    (spec.job_id, spec.payload()), priority, retry_after=retry_after
                )
            except QueueFull as exc:
                self.metrics.incr("queue_rejections")
                return 503, {
                    "error": str(exc),
                    "retry_after": max(1, int(exc.retry_after + 0.999)),
                }
            self._remember_locked(job)
        return 202, job.summary()

    def _retry_after_estimate(self) -> float:
        """Seconds until a queue slot likely frees up.

        Estimated from the *observed* drain rate: the mean solve latency
        so far (falling back to the default budget before the first job
        finishes) times the current backlog, spread across the pool.
        """
        avg = self.metrics.mean_solve_latency()
        if avg is None:
            avg = self.default_timeout
        backlog = len(self.queue) + self.pool.busy_workers
        return max(1.0, avg * max(1, backlog) / max(1, self.pool.size))

    # -- job table ------------------------------------------------------
    def _remember(self, job: Job) -> None:
        with self._lock:
            self._remember_locked(job)

    def _remember_locked(self, job: Job) -> None:
        self._jobs[job.spec.job_id] = job
        self._job_order.append(job.spec.job_id)
        while len(self._job_order) > self.max_jobs_kept:
            stale = self._job_order.pop(0)
            candidate = self._jobs.get(stale)
            if candidate is not None and candidate.status in (DONE, FAILED):
                del self._jobs[stale]
            else:  # pragma: no cover - active job outliving the window
                self._job_order.append(stale)
                break

    def get_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return job.summary() if job is not None else None

    def job_trace(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The recorded trace of one job as a Chrome trace document.

        Returns None when tracing is off, the job is unknown, or no
        events were recorded yet.  A job whose worker was SIGKILLed
        still answers here — from the incrementally flushed sink, or
        failing that the last flight-recorder snapshot.
        """
        if not self.trace_dir:
            return None
        with self._lock:
            if job_id not in self._jobs:
                return None
        import os

        from repro.obs.export import read_jsonl_events, to_chrome_document

        path = os.path.join(self.trace_dir, f"{job_id}.jsonl")
        if not os.path.exists(path):
            path = os.path.join(self.trace_dir, f"flight-{job_id}.jsonl")
        if not os.path.exists(path):
            return None
        events = read_jsonl_events(path)
        if not events:
            return None
        return to_chrome_document(events)

    def job_progress(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Live progress of one job from its worker's heartbeat.

        The document always carries the job's lifecycle status; while the
        job is running on a heartbeat-enabled pool it additionally carries
        the worker's pid/busy time and the latest heartbeat record (IC3
        frame, lemma/obligation totals, BMC bound, RSS/CPU, …) with its
        age in seconds.  Returns None for unknown jobs.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            progress: Dict[str, Any] = {
                "id": job_id,
                "status": job.status,
                "cache_hit": job.cache_hit,
            }
        worker = self.pool.worker_for_job(job_id)
        if worker is not None:
            progress["worker"] = worker
            record = self.pool.worker_heartbeat(worker["pid"])
            if record is not None:
                from repro.obs.heartbeat import HeartbeatMonitor

                heartbeat = dict(record.get("progress", {}))
                heartbeat["seq"] = record.get("seq")
                heartbeat["age_seconds"] = round(HeartbeatMonitor.age(record), 3)
                for key in ("rss_kb", "cpu_seconds"):
                    if record.get(key) is not None:
                        heartbeat[key] = record[key]
                progress["heartbeat"] = heartbeat
        return progress

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "id": job.spec.job_id,
                    "status": job.status,
                    "tenant": job.spec.tenant,
                    "cache_hit": job.cache_hit,
                }
                for job in self._jobs.values()
            ]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Block until a job finishes (tests and the CLI client use this)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        job.done_event.wait(timeout)
        return job.summary()

    # -- pool callbacks -------------------------------------------------
    def _on_start(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.status = RUNNING
                job.started_at = time.time()
                job.started_mono = time.monotonic()
                self.metrics.observe_queue_latency(
                    job.started_mono - job.submitted_mono
                )

    def _on_result(self, job_id: str, record: Dict[str, Any], kind: str) -> None:
        if kind == "timeout":
            # A hard kill is an answer, not a malfunction: the job is
            # done with verdict UNKNOWN, like a harness timeout.
            record = dict(record)
            record["error"] = None
            status = DONE
        elif record.get("error") is not None:
            status = FAILED
        else:
            status = DONE
        warm = record.pop("warm", None) if isinstance(record, dict) else None
        if warm and warm.get("reduction_reused"):
            self.metrics.incr("reduction_reuses")
        self._finish_job(job_id, record, status)

    def _finish_job(self, job_id: str, record: Dict[str, Any], status: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:  # pragma: no cover - result for an evicted job
                return
            job.status = status
            job.result = record
            job.finished_at = time.time()
            if job.started_at is None:
                job.started_at = job.finished_at
                job.started_mono = time.monotonic()
            spec = job.spec
        if status == DONE:
            self.metrics.incr("jobs_completed")
            self.cache.put(cache_key(spec.digest, spec.options), record)
        else:
            self.metrics.incr("jobs_failed")
        verdict = "error" if status == FAILED else str(record.get("result", "unknown"))
        self.metrics.observe_solve_latency(verdict, float(record.get("runtime", 0.0) or 0.0))
        job.done_event.set()

    # -- introspection --------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok" if (self._started and self.pool.alive) else "stopped",
            "workers": self.pool.size,
            "busy_workers": self.pool.busy_workers,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.maxsize,
            "jobs_tracked": len(self._jobs),
            "cache_entries": len(self.cache),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        data = self.metrics.snapshot()
        data.update(
            {
                "queue_depth": len(self.queue),
                "busy_workers": self.pool.busy_workers,
                "cache_entries": len(self.cache),
                "tenant_tokens": self.budgets.snapshot(),
            }
        )
        return data

    def metrics_prometheus(self) -> str:
        """The daemon's full Prometheus text exposition.

        Merges the service's private registry (counters, latency
        histograms, point-in-time gauges refreshed here) with the global
        process registry (engine/SAT/harness families) into one page.
        """
        from repro.obs.metrics import get_registry, merge_snapshots, render_prometheus

        registry = self.metrics.registry
        registry.gauge(
            "repro_serve_queue_depth", "Jobs currently waiting in the queue."
        ).set(len(self.queue))
        registry.gauge(
            "repro_serve_busy_workers", "Warm workers currently running a job."
        ).set(self.pool.busy_workers)
        registry.gauge(
            "repro_serve_cache_entries", "Entries in the structural-digest cache."
        ).set(len(self.cache))
        registry.gauge(
            "repro_serve_uptime_seconds", "Seconds since the service metrics started."
        ).set(time.monotonic() - self.metrics._started_monotonic)
        tokens = registry.gauge(
            "repro_serve_tenant_tokens",
            "Remaining token-bucket budget per tenant.",
            labels=("tenant",),
        )
        for tenant, value in sorted(self.budgets.snapshot().items()):
            tokens.set(float(value), tenant=str(tenant))
        merged = merge_snapshots([get_registry().snapshot(), registry.snapshot()])
        return render_prometheus(merged)
