"""Service metrics: monotonic counters plus computed gauges.

Every counter is declared up front so ``GET /metrics`` always exposes the
full set (zeros included) — scrapers never have to guess whether a
missing counter means "zero" or "renamed".  Counters are monotonic over
the life of the process; gauges (queue depth, busy workers, tenant
tokens) are sampled at scrape time by the service.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

COUNTERS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "cache_hits",
    "cache_misses",
    "queue_rejections",
    "budget_rejections",
    "worker_recycles",
    "worker_crashes",
    "worker_timeouts",
    "reduction_reuses",
)


class Metrics:
    """Thread-safe counter registry with a JSON-ready snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        # Monotonic for the uptime arithmetic (immune to wall-clock
        # steps); the wall timestamp is kept for display only.
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            if name not in self._counters:
                raise KeyError(f"undeclared metric {name!r}")
            self._counters[name] += amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def snapshot(self) -> Dict[str, object]:
        """All counters plus process uptime, JSON-serializable."""
        with self._lock:
            data: Dict[str, object] = dict(self._counters)
        data["uptime_seconds"] = round(time.monotonic() - self._started_monotonic, 3)
        data["started_at"] = round(self._started_wall, 3)
        return data
