"""Service metrics — a thin compatibility shim over :mod:`repro.obs.metrics`.

Historically this module kept its own lock-and-dict counter registry;
the daemon now has exactly one counter system, the unified
:class:`~repro.obs.metrics.MetricsRegistry`, and this class is only the
stable daemon-facing façade on top of it:

* the :data:`COUNTERS` names and the ``incr``/``get``/``snapshot`` API
  are unchanged, and :meth:`snapshot` still returns the flat
  ``{counter: value, uptime_seconds, started_at}`` document that
  ``GET /metrics.json`` and the CI serve smoke gate consume;
* each counter is backed by a ``repro_serve_<name>_total`` family in a
  *private* registry instance (services running side by side in one
  test process must not share counters), which is what renders as
  Prometheus text on ``GET /metrics``;
* the latency histograms — queue wait, and solve time per verdict —
  live in the same registry, and :meth:`mean_solve_latency` feeds the
  service's ``Retry-After`` drain-rate estimate.

Every counter is declared up front so both expositions always expose the
full set (zeros included) — scrapers never have to guess whether a
missing counter means "zero" or "renamed".
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry

COUNTERS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "cache_hits",
    "cache_misses",
    "queue_rejections",
    "budget_rejections",
    "worker_recycles",
    "worker_crashes",
    "worker_timeouts",
    "worker_stalls",
    "reduction_reuses",
)

_HELP = {
    "jobs_submitted": "Jobs admitted past the tenant budget check.",
    "jobs_completed": "Jobs finished with a verdict (including hard timeouts).",
    "jobs_failed": "Jobs finished with an error.",
    "cache_hits": "Submissions served from the structural-digest cache.",
    "cache_misses": "Submissions that had to be queued.",
    "queue_rejections": "Submissions rejected because the queue was full.",
    "budget_rejections": "Submissions rejected by a tenant token bucket.",
    "worker_recycles": "Warm workers replaced (any reason).",
    "worker_crashes": "Workers that died without reporting a result.",
    "worker_timeouts": "Workers killed at their hard deadline.",
    "worker_stalls": "Workers killed by the heartbeat stall watchdog.",
    "reduction_reuses": "Jobs served from a worker's warm reduction memo.",
}


class Metrics:
    """The daemon's counter/histogram façade over one private registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"repro_serve_{name}_total", _HELP.get(name, ""))
            for name in COUNTERS
        }
        self._queue_latency = self.registry.histogram(
            "repro_serve_queue_latency_seconds",
            "Seconds a job waited in the queue before a worker picked it up.",
        )
        self._solve_latency = self.registry.histogram(
            "repro_serve_solve_latency_seconds",
            "Worker-side solve time of finished jobs, by verdict.",
            labels=("verdict",),
        )
        # Monotonic for the uptime arithmetic (immune to wall-clock
        # steps); the wall timestamp is kept for display only.
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()

    # -- counters (legacy API, unchanged) ------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is None:
            raise KeyError(f"undeclared metric {name!r}")
        counter.inc(amount)

    def get(self, name: str) -> int:
        counter = self._counters.get(name)
        if counter is None:
            raise KeyError(f"undeclared metric {name!r}")
        return int(counter.value())

    # -- histograms ----------------------------------------------------
    def observe_queue_latency(self, seconds: float) -> None:
        self._queue_latency.observe(max(0.0, seconds))

    def observe_solve_latency(self, verdict: str, seconds: float) -> None:
        self._solve_latency.observe(max(0.0, seconds), verdict=str(verdict))

    def mean_solve_latency(self) -> Optional[float]:
        """Observed mean solve seconds across all verdicts (None before
        the first finished job) — the drain-rate input to Retry-After."""
        total = 0.0
        count = 0
        for state in self._solve_latency.collect().values():
            total += state[1]
            count += state[2]
        if count == 0:
            return None
        return total / count

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """All counters plus process uptime, JSON-serializable.

        The flat counter keys are a stable contract (CI smoke gate);
        the ``histograms`` block is additive.
        """
        data: Dict[str, object] = {
            name: int(counter.value()) for name, counter in self._counters.items()
        }
        data["uptime_seconds"] = round(time.monotonic() - self._started_monotonic, 3)
        data["started_at"] = round(self._started_wall, 3)
        histograms: Dict[str, object] = {}
        queue_state = self._queue_latency.collect().get(())
        if queue_state is not None:
            histograms["queue_latency_seconds"] = {
                "sum": queue_state[1],
                "count": queue_state[2],
            }
        solve: Dict[str, object] = {}
        for key, state in sorted(self._solve_latency.collect().items()):
            solve[key[0]] = {"sum": state[1], "count": state[2]}
        if solve:
            histograms["solve_latency_seconds"] = solve
        data["histograms"] = histograms
        return data
