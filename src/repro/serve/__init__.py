"""Verification-as-a-service: async job daemon over the engine stack.

The package layers, bottom to top:

* :mod:`repro.serve.protocol` — job options, cache keys, wire records;
* :mod:`repro.serve.jobqueue` — bounded priority queue + tenant token
  buckets (backpressure primitives);
* :mod:`repro.serve.cache` — structural-hash LRU result cache;
* :mod:`repro.serve.workers` — warm worker-process pool with hard
  deadlines, crash recovery and recycling;
* :mod:`repro.serve.service` — the transport-agnostic service core;
* :mod:`repro.serve.server` — the stdlib asyncio HTTP/JSON front end.

``repro-check serve`` starts the daemon; ``repro-check submit`` is a
matching client.  See the README "Serving" section for the API.
"""

from repro.serve.cache import ResultCache
from repro.serve.jobqueue import BudgetExceeded, JobQueue, QueueFull, TenantBudgets, TokenBucket
from repro.serve.metrics import COUNTERS, Metrics
from repro.serve.protocol import JobOptions, ProtocolError, cache_key, parse_job_body
from repro.serve.server import JobServer, run_server
from repro.serve.service import Job, VerificationService
from repro.serve.workers import WarmWorkerPool

__all__ = [
    "BudgetExceeded",
    "COUNTERS",
    "Job",
    "JobOptions",
    "JobQueue",
    "JobServer",
    "Metrics",
    "ProtocolError",
    "QueueFull",
    "ResultCache",
    "TenantBudgets",
    "TokenBucket",
    "VerificationService",
    "WarmWorkerPool",
    "cache_key",
    "parse_job_body",
    "run_server",
]
