"""Wire protocol of the verification service.

Defines the request/response shapes shared by the HTTP server, the worker
pool and the clients:

* :class:`JobOptions` — the engine-facing knobs of one submission.  The
  subset that can change a verdict (everything except the time budget)
  forms the :meth:`JobOptions.cache_fields`, which combine with the
  model's structural digest into the result-cache key;
* :class:`JobSpec` — one admitted job: id, tenant, priority, the parsed
  model plus its digests, and the options;
* :func:`outcome_to_record` — flattens a
  :class:`~repro.core.result.CheckOutcome` into the JSON result record a
  ``GET /jobs/{id}`` response carries.  The record is *manifest
  compatible*: it has the same ``result``/``runtime``/``frames``/
  ``engine``/``winner``/``stats``/``reduction``/``properties``/
  ``transformation``/``error`` fields as one ``results`` row of a
  ``repro-check/manifest/v7`` document, plus the serialized witness;
* :func:`parse_job_body` — decodes a ``POST /jobs`` body, which is
  either a raw AIGER document (``aag``/``aig`` magic) or a JSON object
  ``{"model": "<aag text>", "engine": ..., ...}``.

Job states: ``queued`` → ``running`` → ``done`` | ``failed``.
"""

from __future__ import annotations

import hashlib
import json
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.aiger.aig import AIG
from repro.core.result import CheckOutcome, CounterexampleTrace, LassoTrace

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class ProtocolError(Exception):
    """Malformed submission body or options (maps to HTTP 400)."""


@dataclass(frozen=True)
class JobOptions:
    """Engine configuration of one verification job."""

    engine: str = "ic3-pl"
    all_properties: bool = False
    property_index: Optional[int] = None
    timeout: Optional[float] = None
    max_depth: int = 50
    max_k: int = 20
    reduce: bool = True
    passes: Optional[Sequence[str]] = None
    frame_backend: Optional[str] = None
    sat_backend: Optional[str] = None

    def cache_fields(self) -> Dict[str, Any]:
        """The verdict-relevant fields (the time budget is excluded: only
        *solved* results are cached, and a SAFE/UNSAFE verdict reached
        under a shorter budget is just as valid under a longer one)."""
        return {
            "engine": self.engine,
            "all_properties": self.all_properties,
            "property_index": self.property_index,
            "max_depth": self.max_depth,
            "max_k": self.max_k,
            "reduce": self.reduce,
            "passes": list(self.passes) if self.passes is not None else None,
            "frame_backend": self.frame_backend,
            "sat_backend": self.sat_backend,
        }

    def as_dict(self) -> Dict[str, Any]:
        data = dict(self.cache_fields())
        data["timeout"] = self.timeout
        return data


def cache_key(digest: str, options: JobOptions) -> str:
    """Result-cache key: structural digest × canonical option encoding."""
    encoded = json.dumps(options.cache_fields(), sort_keys=True, separators=(",", ":"))
    return digest + ":" + hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobSpec:
    """One admitted verification job (parent-side bookkeeping)."""

    job_id: str
    model_text: str
    aig: AIG
    digest: str
    """Structural digest of the model (the cache key component)."""

    text_sha: str
    """Exact-source hash (worker-side reduction memo key: literal
    numbering must match for reconstruction maps to be reusable)."""

    options: JobOptions = field(default_factory=JobOptions)
    tenant: str = "anonymous"
    priority: int = 0

    def payload(self) -> Dict[str, Any]:
        """What is shipped to a worker process over the pipe."""
        return {
            "job_id": self.job_id,
            "aig": self.aig,
            "digest": self.digest,
            "text_sha": self.text_sha,
            "options": self.options,
        }


def new_job_id(digest: str) -> str:
    """Opaque but debuggable job id (digest prefix + random suffix)."""
    return f"job-{digest[:10]}-{uuid.uuid4().hex[:10]}"


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------
def _serialize_trace(trace: CounterexampleTrace) -> Dict[str, Any]:
    return {
        "kind": "trace",
        "depth": max(0, len(trace.steps) - 1),
        "steps": [
            {
                "state": list(step.state),
                "inputs": {str(lit): bool(value) for lit, value in step.inputs.items()},
            }
            for step in trace.steps
        ],
    }


def _serialize_lasso(lasso: LassoTrace) -> Dict[str, Any]:
    data = _serialize_trace(lasso)  # type: ignore[arg-type] - same step shape
    data.update(
        {
            "kind": "lasso",
            "loop_start": lasso.loop_start,
            "justice_index": lasso.justice_index,
        }
    )
    data.pop("depth", None)
    return data


def outcome_to_record(
    outcome: CheckOutcome, *, runtime: Optional[float] = None
) -> Dict[str, Any]:
    """Manifest-v6-compatible result record of one finished check."""
    witness: Optional[Dict[str, Any]] = None
    if outcome.lasso is not None:
        witness = _serialize_lasso(outcome.lasso)
    elif outcome.trace is not None:
        witness = _serialize_trace(outcome.trace)
    certificate = None
    if outcome.certificate is not None:
        certificate = {
            "clauses": len(outcome.certificate),
            "level": outcome.certificate.level,
        }
    return {
        "result": outcome.result.value,
        "runtime": round(outcome.runtime if runtime is None else runtime, 6),
        "frames": outcome.frames,
        "engine": outcome.engine,
        "winner": outcome.winner,
        "reason": outcome.reason,
        "stats": outcome.stats.as_dict(),
        "reduction": outcome.reduction,
        "properties": outcome.properties,
        "transformation": outcome.transformation,
        "witness": witness,
        "certificate": certificate,
        "error": None,
    }


def error_record(message: str, *, runtime: float = 0.0) -> Dict[str, Any]:
    """Result record of a crashed / killed / rejected job."""
    return {
        "result": "unknown",
        "runtime": round(runtime, 6),
        "frames": 0,
        "engine": None,
        "winner": None,
        "reason": message,
        "stats": {},
        "reduction": None,
        "properties": None,
        "transformation": None,
        "witness": None,
        "certificate": None,
        "error": message,
    }


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------
_OPTION_TYPES = {
    "engine": str,
    "all_properties": bool,
    "property_index": int,
    "timeout": (int, float),
    "max_depth": int,
    "max_k": int,
    "reduce": bool,
    "passes": list,
    "frame_backend": str,
    "sat_backend": str,
    "priority": int,
}


def parse_job_body(body: bytes) -> Dict[str, Any]:
    """Decode a ``POST /jobs`` body into ``{"model": str, **options}``.

    Raw AIGER documents (``aag``/``aig`` magic) are accepted as-is with
    default options; anything else must be a JSON object with a
    ``model`` field.  Raises :class:`ProtocolError` on malformed input.
    """
    if body.startswith(b"aag") or body.startswith(b"aig"):
        if body.startswith(b"aig"):
            # Binary AIGER survives neither JSON nor latin-1 round-trips
            # reliably; require base64 via the JSON envelope instead.
            raise ProtocolError(
                "binary AIGER bodies are not supported; submit the ASCII "
                "(aag) form or a JSON envelope"
            )
        try:
            return {"model": body.decode("ascii")}
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"model is not ASCII AIGER: {exc}") from None
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"body is neither AIGER nor valid JSON: {exc}") from None
    if not isinstance(document, dict) or "model" not in document:
        raise ProtocolError('JSON submissions need a "model" field with AAG text')
    if not isinstance(document["model"], str):
        raise ProtocolError('"model" must be a string of ASCII AIGER text')
    unknown = set(document) - set(_OPTION_TYPES) - {"model"}
    if unknown:
        raise ProtocolError(f"unknown submission fields: {', '.join(sorted(unknown))}")
    for name, types in _OPTION_TYPES.items():
        if name in document and document[name] is not None:
            value = document[name]
            if isinstance(value, bool) and types is not bool:
                raise ProtocolError(f"field {name!r} has the wrong type")
            if not isinstance(value, types):
                raise ProtocolError(f"field {name!r} has the wrong type")
    return document


def options_from_document(
    document: Dict[str, Any], *, default_timeout: float, max_timeout: float
) -> JobOptions:
    """Build validated :class:`JobOptions` from a parsed submission."""
    timeout = document.get("timeout")
    timeout = float(timeout) if timeout is not None else default_timeout
    if timeout <= 0:
        raise ProtocolError("timeout must be positive")
    passes = document.get("passes")
    return JobOptions(
        engine=document.get("engine", "ic3-pl"),
        all_properties=bool(document.get("all_properties", False)),
        property_index=document.get("property_index"),
        timeout=min(timeout, max_timeout),
        max_depth=int(document.get("max_depth", 50)),
        max_k=int(document.get("max_k", 20)),
        reduce=bool(document.get("reduce", True)),
        passes=list(passes) if passes is not None else None,
        frame_backend=document.get("frame_backend"),
        sat_backend=document.get("sat_backend"),
    )


def job_summary(
    job_id: str,
    status: str,
    *,
    tenant: str,
    priority: int,
    cache_hit: bool,
    submitted_at: float,
    started_at: Optional[float],
    finished_at: Optional[float],
    waited: float,
    result: Optional[Dict[str, Any]],
    options: JobOptions,
) -> Dict[str, Any]:
    """The ``GET /jobs/{id}`` response body.

    The ``*_at`` fields are wall-clock timestamps for display; ``waited``
    (queue latency) is computed by the caller from monotonic clocks so a
    wall-clock step (NTP, DST) can never produce a negative or inflated
    latency.
    """
    return {
        "id": job_id,
        "status": status,
        "tenant": tenant,
        "priority": priority,
        "cache_hit": cache_hit,
        "submitted_at": round(submitted_at, 6),
        "started_at": round(started_at, 6) if started_at is not None else None,
        "finished_at": round(finished_at, 6) if finished_at is not None else None,
        "waited": round(max(0.0, waited), 6),
        "options": options.as_dict(),
        "result": result,
    }


def text_sha(model_text: str) -> str:
    """Exact-source hash of a submission (worker reduction-memo key)."""
    return hashlib.sha256(model_text.encode("utf-8")).hexdigest()


__all__: List[str] = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "ProtocolError",
    "JobOptions",
    "JobSpec",
    "cache_key",
    "new_job_id",
    "outcome_to_record",
    "error_record",
    "parse_job_body",
    "options_from_document",
    "job_summary",
    "text_sha",
]
