"""Warm worker-process pool of the verification service.

The benchmark harness (:mod:`repro.harness.pool`) forks one process per
task because each task is disposable; a service cannot afford that — the
fork/import cost would dominate small jobs and nothing would ever stay
warm.  This pool keeps ``size`` long-lived worker processes, each running
a recv/execute/send loop, and reuses the harness pool's *hard-timeout
discipline*: every worker is its own process group, an overdue or crashed
worker is SIGKILLed group-wide (portfolio members die with it) and
replaced with a fresh process **without touching the queue** — jobs that
were still queued simply run on the replacement.

Warm state kept inside a worker between jobs:

* the interpreter, imports and engine registries (the dominant cost of
  the one-process-per-task model);
* a bounded memo of reduction-pipeline results keyed by the submission's
  *exact source hash* — resubmitting the same file with different engine
  options (the parent result cache keys on options too) skips the
  reduction pipeline entirely.  The memo key is deliberately the text
  hash, not the structural digest: reconstruction maps are tied to the
  original literal numbering, so only byte-identical models may share
  one.

Workers are recycled (gracefully stopped and respawned) after
``max_jobs_per_worker`` jobs, bounding memory growth from solver and
memo state, and on every crash or hard timeout.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.harness.pool import _kill_hard, default_grace
from repro.obs.heartbeat import (
    DEFAULT_INTERVAL,
    NULL_HEARTBEAT,
    Heartbeat,
    HeartbeatMonitor,
    heartbeat_path,
    install_heartbeat,
    uninstall_heartbeat,
)
from repro.obs.tracer import FLIGHT_PREFIX, JsonlSink, Tracer, get_tracer, install, uninstall
from repro.serve.jobqueue import JobQueue
from repro.serve.metrics import Metrics
from repro.serve.protocol import JobOptions, error_record, outcome_to_record

_POLL_INTERVAL = 0.05
_WARM_MEMO_LIMIT = 32

# Engine kinds whose reduction step the worker may hoist out of the
# engine (and memoize): plain safety engines with generic witness
# lift-back.  Liveness/scheduler kinds manage their own compilation
# pipelines and are constructed untouched.
_SAFETY_KINDS = {"ic3", "ic3-pl", "bmc", "kind", "k-induction", "portfolio"}


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
def _engine_kwargs(options: JobOptions) -> Dict[str, Any]:
    """Per-kind constructor keywords (mirrors the CLI's dispatch)."""
    kwargs: Dict[str, Any] = {}
    if options.frame_backend:
        kwargs["frame_backend"] = options.frame_backend
    if options.sat_backend:
        kwargs["sat_backend"] = options.sat_backend
    if options.engine == "bmc":
        kwargs["max_depth"] = options.max_depth
    elif options.engine in ("kind", "k-induction"):
        kwargs["max_k"] = options.max_k
    elif options.engine in ("klive", "k-liveness"):
        kwargs["max_k"] = options.max_k
    elif options.engine in ("l2s", "liveness-to-safety"):
        kwargs["max_depth"] = options.max_depth
    elif options.engine == "portfolio":
        kwargs["member_kwargs"] = {
            "bmc": {"max_depth": options.max_depth},
            "kind": {"max_k": options.max_k},
        }
    return kwargs


def _execute_job(payload: Dict[str, Any], warm: Dict[Any, Any]) -> Dict[str, Any]:
    """Run one verification job in-process and build its result record."""
    from repro.engines.adapters import finish_outcome
    from repro.engines.registry import create_engine
    from repro.reduce import reduce_aig

    aig = payload["aig"]
    options: JobOptions = payload["options"]
    start = time.perf_counter()
    reduction_reused = False
    try:
        if options.all_properties or options.property_index is not None:
            properties = (
                None if options.all_properties else [options.property_index]
            )
            engine = create_engine(
                "scheduler",
                aig,
                engine=(
                    options.engine
                    if options.engine in _SAFETY_KINDS
                    else "ic3-pl"
                ),
                properties=properties,
                reduce=options.reduce,
                passes=options.passes,
                max_k=options.max_k,
                max_depth=options.max_depth,
                frame_backend=options.frame_backend,
                sat_backend=options.sat_backend,
            )
            outcome = engine.check(time_limit=options.timeout)
        elif options.engine in _SAFETY_KINDS and options.reduce:
            # Hoist the reduction pipeline out of the engine so the warm
            # memo can serve it; the lift-back is identical to what the
            # adapters do internally.
            memo_key = (payload["text_sha"], tuple(options.passes or ()))
            reduction = warm.get(memo_key)
            if reduction is not None:
                reduction_reused = True
            else:
                reduction = reduce_aig(aig, passes=options.passes)
                if len(warm) >= _WARM_MEMO_LIMIT:
                    warm.pop(next(iter(warm)))
                warm[memo_key] = reduction
            engine = create_engine(
                options.engine,
                aig=reduction.aig,
                property_index=reduction.property_index,
                reduce=False,
                **_engine_kwargs(options),
            )
            outcome = engine.check(time_limit=options.timeout)
            outcome = finish_outcome(outcome, reduction)
        else:
            engine = create_engine(
                options.engine,
                aig,
                reduce=options.reduce,
                passes=options.passes,
                **_engine_kwargs(options),
            )
            outcome = engine.check(time_limit=options.timeout)
    except Exception as exc:  # noqa: BLE001 - job errors must not kill the worker
        return error_record(
            f"{type(exc).__name__}: {exc}", runtime=time.perf_counter() - start
        )
    record = outcome_to_record(outcome, runtime=time.perf_counter() - start)
    record["warm"] = {"reduction_reused": reduction_reused}
    return record


def _traced_execute(job_id: str, payload: Dict[str, Any], warm, trace_dir: str):
    """Run one job under a per-job tracer writing ``<trace_dir>/<job_id>.jsonl``.

    The sink flushes incrementally and a flight ring snapshots the tail,
    so ``GET /jobs/{id}/trace`` has something to serve even when the
    dispatcher SIGKILLs this worker mid-job.
    """
    tracer = None
    try:
        os.makedirs(trace_dir, exist_ok=True)
        tracer = install(
            Tracer(
                sink=JsonlSink(os.path.join(trace_dir, f"{job_id}.jsonl")),
                ring_capacity=512,
                flight_path=os.path.join(trace_dir, f"{FLIGHT_PREFIX}{job_id}.jsonl"),
            )
        )
    except OSError:  # pragma: no cover - unwritable trace dir
        return _execute_job(payload, warm)
    try:
        with tracer.span(
            "serve.job", cat="serve", job=job_id, engine=payload["options"].engine
        ):
            return _execute_job(payload, warm)
    finally:
        uninstall()
        tracer.close()


def _worker_main(
    conn,
    trace_dir: Optional[str] = None,
    heartbeat_dir: Optional[str] = None,
    heartbeat_interval: float = DEFAULT_INTERVAL,
) -> None:
    """Worker-process body: isolate a process group, then serve jobs.

    With a ``heartbeat_dir`` the worker installs a publishing
    :class:`~repro.obs.heartbeat.Heartbeat` (independent of tracing —
    the liveness channel works with tracing off) that the engines feed
    and the dispatcher's stall watchdog reads; fields are reset at job
    boundaries so a poll never sees a previous job's progress.
    """
    try:
        os.setpgid(0, 0)
    except OSError:  # pragma: no cover - already a group leader
        pass
    heartbeat = NULL_HEARTBEAT
    if heartbeat_dir:
        try:
            heartbeat = install_heartbeat(
                Heartbeat(
                    role="serve",
                    path=heartbeat_path(heartbeat_dir, "serve"),
                    interval=heartbeat_interval,
                )
            )
        except OSError:  # pragma: no cover - unwritable heartbeat dir
            heartbeat = NULL_HEARTBEAT
    warm: Dict[Any, Any] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            job_id, payload = message
            heartbeat.reset(
                state="running", job=job_id, engine=payload["options"].engine
            )
            if trace_dir:
                record = _traced_execute(job_id, payload, warm, trace_dir)
            else:
                record = _execute_job(payload, warm)
            heartbeat.reset(state="idle")
            try:
                conn.send((job_id, record))
            except (BrokenPipeError, OSError):
                break
    finally:
        uninstall_heartbeat()
        heartbeat.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """Parent-side state of one warm worker process."""

    def __init__(
        self,
        ctx,
        index: int,
        trace_dir: Optional[str] = None,
        heartbeat_dir: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_INTERVAL,
    ):
        self.index = index
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, trace_dir, heartbeat_dir, heartbeat_interval),
            name=f"serve-worker-{index}",
        )
        self.proc.start()
        child_conn.close()
        self.jobs_done = 0
        self.job_id: Optional[str] = None
        self.payload: Optional[Dict[str, Any]] = None
        self.deadline = 0.0
        self.started_at = 0.0

    @property
    def busy(self) -> bool:
        return self.job_id is not None

    def assign(self, job_id: str, payload: Dict[str, Any], grace: Optional[float]) -> None:
        timeout = payload["options"].timeout or 30.0
        self.job_id = job_id
        self.payload = payload
        self.started_at = time.perf_counter()
        self.deadline = self.started_at + timeout + (
            grace if grace is not None else default_grace(timeout)
        )
        self.conn.send((job_id, payload))

    def clear(self) -> None:
        self.job_id = None
        self.payload = None

    def stop(self, kill: bool = False) -> None:
        if not kill:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                kill = True
        if kill:
            _kill_hard(self.proc)
        else:
            self.proc.join(timeout=1.0)
            if self.proc.is_alive():
                _kill_hard(self.proc)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


class WarmWorkerPool:
    """Dispatches queued jobs onto warm workers with hard deadlines.

    ``on_result(job_id, record, kind)`` is invoked from the dispatcher
    thread for every finished job; ``kind`` is ``"ok"``, ``"crash"``,
    ``"timeout"`` or ``"stall"``.  ``on_start(job_id)`` (optional) fires
    when a job is handed to a worker.

    With a ``heartbeat_dir``, workers publish heartbeat records into it
    and the dispatcher runs a **stall watchdog**: a busy worker whose
    heartbeat record is older than ``stall_timeout`` seconds is killed
    and replaced *early* — before its hard deadline — because a silent
    publisher thread means the process is frozen (SIGSTOP), wedged
    outside the interpreter, or dead.  A worker that is merely slow
    keeps beating (the GIL preempts into the publisher thread even
    mid-SAT-call) and is never stalled.
    """

    def __init__(
        self,
        queue: JobQueue,
        on_result: Callable[[str, Dict[str, Any], str], None],
        *,
        size: int = 2,
        max_jobs_per_worker: int = 32,
        grace: Optional[float] = None,
        metrics: Optional[Metrics] = None,
        on_start: Optional[Callable[[str], None]] = None,
        trace_dir: Optional[str] = None,
        heartbeat_dir: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_INTERVAL,
        stall_timeout: Optional[float] = None,
    ):
        if size <= 0:
            raise ValueError("pool size must be positive")
        if max_jobs_per_worker <= 0:
            raise ValueError("max_jobs_per_worker must be positive")
        self.queue = queue
        self.on_result = on_result
        self.on_start = on_start
        self.size = size
        self.max_jobs_per_worker = max_jobs_per_worker
        self.grace = grace
        self.trace_dir = trace_dir
        self.heartbeat_dir = heartbeat_dir
        self.heartbeat_interval = heartbeat_interval
        self.stall_timeout = stall_timeout
        self._monitor = HeartbeatMonitor(heartbeat_dir) if heartbeat_dir else None
        self.metrics = metrics or Metrics()
        self._ctx = multiprocessing.get_context()
        self._workers: List[_WorkerHandle] = []
        self._next_index = 0
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("pool already started")
        for _ in range(self.size):
            self._workers.append(self._spawn())
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop dispatching and terminate every worker (queue untouched)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        for worker in self._workers:
            if worker.busy:
                _kill_hard(worker.proc)
                self.on_result(
                    worker.job_id,
                    error_record("service shut down while the job was running"),
                    "crash",
                )
                worker.clear()
                try:
                    worker.conn.close()
                except OSError:
                    pass
            else:
                worker.stop()
        self._workers.clear()

    def pause(self) -> None:
        """Stop handing out new jobs (running jobs continue)."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    # -- introspection --------------------------------------------------
    @property
    def busy_workers(self) -> int:
        with self._lock:
            return sum(1 for worker in self._workers if worker.busy)

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def worker_for_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Pid and busy time of the worker currently running ``job_id``."""
        with self._lock:
            for worker in self._workers:
                if worker.job_id == job_id:
                    return {
                        "pid": worker.proc.pid,
                        "busy_seconds": time.perf_counter() - worker.started_at,
                        "deadline_seconds": worker.deadline - time.perf_counter(),
                    }
        return None

    def worker_heartbeat(self, pid: int) -> Optional[Dict[str, Any]]:
        """The latest heartbeat record of one worker process (or None)."""
        if self._monitor is None:
            return None
        return self._monitor.latest_for(pid)

    # -- internals ------------------------------------------------------
    def _spawn(self) -> _WorkerHandle:
        handle = _WorkerHandle(
            self._ctx,
            self._next_index,
            self.trace_dir,
            self.heartbeat_dir,
            self.heartbeat_interval,
        )
        self._next_index += 1
        return handle

    def _replace(self, worker: _WorkerHandle, *, kill: bool) -> None:
        worker.stop(kill=kill)
        if self.heartbeat_dir and worker.proc.pid is not None:
            # Drop the dead worker's record so a recycled OS pid can
            # never inherit a stale heartbeat.
            try:
                os.remove(heartbeat_path(self.heartbeat_dir, "serve", worker.proc.pid))
            except OSError:
                pass
        with self._lock:
            position = self._workers.index(worker)
            self._workers[position] = self._spawn()
        self.metrics.incr("worker_recycles")

    def _finish(self, worker: _WorkerHandle, record: Dict[str, Any], kind: str) -> None:
        job_id = worker.job_id
        worker.clear()
        worker.jobs_done += 1
        if job_id is not None:
            self.on_result(job_id, record, kind)

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._assign_idle()
            busy = [worker for worker in self._workers if worker.busy]
            if busy:
                ready = multiprocessing.connection.wait(
                    [worker.conn for worker in busy], timeout=_POLL_INTERVAL
                )
                by_conn = {worker.conn: worker for worker in busy}
                for conn in ready:
                    self._collect(by_conn[conn])
                self._reap_overdue()
                self._reap_stalled()
            else:
                time.sleep(_POLL_INTERVAL)

    def _assign_idle(self) -> None:
        if self._paused.is_set():
            return
        for worker in self._workers:
            if worker.busy:
                continue
            item = self.queue.get(timeout=0)
            if item is None:
                return
            job_id, payload = item
            try:
                worker.assign(job_id, payload, self.grace)
            except (BrokenPipeError, OSError):
                # The worker died while idle; replace it and fail over.
                worker.clear()
                self._replace(worker, kill=True)
                self.metrics.incr("worker_crashes")
                try:
                    self.queue.put((job_id, payload), payload.get("priority", 0))
                except Exception:  # noqa: BLE001 - queue refilled meanwhile
                    self.on_result(job_id, error_record("worker pool unavailable"), "crash")
                continue
            if self.on_start is not None:
                self.on_start(job_id)

    def _collect(self, worker: _WorkerHandle) -> None:
        try:
            job_id, record = worker.conn.recv()
        except (EOFError, OSError):
            # Crashed mid-job (killed, segfault, ...): fail the job,
            # recycle the worker, leave the queue alone.
            elapsed = time.perf_counter() - worker.started_at
            self.metrics.incr("worker_crashes")
            self._finish(
                worker,
                error_record("worker died without reporting", runtime=elapsed),
                "crash",
            )
            self._replace(worker, kill=True)
            return
        if job_id != worker.job_id:  # pragma: no cover - protocol safety net
            record = error_record(f"worker answered for foreign job {job_id}")
        self._finish(worker, record, "ok")
        if worker.jobs_done >= self.max_jobs_per_worker:
            self._replace(worker, kill=False)

    def _reap_overdue(self) -> None:
        now = time.perf_counter()
        for worker in self._workers:
            if worker.busy and now > worker.deadline:
                elapsed = time.perf_counter() - worker.started_at
                self.metrics.incr("worker_timeouts")
                self._finish(
                    worker,
                    error_record("hard timeout: worker killed", runtime=elapsed),
                    "timeout",
                )
                self._replace(worker, kill=True)

    def _reap_stalled(self) -> None:
        """Early replacement of workers whose heartbeat went silent.

        Only workers that have been busy longer than ``stall_timeout``
        are examined (a fresh assignment gets that long to publish its
        first beat), and a worker with no record at all is judged by its
        busy time — a crashed-on-arrival worker is caught by the pipe
        EOF in :meth:`_collect` first.
        """
        if self._monitor is None or self.stall_timeout is None:
            return
        now = time.perf_counter()
        for worker in self._workers:
            if not worker.busy:
                continue
            busy_for = now - worker.started_at
            if busy_for <= self.stall_timeout:
                continue
            record = self._monitor.latest_for(worker.proc.pid)
            age = self._monitor.age(record) if record is not None else busy_for
            if age <= self.stall_timeout:
                continue
            self.metrics.incr("worker_stalls")
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "serve.stall",
                    cat="serve",
                    job=worker.job_id,
                    pid=worker.proc.pid,
                    age=round(age, 2),
                )
            self._finish(
                worker,
                error_record(
                    f"stalled: no heartbeat for {age:.1f}s", runtime=busy_for
                ),
                "stall",
            )
            self._replace(worker, kill=True)
