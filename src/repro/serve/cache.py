"""Structural-hash result cache.

Keys are ``digest × options`` strings built by
:func:`repro.serve.protocol.cache_key`: the model component is the
order-independent :func:`~repro.aiger.digest.structural_digest`, so a
resubmission of the same circuit — or any isomorphic rebuild of it:
permuted gates, renumbered variables, swapped AND operands, added dead
logic — with the same verdict-relevant engine options hits the cache and
never reaches a solver.

Only *solved* verdicts (SAFE/UNSAFE with their witness records) are
stored: UNKNOWN results depend on the time budget of the run that
produced them, so caching them could mask a verdict a longer budget
would find.  Eviction is LRU with a fixed entry budget.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional


class ResultCache:
    """Thread-safe LRU mapping cache keys to finished result records."""

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("cache size must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record (a private copy), refreshing its LRU position."""
        with self._lock:
            record = self._entries.get(key)
            if record is None:
                return None
            self._entries.move_to_end(key)
            return copy.deepcopy(record)

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        """Store a finished record; only solved, error-free runs are kept."""
        if record.get("error") is not None:
            return False
        if record.get("result") not in ("safe", "unsafe"):
            return False
        with self._lock:
            self._entries[key] = copy.deepcopy(record)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
