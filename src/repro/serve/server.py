"""Asyncio HTTP/JSON front end of the verification service.

A deliberately small stdlib-only HTTP/1.1 implementation over
``asyncio.start_server`` — no framework, no threads per connection.
Endpoints:

* ``POST /jobs`` — submit a model (raw ``aag`` text or a JSON envelope,
  see :func:`repro.serve.protocol.parse_job_body`).  Responses: 200 with
  the finished job on a cache hit, 202 with the queued job id, 400 on
  malformed input, 429 (tenant over budget) and 503 (queue full) both
  with a ``Retry-After`` header;
* ``GET /jobs/{id}`` — poll one job (``queued``/``running``/``done``/
  ``failed`` plus the result record once finished);
* ``GET /jobs/{id}/trace`` — the job's recorded Chrome trace document
  (404 unless the service was started with a ``trace_dir``);
* ``GET /jobs/{id}/progress`` — live worker heartbeat of a running job
  (IC3 frame, lemma/obligation totals, RSS/CPU, heartbeat age);
* ``GET /jobs`` — id/status summaries of tracked jobs;
* ``GET /health`` — liveness + pool/queue occupancy;
* ``GET /metrics`` — Prometheus text exposition (content-negotiated:
  an ``Accept: application/json`` header gets the JSON snapshot);
* ``GET /metrics.json`` — the flat JSON counter snapshot of
  :mod:`repro.serve.metrics` plus sampled gauges (stable contract).

Submissions are parsed and digested off the event loop (in the default
executor) so a large model cannot stall polling clients.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.serve.service import VerificationService

MAX_BODY_BYTES = 16 * 1024 * 1024
_REQUEST_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class JobServer:
    """HTTP front end bound to one :class:`VerificationService`."""

    def __init__(self, service: VerificationService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            status, headers, payload = await asyncio.wait_for(
                self._process(reader), timeout=_REQUEST_TIMEOUT
            )
        except asyncio.TimeoutError:
            status, headers, payload = 400, {}, {"error": "request timed out"}
        except (ConnectionResetError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the loop
            status, headers, payload = 500, {}, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, str):
            # Plain-text responses (the Prometheus exposition) pass
            # through verbatim; the route sets their Content-Type.
            body = payload.encode("utf-8")
            headers.setdefault("Content-Type", "text/plain; charset=utf-8")
        else:
            body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        headers.setdefault("Content-Type", "application/json")
        headers["Content-Length"] = str(len(body))
        headers["Connection"] = "close"
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
        try:
            await writer.drain()
        except ConnectionResetError:  # pragma: no cover - client went away
            pass
        writer.close()

    async def _process(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, str], Any]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {}, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {}, {"error": f"malformed request line: {request_line!r}"}
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return 413, {}, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        if length:
            body = await reader.readexactly(length)
        return await self._route(method, target.split("?", 1)[0], headers, body)

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, str], Any]:
        if path == "/jobs" and method == "POST":
            tenant = headers.get("x-tenant", "anonymous") or "anonymous"
            loop = asyncio.get_running_loop()
            status, payload = await loop.run_in_executor(
                None, lambda: self.service.submit_raw(body, tenant=tenant)
            )
            extra: Dict[str, str] = {}
            if status in (429, 503) and "retry_after" in payload:
                extra["Retry-After"] = str(payload["retry_after"])
            if status in (200, 202):
                extra["Location"] = f"/jobs/{payload['id']}"
            return status, extra, payload
        if path.startswith("/jobs/") and path.endswith("/trace") and method == "GET":
            job_id = path[len("/jobs/"):-len("/trace")]
            loop = asyncio.get_running_loop()
            document = await loop.run_in_executor(
                None, lambda: self.service.job_trace(job_id)
            )
            if document is None:
                return 404, {}, {"error": "no trace for this job (tracing off or not recorded)"}
            return 200, {}, document
        if path.startswith("/jobs/") and path.endswith("/progress") and method == "GET":
            job_id = path[len("/jobs/"):-len("/progress")]
            progress = self.service.job_progress(job_id)
            if progress is None:
                return 404, {}, {"error": "unknown job id"}
            return 200, {}, progress
        if path.startswith("/jobs/") and method == "GET":
            job = self.service.get_job(path[len("/jobs/"):])
            if job is None:
                return 404, {}, {"error": "unknown job id"}
            return 200, {}, job
        if path == "/jobs" and method == "GET":
            return 200, {}, {"jobs": self.service.list_jobs()}
        if path == "/health" and method == "GET":
            return 200, {}, self.service.health()
        if path == "/metrics" and method == "GET":
            if "application/json" in headers.get("accept", ""):
                return 200, {}, self.service.metrics_snapshot()
            text = self.service.metrics_prometheus()
            return 200, {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"}, text
        if path == "/metrics.json" and method == "GET":
            return 200, {}, self.service.metrics_snapshot()
        if path in ("/jobs", "/health", "/metrics", "/metrics.json") or path.startswith("/jobs/"):
            return 405, {"Allow": "GET, POST"}, {"error": f"method {method} not allowed"}
        return 404, {}, {"error": f"no route for {path}"}


def run_server(
    service: VerificationService, host: str = "127.0.0.1", port: int = 8123
) -> None:
    """Blocking entry point used by ``repro-check serve`` (Ctrl-C stops)."""
    server = JobServer(service, host=host, port=port)

    async def _main() -> None:
        await server.start()
        print(f"repro-serve listening on {server.address}")
        print(
            "endpoints: POST /jobs, GET /jobs/{id}, GET /jobs/{id}/trace, "
            "GET /jobs/{id}/progress, GET /health, GET /metrics, GET /metrics.json"
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.stop()
