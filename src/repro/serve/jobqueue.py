"""Bounded priority job queue and per-tenant admission budgets.

The service admits work through two gates:

* a **token bucket per tenant** (:class:`TenantBudgets`, keyed by the
  ``X-Tenant`` header) — a tenant gets ``burst`` tokens refilled at
  ``rate`` tokens/second; an empty bucket means HTTP 429 with a
  ``Retry-After`` telling the client when the next token lands;
* a **bounded priority queue** (:class:`JobQueue`) — lower ``priority``
  numbers dequeue first, FIFO within one priority level (a monotonic
  sequence number breaks ties, so equal-priority jobs never starve each
  other).  A full queue raises :class:`QueueFull` and the server answers
  503 with a ``Retry-After`` estimated from the queue's drain rate.

Both are plain thread-safe objects: the asyncio HTTP handlers and the
worker-pool dispatcher thread touch them concurrently.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple


class QueueFull(Exception):
    """The job queue is at capacity (maps to HTTP 503)."""

    def __init__(self, retry_after: float):
        super().__init__(f"job queue is full, retry after ~{retry_after:.0f}s")
        self.retry_after = retry_after


class BudgetExceeded(Exception):
    """A tenant is over its token budget (maps to HTTP 429)."""

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} is over budget, retry after ~{retry_after:.1f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class JobQueue:
    """Thread-safe bounded priority queue of ``(priority, item)`` entries."""

    def __init__(self, maxsize: int = 16):
        if maxsize <= 0:
            raise ValueError("queue depth must be positive")
        self.maxsize = maxsize
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def put(self, item: Any, priority: int = 0, *, retry_after: float = 1.0) -> None:
        """Enqueue; raises :class:`QueueFull` instead of blocking."""
        with self._cond:
            if len(self._heap) >= self.maxsize:
                raise QueueFull(retry_after)
            heapq.heappush(self._heap, (priority, next(self._seq), item))
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the highest-priority item; None when empty past ``timeout``."""
        with self._cond:
            if not self._heap and timeout:
                self._cond.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def drain(self) -> List[Any]:
        """Remove and return everything still queued (shutdown path)."""
        with self._cond:
            items = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            return items


class TokenBucket:
    """Classic token bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> Optional[float]:
        """Take ``tokens`` if available; otherwise the seconds until they are."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return None
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class TenantBudgets:
    """One token bucket per tenant, created lazily on first submission."""

    def __init__(
        self,
        rate: float = 5.0,
        burst: float = 20.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def admit(self, tenant: str) -> None:
        """Charge one token; raises :class:`BudgetExceeded` when empty."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
            retry_after = bucket.try_acquire()
        if retry_after is not None:
            raise BudgetExceeded(tenant, retry_after)

    def snapshot(self) -> Dict[str, float]:
        """Remaining tokens per tenant (for /metrics)."""
        with self._lock:
            return {name: round(bucket.tokens, 3) for name, bucket in self._buckets.items()}
