"""Edge cases of ``Solver.solve_limited`` budgets and ``unsat_core``.

The happy paths are covered by test_sat_solver.py / test_sat_luby.py;
these tests pin down the corners IC3 relies on: what exactly happens when
a conflict budget runs out mid-search, and what the assumption core looks
like for empty (level-0) conflicts and assumption-only conflicts.
"""

import pytest

from repro.sat.exceptions import ResourceBudgetExceeded, SolverError
from repro.sat.solver import Solver


def pigeonhole(holes):
    """holes+1 pigeons into ``holes`` holes: small but conflict-heavy UNSAT."""
    solver = Solver()

    def var(pigeon, hole):
        return pigeon * holes + hole + 1

    for pigeon in range(holes + 1):
        solver.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for first in range(holes + 1):
            for second in range(first + 1, holes + 1):
                solver.add_clause([-var(first, hole), -var(second, hole)])
    return solver


class TestBudgetExhaustion:
    def test_solve_limited_returns_none(self):
        solver = pigeonhole(7)
        assert solver.solve_limited(conflict_budget=5) is None

    def test_budget_is_respected_closely(self):
        solver = pigeonhole(7)
        solver.solve_limited(conflict_budget=5)
        # The search stops at the first restart boundary at/after the budget.
        assert solver.stats.conflicts == 5

    def test_solve_raises_on_exhaustion(self):
        solver = pigeonhole(7)
        with pytest.raises(ResourceBudgetExceeded):
            solver.solve(conflict_budget=5)

    def test_no_model_and_no_core_after_exhaustion(self):
        solver = pigeonhole(7)
        assert solver.solve_limited(conflict_budget=5) is None
        with pytest.raises(SolverError):
            solver.get_model()
        with pytest.raises(SolverError):
            solver.unsat_core()

    def test_solver_usable_after_exhaustion(self):
        solver = pigeonhole(6)
        assert solver.solve_limited(conflict_budget=3) is None
        # A later unbudgeted call on the same instance still concludes.
        assert solver.solve_limited() is False

    def test_zero_budget_stops_immediately_on_conflicty_instance(self):
        solver = pigeonhole(7)
        assert solver.solve_limited(conflict_budget=0) is None

    def test_budget_larger_than_needed_is_harmless(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve_limited(conflict_budget=10_000) is True

    def test_learnt_clauses_survive_budgeted_attempts(self):
        solver = pigeonhole(6)
        total = 0
        while solver.solve_limited(conflict_budget=20) is None:
            assert solver.stats.conflicts >= total  # monotone progress
            total = solver.stats.conflicts
        assert solver.solve_limited() is False


class TestUnsatCoreEdgeCases:
    def test_empty_core_when_clauses_alone_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.is_consistent()
        # Even with assumptions, the conflict owes nothing to them.
        assert solver.solve_limited([2, -3]) is False
        assert solver.unsat_core() == []

    def test_assumption_only_conflict(self):
        solver = Solver()
        solver.ensure_var(1)
        assert solver.solve_limited([1, -1]) is False
        assert set(solver.unsat_core()) == {1, -1}

    def test_core_through_clause_chain(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve_limited([1, -3]) is False
        core = solver.unsat_core()
        assert set(core) <= {1, -3}
        assert core  # something must be blamed

    def test_core_excludes_irrelevant_assumptions(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        assert solver.solve_limited([1, -2, 5, -6]) is False
        core = set(solver.unsat_core())
        assert core <= {1, -2}
        assert 5 not in core and -6 not in core

    def test_core_is_itself_unsat(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-1, -2])
        assert solver.solve_limited([1, 3, 4]) is False
        core = solver.unsat_core()
        replay = Solver()
        replay.add_clause([-1, 2])
        replay.add_clause([-1, -2])
        assert replay.solve_limited(core) is False

    def test_no_core_after_sat(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve_limited([1]) is True
        with pytest.raises(SolverError):
            solver.unsat_core()

    def test_core_resets_between_calls(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        assert solver.solve_limited([1, -2]) is False
        assert solver.unsat_core()
        assert solver.solve_limited([1, 2]) is True
        with pytest.raises(SolverError):
            solver.unsat_core()
