"""Tests for AIG construction, derived gates and simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aiger import AIG, AigerError, FALSE_LIT, TRUE_LIT


class TestConstruction:
    def test_inputs_and_latches_get_even_literals(self):
        aig = AIG()
        assert aig.add_input() == 2
        assert aig.add_latch() == 4
        assert aig.num_inputs == 1
        assert aig.num_latches == 1
        assert aig.max_var == 2

    def test_negation(self):
        aig = AIG()
        lit = aig.add_input()
        assert aig.negate(lit) == lit + 1
        assert aig.negate(aig.negate(lit)) == lit

    def test_negate_unknown_literal_rejected(self):
        with pytest.raises(AigerError):
            AIG().negate(100)

    def test_latch_init_values(self):
        aig = AIG()
        l0 = aig.add_latch(init=0)
        l1 = aig.add_latch(init=1)
        lx = aig.add_latch(init=None)
        assert aig.latch_of(l0).init == 0
        assert aig.latch_of(l1).init == 1
        assert aig.latch_of(lx).init is None

    def test_invalid_latch_init_rejected(self):
        with pytest.raises(AigerError):
            AIG().add_latch(init=2)

    def test_set_latch_next_requires_latch(self):
        aig = AIG()
        i = aig.add_input()
        with pytest.raises(AigerError):
            aig.set_latch_next(i, TRUE_LIT)

    def test_is_input_is_latch(self):
        aig = AIG()
        i = aig.add_input("a")
        l = aig.add_latch()
        assert aig.is_input(i) and not aig.is_input(l)
        assert aig.is_latch(l) and not aig.is_latch(i)
        assert aig.input_name(i) == "a"

    def test_validate_passes_for_wellformed(self):
        aig = AIG()
        i = aig.add_input()
        l = aig.add_latch()
        aig.set_latch_next(l, aig.add_and(i, l))
        aig.add_bad(l)
        aig.validate()  # must not raise

    def test_validate_rejects_dangling_reference(self):
        aig = AIG()
        aig.add_latch()
        aig.outputs.append(999)
        with pytest.raises(AigerError):
            aig.validate()

    def test_repr_mentions_counts(self):
        aig = AIG()
        aig.add_input()
        assert "inputs=1" in repr(aig)


class TestAndGateFolding:
    def test_constant_folding(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.add_and(a, FALSE_LIT) == FALSE_LIT
        assert aig.add_and(FALSE_LIT, a) == FALSE_LIT
        assert aig.add_and(a, TRUE_LIT) == a
        assert aig.add_and(TRUE_LIT, a) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, aig.negate(a)) == FALSE_LIT
        assert aig.num_ands == 0

    def test_structural_hashing(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        g1 = aig.add_and(a, b)
        g2 = aig.add_and(b, a)
        assert g1 == g2
        assert aig.num_ands == 1

    def test_and_ordering_invariant(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        gate_lit = aig.add_and(a, b)
        gate = aig.ands[0]
        assert gate.lhs == gate_lit
        assert gate.lhs > gate.rhs0 >= gate.rhs1


def _simulate_value(aig, lit, inputs):
    """Evaluate a combinational literal for a single step."""
    return aig.simulate([inputs])[0]


class TestDerivedGates:
    def _check_truth_table(self, build, expected):
        """``build(aig, a, b) -> lit``; expected maps (a, b) -> bool."""
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        out = build(aig, a, b)
        aig.add_output(out)
        for (va, vb), want in expected.items():
            record = aig.simulate([{a: va, b: vb}])[0]
            assert record["outputs"][0] == want, (va, vb)

    def test_or_gate(self):
        self._check_truth_table(
            lambda g, a, b: g.or_gate(a, b),
            {(0, 0): False, (0, 1): True, (1, 0): True, (1, 1): True},
        )

    def test_xor_gate(self):
        self._check_truth_table(
            lambda g, a, b: g.xor_gate(a, b),
            {(0, 0): False, (0, 1): True, (1, 0): True, (1, 1): False},
        )

    def test_xnor_gate(self):
        self._check_truth_table(
            lambda g, a, b: g.xnor_gate(a, b),
            {(0, 0): True, (0, 1): False, (1, 0): False, (1, 1): True},
        )

    def test_implies_gate(self):
        self._check_truth_table(
            lambda g, a, b: g.implies_gate(a, b),
            {(0, 0): True, (0, 1): True, (1, 0): False, (1, 1): True},
        )

    def test_mux(self):
        aig = AIG()
        sel, x, y = aig.add_input(), aig.add_input(), aig.add_input()
        aig.add_output(aig.mux(sel, x, y))
        for vs, vx, vy in [(0, 0, 1), (0, 1, 0), (1, 0, 1), (1, 1, 0)]:
            record = aig.simulate([{sel: vs, x: vx, y: vy}])[0]
            assert record["outputs"][0] == bool(vx if vs else vy)

    def test_and_many_empty_is_true(self):
        aig = AIG()
        assert aig.and_many([]) == TRUE_LIT

    def test_or_many_empty_is_false(self):
        aig = AIG()
        assert aig.or_many([]) == FALSE_LIT

    def test_equal_const(self):
        aig = AIG()
        word = [aig.add_input() for _ in range(3)]
        aig.add_output(aig.equal_const(word, 5))
        for value in range(8):
            inputs = {word[i]: bool((value >> i) & 1) for i in range(3)}
            record = aig.simulate([inputs])[0]
            assert record["outputs"][0] == (value == 5)

    def test_equal_words(self):
        aig = AIG()
        a = [aig.add_input() for _ in range(2)]
        b = [aig.add_input() for _ in range(2)]
        aig.add_output(aig.equal_words(a, b))
        for va in range(4):
            for vb in range(4):
                inputs = {a[i]: bool((va >> i) & 1) for i in range(2)}
                inputs.update({b[i]: bool((vb >> i) & 1) for i in range(2)})
                record = aig.simulate([inputs])[0]
                assert record["outputs"][0] == (va == vb)

    def test_equal_words_width_mismatch(self):
        aig = AIG()
        with pytest.raises(AigerError):
            aig.equal_words([aig.add_input()], [])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    def test_adder_matches_integer_addition(self, x, y):
        aig = AIG()
        a = [aig.add_input() for _ in range(4)]
        b = [aig.add_input() for _ in range(4)]
        total = aig.adder(a, b)
        for bit in total:
            aig.add_output(bit)
        inputs = {a[i]: bool((x >> i) & 1) for i in range(4)}
        inputs.update({b[i]: bool((y >> i) & 1) for i in range(4)})
        record = aig.simulate([inputs])[0]
        value = sum(1 << i for i, v in enumerate(record["outputs"]) if v)
        assert value == (x + y) % 16

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=15))
    def test_increment(self, x):
        aig = AIG()
        a = [aig.add_input() for _ in range(4)]
        for bit in aig.increment(a):
            aig.add_output(bit)
        inputs = {a[i]: bool((x >> i) & 1) for i in range(4)}
        record = aig.simulate([inputs])[0]
        value = sum(1 << i for i, v in enumerate(record["outputs"]) if v)
        assert value == (x + 1) % 16


class TestSimulation:
    def test_toggle_latch(self):
        aig = AIG()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, aig.negate(latch))
        aig.add_output(latch)
        trace = aig.simulate([{}] * 4)
        assert [r["outputs"][0] for r in trace] == [False, True, False, True]

    def test_initial_latch_override(self):
        aig = AIG()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, latch)
        aig.add_output(latch)
        trace = aig.simulate([{}, {}], initial_latches={latch: True})
        assert [r["outputs"][0] for r in trace] == [True, True]

    def test_input_driven_latch(self):
        aig = AIG()
        inp = aig.add_input()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, inp)
        aig.add_output(latch)
        trace = aig.simulate([{inp: True}, {inp: False}, {inp: False}])
        assert [r["outputs"][0] for r in trace] == [False, True, False]

    def test_bad_and_constraint_signals_reported(self):
        aig = AIG()
        latch = aig.add_latch(init=1)
        aig.set_latch_next(latch, latch)
        aig.add_bad(latch)
        aig.add_constraint(aig.negate(latch))
        record = aig.simulate([{}])[0]
        assert record["bads"] == [True]
        assert record["constraints"] == [False]

    def test_missing_inputs_default_to_false(self):
        aig = AIG()
        inp = aig.add_input()
        aig.add_output(inp)
        assert aig.simulate([{}])[0]["outputs"][0] is False
