"""Tests for the warm worker pool: execution, recycling, crash/timeout recovery.

The hang/crash scenarios monkeypatch ``workers._execute_job`` in the
parent *before* the pool forks its workers; with the default fork start
method the children inherit the patched module, so a marker value in the
job options can make a worker hang or die on demand.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.aiger.writer import to_aag_string
from repro.benchgen import token_ring
from repro.serve import workers
from repro.serve.jobqueue import JobQueue
from repro.serve.metrics import Metrics
from repro.serve.protocol import JobOptions, text_sha
from repro.serve.workers import WarmWorkerPool

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="marker-based worker fault injection needs the fork start method",
)

MODEL_TEXT = to_aag_string(token_ring(2, safe=True).aig)

# Marker values smuggled through JobOptions fields the real engines never
# see at these magnitudes; the patched _execute_job keys off them.
HANG_MARKER = 424242
CRASH_MARKER = 434343


def make_payload(job_id: str, *, timeout: float = 20.0, max_k: int = 20):
    from repro.aiger.parser import parse_aiger

    options = JobOptions(engine="ic3-pl", timeout=timeout, max_k=max_k)
    return (
        job_id,
        {
            "job_id": job_id,
            "aig": parse_aiger(MODEL_TEXT),
            "digest": "d" * 64,
            "text_sha": text_sha(MODEL_TEXT),
            "options": options,
        },
    )


class Collector:
    def __init__(self):
        self.results = {}
        self.kinds = {}
        self.cond = threading.Condition()

    def __call__(self, job_id, record, kind):
        with self.cond:
            self.results[job_id] = record
            self.kinds[job_id] = kind
            self.cond.notify_all()

    def wait(self, count, timeout=60.0):
        with self.cond:
            ok = self.cond.wait_for(lambda: len(self.results) >= count, timeout)
        assert ok, f"only {sorted(self.results)} finished"


@pytest.fixture
def fault_injection(monkeypatch):
    original = workers._execute_job

    def patched(payload, warm):
        max_k = payload["options"].max_k
        if max_k == HANG_MARKER:
            time.sleep(120)
        if max_k == CRASH_MARKER:
            os._exit(17)
        return original(payload, warm)

    monkeypatch.setattr(workers, "_execute_job", patched)


class TestWarmWorkerPool:
    def test_executes_jobs_and_reports_verdicts(self):
        queue = JobQueue(maxsize=8)
        collector = Collector()
        pool = WarmWorkerPool(queue, collector, size=2, metrics=Metrics())
        pool.start()
        try:
            queue.put(make_payload("j1"))
            queue.put(make_payload("j2"))
            collector.wait(2)
        finally:
            pool.stop()
        assert collector.kinds == {"j1": "ok", "j2": "ok"}
        assert collector.results["j1"]["result"] == "safe"
        assert collector.results["j1"]["error"] is None
        assert not pool.alive

    def test_warm_reduction_memo_reused_on_resubmission(self):
        queue = JobQueue(maxsize=8)
        collector = Collector()
        pool = WarmWorkerPool(queue, collector, size=1, metrics=Metrics())
        pool.start()
        try:
            queue.put(make_payload("first"))
            collector.wait(1)
            queue.put(make_payload("second"))
            collector.wait(2)
        finally:
            pool.stop()
        assert collector.results["first"]["warm"] == {"reduction_reused": False}
        assert collector.results["second"]["warm"] == {"reduction_reused": True}

    def test_recycles_worker_after_max_jobs(self):
        queue = JobQueue(maxsize=8)
        collector = Collector()
        metrics = Metrics()
        pool = WarmWorkerPool(
            queue, collector, size=1, max_jobs_per_worker=1, metrics=metrics
        )
        pool.start()
        try:
            queue.put(make_payload("j1"))
            queue.put(make_payload("j2"))
            collector.wait(2)
            deadline = time.monotonic() + 10
            while metrics.get("worker_recycles") < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
        finally:
            pool.stop()
        assert collector.kinds == {"j1": "ok", "j2": "ok"}
        assert metrics.get("worker_recycles") >= 2

    def test_crash_fails_job_and_preserves_queue(self, fault_injection):
        queue = JobQueue(maxsize=8)
        collector = Collector()
        metrics = Metrics()
        pool = WarmWorkerPool(queue, collector, size=1, metrics=metrics)
        pool.start()
        try:
            queue.put(make_payload("boom", max_k=CRASH_MARKER))
            queue.put(make_payload("survivor"))
            collector.wait(2)
        finally:
            pool.stop()
        assert collector.kinds["boom"] == "crash"
        assert "died" in collector.results["boom"]["error"]
        # The queued job outlived the crash and ran on the replacement.
        assert collector.kinds["survivor"] == "ok"
        assert collector.results["survivor"]["result"] == "safe"
        assert metrics.get("worker_crashes") == 1

    def test_hard_timeout_kills_worker_and_continues(self, fault_injection):
        queue = JobQueue(maxsize=8)
        collector = Collector()
        metrics = Metrics()
        pool = WarmWorkerPool(queue, collector, size=1, grace=0.0, metrics=metrics)
        pool.start()
        try:
            queue.put(make_payload("stuck", timeout=0.3, max_k=HANG_MARKER))
            queue.put(make_payload("after"))
            collector.wait(2)
        finally:
            pool.stop()
        assert collector.kinds["stuck"] == "timeout"
        assert "hard timeout" in collector.results["stuck"]["error"]
        assert collector.kinds["after"] == "ok"
        assert metrics.get("worker_timeouts") == 1

    def test_stop_with_running_job_reports_crash(self, fault_injection):
        queue = JobQueue(maxsize=8)
        collector = Collector()
        pool = WarmWorkerPool(queue, collector, size=1, metrics=Metrics())
        pool.start()
        queue.put(make_payload("hanging", timeout=60.0, max_k=HANG_MARKER))
        deadline = time.monotonic() + 10
        while pool.busy_workers == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert pool.busy_workers == 1
        pool.stop()
        assert collector.kinds["hanging"] == "crash"
        assert "shut down" in collector.results["hanging"]["error"]

    def test_rejects_bad_sizes(self):
        queue = JobQueue(maxsize=2)
        with pytest.raises(ValueError):
            WarmWorkerPool(queue, lambda *a: None, size=0)
        with pytest.raises(ValueError):
            WarmWorkerPool(queue, lambda *a: None, size=1, max_jobs_per_worker=0)
